#!/usr/bin/env python3
"""Subcircuit identification in a planar circuit layout.

The paper's introduction motivates subgraph isomorphism with electronic
circuit design (SubGemini [44]: "identifying subcircuits using a fast
subgraph isomorphism algorithm").  Circuits are laid out without crossings,
so their connection graphs are planar.  This example builds a standard-cell
style layout (a triangulated grid: cells plus routing diagonals), then

1. searches for a library of small "subcircuit" motifs,
2. lists every site where the bridge motif occurs (Theorem 4.2),
3. compares against Eppstein's sequential algorithm and plain backtracking.

Run:  python examples/circuit_motifs.py
"""

import time

from repro.baselines import count_isomorphisms, eppstein_decide
from repro.graphs import triangulated_grid
from repro.isomorphism import (
    cycle_pattern,
    decide_subgraph_isomorphism,
    diamond,
    list_occurrences,
    path_pattern,
    star_pattern,
    triangle,
)
from repro.planar import embed_geometric


def main() -> None:
    # A 12 x 12 standard-cell fabric: grid wires plus one routing diagonal
    # per cell (planar, triangle-rich — like Figure 2's target).
    layout = triangulated_grid(12, 12)
    graph = layout.graph
    embedding, _ = embed_geometric(layout)
    print(f"circuit fabric: n={graph.n} cells, m={graph.m} wires")

    motifs = [
        ("inverter chain (P4)", path_pattern(4)),
        ("feedback loop (C4)", cycle_pattern(4)),
        ("half-bridge (K3)", triangle()),
        ("bridge cell (diamond)", diamond()),
        ("fanout-4 (star)", star_pattern(4)),
        ("ring-of-5 (C5)", cycle_pattern(5)),
    ]

    print("\nmotif search (Theorem 2.1 driver, parallel engine):")
    for name, pattern in motifs:
        t0 = time.perf_counter()
        result = decide_subgraph_isomorphism(
            graph, embedding, pattern, seed=0
        )
        host = time.perf_counter() - t0
        print(
            f"  {name:24s} found={str(result.found):5s} "
            f"rounds={result.rounds_used:2d} work={result.cost.work:>10,} "
            f"depth={result.cost.depth:>6,} ({host:.2f}s host)"
        )

    # Exhaustive listing of one motif — every bridge cell in the fabric.
    print("\nlisting all bridge cells (diamond motif):")
    listing = list_occurrences(graph, embedding, diamond(), seed=1)
    exact = count_isomorphisms(diamond(), graph)
    print(f"  sites found: {len(listing.occurrences)}")
    print(f"  isomorphisms: {len(listing.witnesses)} "
          f"(exhaustive check: {exact})")
    print(f"  iterations until the stopping rule fired: "
          f"{listing.iterations}")

    # Depth comparison against the sequential baseline (Table 1 shape).
    seq = eppstein_decide(graph, embedding, triangle())
    par = decide_subgraph_isomorphism(graph, embedding, triangle(), seed=2)
    print("\nsequential vs parallel depth on the half-bridge search:")
    print(f"  Eppstein depth:   {seq.cost.depth:>10,}")
    print(f"  this paper depth: {par.cost.depth:>10,}")
    print(f"  depth ratio:      {seq.cost.depth / par.cost.depth:.1f}x")


if __name__ == "__main__":
    main()
