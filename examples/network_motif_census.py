#!/usr/bin/env python3
"""Motif census of planar interaction networks (biology-style workload).

Network-motif analysis (Milo et al. [40], cited in the paper's intro)
counts the occurrences of every small pattern.  This example runs a full
3- and 4-vertex connected-motif census on a planar "interaction" network
using the *deterministic exact counting* extension (window
inclusion–exclusion over Eppstein's cover — the paper's future-work
direction), double-checks one motif against the Monte Carlo listing
machinery (Theorem 4.2), and finishes with the disconnected-pattern
extension (Section 4.1): two disjoint triangles via random coloring.

Run:  python examples/network_motif_census.py
"""

from repro.graphs import Graph, delaunay_graph
from repro.isomorphism import (
    Pattern,
    clique_pattern,
    count_occurrences_exact,
    cycle_pattern,
    decide_disconnected,
    list_occurrences,
    path_pattern,
    star_pattern,
    triangle,
)
from repro.planar import embed_geometric


def main() -> None:
    network = delaunay_graph(120, seed=11)
    graph = network.graph
    embedding, _ = embed_geometric(network)
    print(f"interaction network: n={graph.n}, m={graph.m}")

    census = [
        ("path-3", path_pattern(3), 2),
        ("triangle", triangle(), 6),
        ("path-4", path_pattern(4), 2),
        ("star-3 (claw)", star_pattern(3), 6),
        ("cycle-4", cycle_pattern(4), 8),
        ("K4", clique_pattern(4), 24),
    ]
    print("\nmotif census (deterministic exact counting):")
    print(f"  {'motif':14s} {'isomorphisms':>12s} {'occurrences':>12s}")
    for name, pattern, automorphisms in census:
        result = count_occurrences_exact(graph, embedding, pattern)
        print(f"  {name:14s} {result.isomorphisms:>12,} "
              f"{result.isomorphisms // automorphisms:>12,}")

    # Cross-check one motif with the Monte Carlo listing (Theorem 4.2).
    listing = list_occurrences(graph, embedding, triangle(), seed=3)
    exact = count_occurrences_exact(graph, embedding, triangle())
    print(f"\ntriangles via listing: {len(listing.witnesses)} "
          f"(exact counter: {exact.isomorphisms}) "
          f"{'OK' if len(listing.witnesses) == exact.isomorphisms else 'MISMATCH'}")

    # Disconnected motif: two vertex-disjoint triangles (Section 4.1).
    two_triangles = Pattern(
        Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
    )
    result = decide_disconnected(
        graph, embedding, two_triangles, seed=4,
        colorings=300, want_witness=True,
    )
    print(f"\ntwo disjoint triangles present: {result.found} "
          f"(colorings used: {result.colorings_used})")
    if result.witness:
        t1 = sorted(result.witness[p] for p in (0, 1, 2))
        t2 = sorted(result.witness[p] for p in (3, 4, 5))
        print(f"  witness: triangles {t1} and {t2}")


if __name__ == "__main__":
    main()
