#!/usr/bin/env python3
"""Quickstart: find a small pattern in a planar graph.

Builds a random planar target (a Delaunay triangulation), embeds it, and
runs the paper's Monte Carlo pipeline: exponential start time clustering ->
k-d cover -> bounded-treewidth DP with the parallel shortcut engine.  Shows
the witness, the exact occurrence count, and the work/depth account the
algorithm charged (the simulated CREW PRAM of the paper's Section 1.1).

Run:  python examples/quickstart.py
"""

from repro.graphs import delaunay_graph
from repro.isomorphism import (
    count_occurrences,
    cycle_pattern,
    find_occurrence,
    triangle,
)
from repro.planar import embed_geometric
from repro.pram import speedup_curve


def main() -> None:
    # A random planar triangulation.
    gg = delaunay_graph(250, seed=7)
    graph = gg.graph
    print(f"target: Delaunay triangulation, n={graph.n}, m={graph.m}")

    # The geometric generators carry coordinates, so the embedding is free
    # (abstract graphs go through repro.planar.embed_planar instead).
    embedding, _ = embed_geometric(gg)

    # Decide + extract one occurrence of a triangle (Theorem 2.1).
    pattern = triangle()
    result = find_occurrence(graph, embedding, pattern, seed=0)
    print(f"\ntriangle found: {result.found}")
    print(f"  witness (pattern -> target): {result.witness}")
    print(f"  cover rounds used: {result.rounds_used}")
    print(f"  work charged:  {result.cost.work:,}")
    print(f"  depth charged: {result.cost.depth:,}")
    print(f"  available parallelism W/D: {result.cost.parallelism():,.0f}")

    # Brent's theorem turns the (work, depth) pair into simulated running
    # times for any processor count.
    curve = speedup_curve(result.cost, [1, 8, 64, 512, 4096])
    print("  simulated speedup:", {p: round(s, 1) for p, s in curve.items()})

    # Count all 4-cycles exactly via the listing machinery (Theorem 4.2) —
    # on a smaller target, since listing pays per occurrence.
    from repro.graphs import grid_graph

    small = grid_graph(8, 8)
    small_emb, _ = embed_geometric(small)
    c4 = cycle_pattern(4)
    maps = count_occurrences(small.graph, small_emb, c4, seed=1)
    images = count_occurrences(
        small.graph, small_emb, c4, seed=1, distinct_images=True
    )
    print(f"\n4-cycles in an 8x8 grid: {images} distinct occurrences "
          f"({maps} isomorphisms incl. automorphic copies)")


if __name__ == "__main__":
    main()
