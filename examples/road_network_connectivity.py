#!/usr/bin/env python3
"""Vertex connectivity of planar road networks (Section 5).

Road networks are (nearly) planar; their vertex connectivity measures how
many simultaneous intersection closures the network survives.  This example
runs the paper's O(n log n)-work pipeline on a family of synthetic networks
with known connectivity — trees, ring roads, wheels, antiprism beltways —
plus a random Delaunay network, cross-checks every answer against the
max-flow baseline, and shows a minimum cut certificate extracted from the
separating cycle (Figure 6).

Run:  python examples/road_network_connectivity.py
"""

import time

import numpy as np

from repro.connectivity import (
    planar_vertex_connectivity,
    vertex_connectivity_flow,
)
from repro.graphs import (
    antiprism_graph,
    cycle_graph,
    delaunay_graph,
    grid_graph,
    random_tree,
    wheel_graph,
)
from repro.planar import embed_geometric, embed_planar


def main() -> None:
    networks = [
        ("rural tree network", random_tree(40, seed=2), None),
        ("ring road", cycle_graph(24), None),
        ("city grid", grid_graph(5, 7), None),
        ("hub and ring", wheel_graph(10), None),
        ("double beltway", antiprism_graph(3), None),
        ("delaunay suburbs", delaunay_graph(40, seed=9), None),
    ]

    print(f"{'network':24s} {'n':>4s} {'kappa':>5s} {'flow':>5s} "
          f"{'work':>12s} {'depth':>8s} {'host':>7s}")
    for name, g_or_gg, _ in networks:
        if hasattr(g_or_gg, "graph"):
            graph = g_or_gg.graph
            embedding, _ = embed_geometric(g_or_gg)
        else:
            graph = g_or_gg
            embedding = embed_planar(graph)
        t0 = time.perf_counter()
        result = planar_vertex_connectivity(
            graph, embedding, seed=0, rounds=3
        )
        host = time.perf_counter() - t0
        flow = vertex_connectivity_flow(graph)
        status = "OK " if result.connectivity == flow else "BAD"
        print(
            f"{name:24s} {graph.n:>4d} {result.connectivity:>5d} "
            f"{flow:>5d} {result.cost.work:>12,} "
            f"{result.cost.depth:>8,} {host:>6.1f}s {status}"
        )

    # A verified minimum-cut certificate extracted from a separating cycle
    # (Lemma 5.1 plus the verification note in repro.connectivity.min_cuts).
    gg = grid_graph(3, 6)
    graph = gg.graph
    embedding, _ = embed_geometric(gg)
    result = planar_vertex_connectivity(
        graph, embedding, seed=1, rounds=3, want_certificate=True
    )
    cut = sorted(result.certificate_cut)
    print(f"\ncity grid 3x6: kappa={result.connectivity}; closing "
          f"intersections {sorted(cut)} disconnects the network:")
    rest = [v for v in range(graph.n) if v not in cut]
    sub, originals = graph.induced_subgraph(rest)
    from repro.graphs import component_members, connected_components

    labels, count, _ = connected_components(sub)
    for i, members in enumerate(component_members(labels, count)):
        print(f"  component {i}: {sorted(int(originals[v]) for v in members)}")


if __name__ == "__main__":
    main()
