"""E10 — Lemma 5.3 / Figure 7: separating subgraph isomorphism.

Claims measured:
* the extended state space costs a 2^O(k) factor over the plain one
  (state-count ratio per node);
* the separating-cover minors preserve separation (driver verdicts match
  the global brute-force oracle);
* the parallel engine's depth on the extended space stays poly-log
  (exercised end to end on a small instance).
"""

import time

import numpy as np
import pytest

from repro.graphs import grid_graph
from repro.isomorphism import SubgraphStateSpace, parallel_dp, path_pattern
from repro.planar import embed_geometric
from repro.separating import (
    SeparatingStateSpace,
    decide_separating_isomorphism,
    has_separating_occurrence,
)
from repro.treedecomp import make_nice, minfill_decomposition

from conftest import record_pr2, report, smoke_mode


def test_state_blowup_factor(benchmark):
    g = grid_graph(4, 6).graph
    marked = np.ones(g.n, dtype=bool)
    pattern = path_pattern(3)
    td, _ = minfill_decomposition(g)
    nice, _ = make_nice(td)
    plain = SubgraphStateSpace(pattern, g)
    extended = SeparatingStateSpace(pattern, g, marked)

    def run():
        return parallel_dp(plain, nice), parallel_dp(extended, nice)

    plain_result, extended_result = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    ratio = extended_result.total_states / max(plain_result.total_states, 1)
    bound = 2 ** (nice.width() + 1) * 4
    report(
        "E10-blowup", plain_states=plain_result.total_states,
        extended_states=extended_result.total_states,
        ratio=round(ratio, 1), paper_factor=f"2^O(k) (<= {bound})",
    )
    assert ratio <= bound


@pytest.mark.parametrize("cols", [5, 7, 9])
def test_driver_matches_oracle(benchmark, cols):
    gg = grid_graph(3, cols)
    emb, _ = embed_geometric(gg)
    marked = np.ones(gg.graph.n, dtype=bool)
    pattern = path_pattern(3)

    def run():
        return decide_separating_isomorphism(
            gg.graph, emb, marked, pattern, seed=0,
            engine="sequential", rounds=3,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    expect = has_separating_occurrence(pattern, gg.graph, marked)
    report(
        "E10-oracle", cols=cols, ours=result.found, oracle=expect,
        work=result.cost.work, width=result.max_piece_width,
    )
    assert result.found == expect


def test_separating_packed_speedup(benchmark):
    """E10-packed: reference vs packed engines on the extended space.

    The separating space pays Lemma 5.3's 2^O(k) state blow-up, so its
    tables are where the packed high-bit codec earns its keep: one
    parallel-engine solve of a full-grid decomposition, both kernels.
    Charged cost/diagnostics must be identical; wall-clock floor >= 5x
    (waived under BENCH_SMOKE along with the instance size).
    """
    smoke = smoke_mode()
    side = 5 if smoke else 7
    g = grid_graph(side, side).graph
    marked = np.ones(g.n, dtype=bool)
    pattern = path_pattern(4)
    td, _ = minfill_decomposition(g)
    nice, _ = make_nice(td)

    def solve(kernel):
        space = SeparatingStateSpace(pattern, g, marked)
        t0 = time.perf_counter()
        result = parallel_dp(space, nice, engine=kernel)
        return time.perf_counter() - t0, result

    def run():
        return solve("reference"), solve("packed")

    (ref_wall, ref), (pkd_wall, pkd) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert pkd.cost == ref.cost
    assert pkd.accepting_count == ref.accepting_count
    assert (pkd.total_states, pkd.total_shortcuts, pkd.max_bfs_rounds) == (
        ref.total_states, ref.total_shortcuts, ref.max_bfs_rounds
    )
    speedup = record_pr2(
        "E10-packed-speedup",
        config={
            "graph": f"grid{side}x{side}", "pattern": f"P{pattern.k}",
            "engine": "parallel", "width": nice.width(),
        },
        reference={
            "wall_s": round(ref_wall, 3),
            "work": ref.cost.work, "depth": ref.cost.depth,
        },
        packed={
            "wall_s": round(pkd_wall, 3),
            "work": pkd.cost.work, "depth": pkd.cost.depth,
        },
    )
    benchmark.extra_info.update(speedup=round(speedup, 2))
    report(
        "E10-packed", n=g.n, k=pattern.k, states=ref.total_states,
        ref_s=round(ref_wall, 2), packed_s=round(pkd_wall, 2),
        speedup=round(speedup, 1),
    )
    if not smoke:
        assert speedup >= 5.0


def test_parallel_engine_depth(benchmark):
    def _experiment():
        gg = grid_graph(3, 16)
        emb, _ = embed_geometric(gg)
        marked = np.ones(gg.graph.n, dtype=bool)
        result = decide_separating_isomorphism(
            gg.graph, emb, marked, path_pattern(3), seed=1,
            engine="parallel", rounds=1,
        )
        n = gg.graph.n
        bound = 100 * 3 * np.log2(n) ** 2
        report("E10-depth", n=n, depth=result.cost.depth, bound=round(bound),
               found=result.found)
        assert result.cost.depth <= bound

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


