"""E10 — Lemma 5.3 / Figure 7: separating subgraph isomorphism.

Claims measured:
* the extended state space costs a 2^O(k) factor over the plain one
  (state-count ratio per node);
* the separating-cover minors preserve separation (driver verdicts match
  the global brute-force oracle);
* the parallel engine's depth on the extended space stays poly-log
  (exercised end to end on a small instance).
"""

import numpy as np
import pytest

from repro.graphs import grid_graph
from repro.isomorphism import (
    SubgraphStateSpace,
    parallel_dp,
    path_pattern,
    sequential_dp,
)
from repro.planar import embed_geometric
from repro.separating import (
    SeparatingStateSpace,
    decide_separating_isomorphism,
    has_separating_occurrence,
)
from repro.treedecomp import make_nice, minfill_decomposition

from conftest import report


def test_state_blowup_factor(benchmark):
    g = grid_graph(4, 6).graph
    marked = np.ones(g.n, dtype=bool)
    pattern = path_pattern(3)
    td, _ = minfill_decomposition(g)
    nice, _ = make_nice(td)
    plain = SubgraphStateSpace(pattern, g)
    extended = SeparatingStateSpace(pattern, g, marked)

    def run():
        return parallel_dp(plain, nice), parallel_dp(extended, nice)

    plain_result, extended_result = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    ratio = extended_result.total_states / max(plain_result.total_states, 1)
    bound = 2 ** (nice.width() + 1) * 4
    report(
        "E10-blowup", plain_states=plain_result.total_states,
        extended_states=extended_result.total_states,
        ratio=round(ratio, 1), paper_factor=f"2^O(k) (<= {bound})",
    )
    assert ratio <= bound


@pytest.mark.parametrize("cols", [5, 7, 9])
def test_driver_matches_oracle(benchmark, cols):
    gg = grid_graph(3, cols)
    emb, _ = embed_geometric(gg)
    marked = np.ones(gg.graph.n, dtype=bool)
    pattern = path_pattern(3)

    def run():
        return decide_separating_isomorphism(
            gg.graph, emb, marked, pattern, seed=0,
            engine="sequential", rounds=3,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    expect = has_separating_occurrence(pattern, gg.graph, marked)
    report(
        "E10-oracle", cols=cols, ours=result.found, oracle=expect,
        work=result.cost.work, width=result.max_piece_width,
    )
    assert result.found == expect


def test_parallel_engine_depth(benchmark):
    def _experiment():
        gg = grid_graph(3, 16)
        emb, _ = embed_geometric(gg)
        marked = np.ones(gg.graph.n, dtype=bool)
        result = decide_separating_isomorphism(
            gg.graph, emb, marked, path_pattern(3), seed=1,
            engine="parallel", rounds=1,
        )
        n = gg.graph.n
        bound = 100 * 3 * np.log2(n) ** 2
        report("E10-depth", n=n, depth=result.cost.depth, bound=round(bound),
               found=result.found)
        assert result.cost.depth <= bound

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


