"""E6 — Theorem 2.1 / Corollary 2.2: the Monte Carlo decision driver.

Claims measured:
* on positive instances the expected number of cover rounds is O(1)
  (success probability >= 1/2 per round);
* no false positives ever; no false negatives across seeds (w.h.p.);
* work O((3k)^(3k+1) n log n): near-linear growth in n for fixed k;
* smaller pattern diameter gives smaller piece widths (Corollary 2.2).
"""

import numpy as np
import pytest

from repro.graphs import triangulated_grid
from repro.isomorphism import (
    cycle_pattern,
    decide_subgraph_isomorphism,
    path_pattern,
    star_pattern,
    triangle,
)
from repro.planar import embed_geometric

from conftest import report


def target(side):
    gg = triangulated_grid(side, side)
    emb, _ = embed_geometric(gg)
    return gg.graph, emb


def test_expected_rounds_constant(benchmark):
    graph, emb = target(16)
    pattern = triangle()

    def run():
        return [
            decide_subgraph_isomorphism(
                graph, emb, pattern, seed=s
            ).rounds_used
            for s in range(12)
        ]

    rounds = benchmark.pedantic(run, rounds=1, iterations=1)
    mean = float(np.mean(rounds))
    report("E6-rounds", mean_rounds=round(mean, 2), max_rounds=max(rounds),
           theory="<= 2 expected")
    assert mean <= 2.5


def test_soundness(benchmark):
    def _experiment():
        graph, emb = target(12)
        fp = sum(
            decide_subgraph_isomorphism(
                graph, emb, cycle_pattern(5), seed=s, rounds=2
            ).found
            for s in range(8)
        )  # no C5 in a triangulated grid... (verify with oracle)
        from repro.baselines import has_isomorphism

        actually_present = has_isomorphism(cycle_pattern(5), graph)
        report("E6-fp", false_positives=0 if not actually_present else "n/a",
               pattern_present=actually_present)
        if not actually_present:
            assert fp == 0
        fn = sum(
            not decide_subgraph_isomorphism(
                graph, emb, triangle(), seed=s
            ).found
            for s in range(8)
        )
        report("E6-fn", false_negatives=fn, seeds=8)
        assert fn == 0

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


@pytest.mark.parametrize("side", [12, 24, 48])
def test_work_scaling(benchmark, side):
    graph, emb = target(side)
    pattern = triangle()

    def run():
        return decide_subgraph_isomorphism(
            graph, emb, pattern, seed=1, rounds=1
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E6-work", n=graph.n, work=result.cost.work,
        work_per_n=round(result.cost.work / graph.n),
        depth=result.cost.depth,
    )
    benchmark.extra_info.update(n=graph.n, work=result.cost.work)


def test_diameter_dependence(benchmark):
    def _experiment():
        """Corollary 2.2: the piece width tracks the pattern diameter d, not
        the pattern size k (star_4 has k=5 d=2; path_5 has k=5 d=4)."""
        graph, emb = target(16)
        star = decide_subgraph_isomorphism(
            graph, emb, star_pattern(4), seed=2, rounds=1
        )
        path = decide_subgraph_isomorphism(
            graph, emb, path_pattern(5), seed=2, rounds=1
        )
        report(
            "E6-diameter", star_width=star.max_piece_width,
            path_width=path.max_piece_width,
            star_bound=3 * (2 + 1) + 2, path_bound=3 * (4 + 1) + 2,
        )
        assert star.max_piece_width <= 3 * 3 + 2
        assert path.max_piece_width <= 3 * 5 + 2
        assert star.max_piece_width < path.max_piece_width

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


