"""E1 — Lemma 2.3 / Figure 2: exponential start time clustering.

Claims measured:
* each edge crosses the clusters with probability <= 1/beta;
* cluster diameter O(beta log n) (measured radius);
* O(n) work, O(beta log n) depth.
"""

import numpy as np
import pytest

from repro.cluster import est_clustering
from repro.graphs import delaunay_graph

from conftest import report

N = 3000


@pytest.mark.parametrize("beta", [2, 4, 8, 16])
def test_edge_cut_probability(benchmark, beta):
    g = delaunay_graph(N, seed=0).graph

    def run():
        return [
            est_clustering(g, beta=beta, seed=s)[0].cut_fraction(g)
            for s in range(10)
        ]

    fractions = benchmark.pedantic(run, rounds=1, iterations=1)
    mean = float(np.mean(fractions))
    report(
        "E1-cut", beta=beta, measured=round(mean, 4),
        bound=round(1 / beta, 4),
    )
    benchmark.extra_info.update(beta=beta, cut_fraction=mean)
    assert mean <= 1.25 / beta  # Lemma 2.3 bound (Monte Carlo slack)


@pytest.mark.parametrize("beta", [2, 8])
def test_radius_and_cost(benchmark, beta):
    g = delaunay_graph(N, seed=1).graph

    def run():
        return est_clustering(g, beta=beta, seed=3)

    clustering, cost = benchmark.pedantic(run, rounds=1, iterations=1)
    bound = 4 * beta * np.log(g.n)
    report(
        "E1-radius", beta=beta, radius=clustering.radius,
        bound=round(bound, 1), clusters=clustering.count,
        work=cost.work, depth=cost.depth,
    )
    assert clustering.radius <= bound
    assert cost.work <= 8 * (g.n + g.m)  # O(n) work
    assert cost.depth <= clustering.radius + 2  # one round per level


def test_cut_probability_scales_inversely(benchmark):
    def _experiment():
        """Doubling beta should roughly halve the cut fraction."""
        g = delaunay_graph(N, seed=2).graph
        means = []
        for beta in (2, 4, 8, 16):
            fr = [
                est_clustering(g, beta=beta, seed=s)[0].cut_fraction(g)
                for s in range(8)
            ]
            means.append(np.mean(fr))
        report("E1-inverse", betas=[2, 4, 8, 16],
               cuts=[round(float(m), 4) for m in means])
        for a, b in zip(means, means[1:]):
            assert b < a  # strictly decreasing
        assert means[0] / means[-1] >= 3  # ~8x expected, allow slack

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


