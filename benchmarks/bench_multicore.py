"""M1 — the multicore execution backend vs the simulated scheduler.

The cost model predicts strong scaling of the piece-parallel phases (the
HLF simulation of the recorded span tree; BENCH_PR2's Table-1 workload).
This experiment runs the *same* workload for real: the ``processes``
backend ships every piece solve to a worker over shared memory, and we
measure wall-clock at increasing worker counts against the serial driver.

Asserted:

* results AND charged traces are byte-identical at every worker count
  (the tentpole invariant — always, even in smoke mode);
* measured wall-clock speedup at 4+ workers is >= 3x over the serial
  driver (only on hosts with >= 4 cores and outside ``BENCH_SMOKE``);
* the measured curve's *shape* follows the simulated one: speedup is
  monotone-ish up to the core count (the simulation saturates at W/D,
  the machine at the physical cores — absolute ratios differ, shapes
  agree).

Recorded: BENCH_PR6.json — for every worker count the measured wall and
speedup next to the simulated ``T_P``, simulated speedup and the Brent
sandwich ``max(ceil(W/P), D) <= T_P <= ceil(W/P) + D``.
"""

import time

from repro.exec import ProcessesBackend
from repro.exec.backends import available_cores
from repro.isomorphism import cycle_pattern, decide_subgraph_isomorphism
from repro.pram import compare_measured, format_measured, measured_as_dicts

from conftest import record_pr6, report, smoke_mode

SPEEDUP_FLOOR = 3.0
FLOOR_WORKERS = 4


def _worker_counts():
    cores = available_cores()
    counts = sorted({p for p in (2, 4, 8) if p <= cores})
    if cores >= FLOOR_WORKERS and cores not in counts:
        counts.append(cores)
    # Always measure at least 2 workers (they timeshare on a single-core
    # host, which still exercises the full dispatch path).
    return counts or [2]


def _run(graph, emb, pattern, backend=None):
    t0 = time.perf_counter()
    kwargs = {"backend": backend} if backend is not None else {}
    result = decide_subgraph_isomorphism(
        graph, emb, pattern, seed=7, rounds=3, engine="sequential",
        **kwargs,
    )
    return result, time.perf_counter() - t0


def test_multicore_speedup(benchmark, targets):
    smoke = smoke_mode()
    n = 256 if smoke else 4096
    graph, emb = targets("trigrid", n)
    pattern = cycle_pattern(4)

    # Serial baseline — the inline driver loop, no task machinery at all.
    base, _ = _run(graph, emb, pattern)  # warm the provider-free path
    base, serial_wall = benchmark.pedantic(
        lambda: _run(graph, emb, pattern), rounds=1, iterations=1
    )
    base_trace = base.trace.to_dict()

    measurements = {1: serial_wall}
    for workers in _worker_counts():
        with ProcessesBackend(max_workers=workers) as backend:
            result, wall = _run(graph, emb, pattern, backend=backend)
        assert result.found == base.found
        assert result.witness == base.witness
        assert result.cost == base.cost
        assert result.trace.to_dict() == base_trace
        measurements[workers] = wall

    points = compare_measured(base.trace, measurements)
    print()
    print(format_measured(points, title="M1 measured vs simulated:"))

    max_p = max(measurements)
    measured_speedup = serial_wall / max(measurements[max_p], 1e-9)
    predicted = {pt.processors: pt for pt in points}
    cores = available_cores()
    waived = smoke or cores < FLOOR_WORKERS
    record_pr6(
        "M1-multicore-decide",
        {
            "target": f"trigrid:n={graph.n}",
            "pattern": "cycle:4",
            "engine": "sequential",
            "rounds": 3,
            "backend": "processes",
            "smoke": smoke,
        },
        measured_as_dicts(points),
        {
            "serial_wall_s": serial_wall,
            "max_workers": max_p,
            "physical_cores": cores,
            "speedup_floor_waived": waived,
            "measured_speedup_at_max": round(measured_speedup, 2),
            "predicted_speedup_at_max": round(
                predicted[max_p].predicted_speedup, 2
            ),
        },
    )
    report(
        "M1",
        n=graph.n,
        workers=max_p,
        cores=cores,
        serial_s=round(serial_wall, 3),
        parallel_s=round(measurements[max_p], 3),
        speedup=round(measured_speedup, 2),
        sim_speedup=round(predicted[max_p].predicted_speedup, 2),
        floor_waived=waived,
    )

    if not waived:
        floor_p = min(
            p for p in measurements if p >= FLOOR_WORKERS
        )
        floor_speedup = serial_wall / max(measurements[floor_p], 1e-9)
        assert floor_speedup >= SPEEDUP_FLOOR, (
            f"processes backend managed only {floor_speedup:.2f}x at "
            f"{floor_p} workers (floor {SPEEDUP_FLOOR}x)"
        )
    # Shape agreement: simulated speedup is monotone in P; the measured
    # sweep must not *degrade* by more than noise as workers are added
    # (guards against serialization in the dispatch path), checked only
    # where the extra workers have real cores to land on.
    usable = [p for p in sorted(measurements) if p <= cores]
    for lo, hi in zip(usable, usable[1:]):
        assert measurements[hi] <= measurements[lo] * 1.35, (
            f"wall-clock regressed from P={lo} ({measurements[lo]:.3f}s) "
            f"to P={hi} ({measurements[hi]:.3f}s)"
        )


def test_multicore_trace_merge_overhead(benchmark, targets):
    """The parent-side merge (span re-attachment + overflow folding) is
    bookkeeping, not a second DP: its cost shows up as the gap between
    summed worker wall and phase wall.  Recorded for the log; asserted
    only to exist (stats populated)."""
    smoke = smoke_mode()
    n = 256 if smoke else 1024
    graph, emb = targets("trigrid", n)
    pattern = cycle_pattern(4)

    def run():
        with ProcessesBackend(max_workers=2) as backend:
            result, wall = _run(graph, emb, pattern, backend=backend)
            stats = backend.stats.as_dict()
        return result, wall, stats

    result, wall, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats["tasks"] > 0
    assert stats["bytes_shipped"] > 0
    report(
        "M1-overhead",
        n=graph.n,
        tasks=stats["tasks"],
        shipped_mb=round(stats["bytes_shipped"] / 1e6, 2),
        worker_wall_s=round(stats["task_wall_s"], 3),
        total_wall_s=round(wall, 3),
    )
