"""E4 — Lemma 3.3 / Figure 5: shortcuts make reachability low-depth.

Claims measured on long decomposition paths (path graphs -> chain-shaped
nice decompositions):
* BFS over the shortcut DAG needs O(k log N) rounds while the DAG itself
  has Omega(N) diameter;
* the number of shortcut edges stays linear in the DAG size.
"""

import numpy as np
import pytest

from repro.graphs import path_graph
from repro.isomorphism import (
    SubgraphStateSpace,
    parallel_dp,
    path_pattern,
    sequential_dp,
)
from repro.treedecomp import make_nice, minfill_decomposition

from conftest import report


def engine_inputs(n, k):
    g = path_graph(n).graph
    td, _ = minfill_decomposition(g)
    nice, _ = make_nice(td)
    return SubgraphStateSpace(path_pattern(k), g), nice


@pytest.mark.parametrize("n", [200, 800, 3200])
def test_bfs_rounds_logarithmic(benchmark, n):
    space, nice = engine_inputs(n, k=3)

    def run():
        return parallel_dp(space, nice)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.found
    bound = 12 * 3 * np.log2(result.total_states + 2)
    report(
        "E4-rounds", n=n, dag_states=result.total_states,
        bfs_rounds=result.max_bfs_rounds, bound=round(bound, 1),
        shortcuts=result.total_shortcuts,
    )
    benchmark.extra_info.update(n=n, rounds=result.max_bfs_rounds)
    assert result.max_bfs_rounds <= bound
    # Shortcut count stays linear in the DAG size (work efficiency).
    assert result.total_shortcuts <= 3 * result.total_states


def test_rounds_grow_logarithmically_not_linearly(benchmark):
    def _experiment():
        rows = []
        for n in (200, 800, 3200):
            space, nice = engine_inputs(n, k=3)
            result = parallel_dp(space, nice)
            rows.append((n, result.max_bfs_rounds, result.total_states))
        report("E4-scaling", rows=rows)
        # 16x more states, rounds grow by at most a small additive term.
        assert rows[-1][1] <= rows[0][1] + 14

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


def test_depth_vs_sequential(benchmark):
    def _experiment():
        """The whole point: parallel depth poly-log vs sequential linear."""
        rows = []
        for n in (400, 1600):
            space, nice = engine_inputs(n, k=3)
            par = parallel_dp(space, nice)
            seq = sequential_dp(space, nice)
            rows.append(
                (n, par.cost.depth, seq.cost.depth,
                 round(seq.cost.depth / par.cost.depth, 1))
            )
        report("E4-depth", rows=rows)
        # The ratio must grow with n.
        assert rows[1][3] > rows[0][3]
        for _, par_d, seq_d, _ in rows:
            assert par_d < seq_d / 5

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


