"""E11 — Theorem 4.4 / Section 4.3: bounded-genus targets.

Claims measured:
* the clustering + window cover keeps FPT behaviour on genus-1 targets
  (torus grids): decisions correct, work near-linear in n;
* measured window widths stay O(d) (locally linear treewidth), achieved
  here by the min-fill substitute for Lagergren's algorithm (DESIGN.md).
"""

import pytest

from repro.baselines import has_isomorphism
from repro.graphs import torus_grid
from repro.isomorphism import (
    cycle_pattern,
    decide_subgraph_isomorphism_general,
    local_treewidth_cover,
    triangle,
)

from conftest import report


@pytest.mark.parametrize("side", [8, 12, 16])
def test_torus_decision(benchmark, side):
    g = torus_grid(side, side)
    pattern = cycle_pattern(4)

    def run():
        return decide_subgraph_isomorphism_general(
            g, pattern, seed=0, rounds=1
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.found == has_isomorphism(pattern, g)
    report(
        "E11-decision", n=g.n, found=result.found,
        work=result.cost.work, work_per_n=round(result.cost.work / g.n),
        max_width=result.max_piece_width,
    )
    benchmark.extra_info.update(n=g.n, work=result.cost.work)


def test_negative_instance(benchmark):
    def _experiment():
        g = torus_grid(10, 10)
        result = decide_subgraph_isomorphism_general(g, triangle(), seed=1)
        report("E11-negative", found=result.found)
        assert not result.found  # torus grids are triangle-free

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


@pytest.mark.parametrize("d", [1, 2, 3])
def test_window_width_tracks_d(benchmark, d):
    g = torus_grid(14, 14)

    def run():
        return local_treewidth_cover(g, k=4, d=d, seed=2)

    cover = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E11-width", d=d, max_width=cover.max_width(),
        linear_local_treewidth=f"O(d), measured {cover.max_width()}",
    )
    # Locally linear treewidth with heuristic slack.
    assert cover.max_width() <= 6 * (d + 1) + 4


def test_work_near_linear(benchmark):
    def _experiment():
        works = {}
        for side in (8, 16):
            g = torus_grid(side, side)
            works[g.n] = decide_subgraph_isomorphism_general(
                g, cycle_pattern(4), seed=3, rounds=1
            ).cost.work
        ns = sorted(works)
        report("E11-scaling", works=works)
        assert works[ns[1]] / works[ns[0]] <= 8  # 4x n -> <= ~8x work

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


