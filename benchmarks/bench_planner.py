"""P1 — Cost-based query planner: regret, calibration and plan sharing.

Two serving-scenario experiments against the Table-1 grid target:

* **Regret** — a mixed 16-query workload (eight distinct patterns, two
  passes) is answered three ways: manual ``engine="parallel"``, manual
  ``engine="sequential"``, and ``plan="auto"`` on one shared provider so
  the planner's EMA calibration accumulates across the stream.  The
  planner's charged trace-cost (Brent time at P=256, the objective it
  optimizes) must stay within 1.2x of the per-query best manual variant
  in aggregate — and within 1.25x per query once the calibration warm-up
  (the first pass over the distinct patterns) is done.  Every query also
  records the plan's predicted-vs-actual relative work error.

* **Plan sharing** — the batch ``C4/C5/C6/C7`` contains four distinct
  cycles whose proper chain prefixes are all the same canonical paths, so
  the ``plan="auto"`` shared-subpattern path builds one ``(k_max, d_max)``
  cover per round and one occurrence table per shared canonical
  subpattern per piece, where the per-pattern session path runs four
  separate DP sweeps per round.  Verdicts must match the per-pattern path
  exactly (full strength, the one-sided-error contract); the shared batch
  must be >= 1.5x faster by wall-clock (waived under ``BENCH_SMOKE``).

Writes the machine-readable record to ``BENCH_PR7.json`` (see conftest):
per-query regret rows with prediction errors, the calibration snapshot,
and the shared-vs-per-pattern batch comparison.
"""

import gc
import time

from repro.engine import ColdArtifacts, TargetSession
from repro.graphs import grid_graph
from repro.isomorphism import (
    cycle_pattern,
    decide_subgraph_isomorphism,
    diamond,
    path_pattern,
    star_pattern,
    triangle,
)
from repro.planar import embed_geometric

from conftest import record_pr7, report, smoke_mode

PROCESSORS = 256  # the simulated machine size every plan optimizes for
ROUNDS = 2
SEED = 0
ENGINE = "sequential"  # per-pattern baseline: the PR-3 serving configuration


def _target(side):
    gg = grid_graph(side, side)
    emb, _ = embed_geometric(gg)
    return gg.graph, emb


def _workload():
    """Eight distinct patterns, two passes: positives and negatives,
    shallow and deep, packed-friendly and state-rich — the mix a pattern
    miner issues, repeated because repeats are the serving common case."""
    distinct = [
        cycle_pattern(4),
        path_pattern(4),
        diamond(),
        triangle(),
        cycle_pattern(6),
        path_pattern(5),
        star_pattern(3),
        cycle_pattern(5),
    ]
    return distinct * 2


def test_planner_regret(benchmark):
    # The regret statement is about charged cost, not wall-clock, so the
    # instance stays modest even in full mode: the manual parallel-engine
    # baselines (not the planner) dominate this experiment's runtime.
    smoke = smoke_mode()
    side = 16 if smoke else 24
    graph, emb = _target(side)
    patterns = _workload()

    def run():
        provider = ColdArtifacts(graph, emb)
        rows = []
        for i, pattern in enumerate(patterns):
            manual = {}
            for engine in ("parallel", "sequential"):
                res = decide_subgraph_isomorphism(
                    graph, emb, pattern, seed=SEED + i,
                    rounds=ROUNDS, engine=engine,
                )
                manual[engine] = res.trace.cost.brent_time(PROCESSORS)
            auto = decide_subgraph_isomorphism(
                graph, emb, pattern, seed=SEED + i, rounds=ROUNDS,
                artifacts=provider, plan="auto",
            )
            t_auto = auto.trace.cost.brent_time(PROCESSORS)
            err = auto.plan.prediction_error
            rows.append(
                {
                    "query": i,
                    "k": pattern.k,
                    "chosen": auto.plan.engine,
                    "t_auto": t_auto,
                    "t_parallel": manual["parallel"],
                    "t_sequential": manual["sequential"],
                    "ratio_vs_best": round(
                        t_auto / max(1, min(manual.values())), 3
                    ),
                    "prediction_error": (
                        round(err, 4) if err is not None else None
                    ),
                }
            )
        return provider, rows

    provider, rows = benchmark.pedantic(run, rounds=1, iterations=1)

    auto_total = sum(r["t_auto"] for r in rows)
    best_total = sum(
        min(r["t_parallel"], r["t_sequential"]) for r in rows
    )
    regret = auto_total / max(1, best_total)
    errors = [
        r["prediction_error"] for r in rows
        if r["prediction_error"] is not None
    ]
    mean_error = sum(errors) / len(errors) if errors else None
    record_pr7(
        "P1-planner-regret",
        config={
            "n": graph.n,
            "rounds": ROUNDS,
            "seed": SEED,
            "processors": PROCESSORS,
            "queries": len(patterns),
            "distinct_patterns": len(patterns) // 2,
        },
        rows=rows,
        aggregate_regret=round(regret, 4),
        mean_prediction_error=(
            round(mean_error, 4) if mean_error is not None else None
        ),
        calibration=provider.cost_model.calibration(),
    )
    benchmark.extra_info.update(
        n=graph.n, regret=round(regret, 3),
        mean_prediction_error=(
            round(mean_error, 3) if mean_error is not None else None
        ),
    )
    report(
        "P1-regret", n=graph.n, queries=len(patterns),
        regret=round(regret, 3),
        worst=max(r["ratio_vs_best"] for r in rows),
        mean_pred_err=(
            round(mean_error, 3) if mean_error is not None else None
        ),
    )
    # Charged-cost statements are deterministic: asserted at full
    # strength even under smoke.  Aggregate regret covers the whole
    # stream; per-query regret only once the EMA calibration has seen
    # each (mode, engine) pair — the first pass is the warm-up.
    assert regret <= 1.2, f"planner regret {regret:.3f} > 1.2x best manual"
    warm_start = len(patterns) // 2
    for r in rows[warm_start:]:
        assert r["ratio_vs_best"] <= 1.25, (
            f"query {r['query']} (k={r['k']}): planner "
            f"{r['ratio_vs_best']:.3f}x best manual after warm-up"
        )
    assert errors, "no prediction errors recorded"


def test_shared_subpattern_batch(benchmark):
    smoke = smoke_mode()
    side = 16 if smoke else 64
    graph, emb = _target(side)
    patterns = [cycle_pattern(k) for k in (4, 5, 6, 7)]

    def run():
        # Per-pattern baseline: the PR-3 path, distinct patterns sharing
        # covers and nice decompositions but each running its own DP.
        per = TargetSession(graph, emb)
        t0 = time.perf_counter()
        base = per.decide_batch(
            patterns, seed=SEED, engine=ENGINE, rounds=ROUNDS
        )
        t_per = time.perf_counter() - t0
        gc.collect()
        shared_session = TargetSession(graph, emb)
        t1 = time.perf_counter()
        shared = shared_session.decide_batch(
            patterns, seed=SEED, engine=ENGINE, rounds=ROUNDS, plan="auto"
        )
        t_shared = time.perf_counter() - t1
        gc.collect()
        t2 = time.perf_counter()
        rewarm = shared_session.decide_batch(
            patterns, seed=SEED, engine=ENGINE, rounds=ROUNDS, plan="auto"
        )
        t_rewarm = time.perf_counter() - t2
        return base, t_per, shared, t_shared, rewarm, t_rewarm

    base, t_per, shared, t_shared, rewarm, t_rewarm = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # The sharing contract, at full strength even under smoke: same
    # verdicts as the per-pattern path, amortized per-result accounting,
    # and a warm repeat served from the session's piece-subpattern store.
    assert shared.shared and rewarm.shared
    assert [r.found for r in shared.results] == [
        r.found for r in base.results
    ]
    assert [r.found for r in rewarm.results] == [
        r.found for r in shared.results
    ]
    assert shared.amortized_queries == len(patterns)
    assert rewarm.cost.work < shared.cost.work / 2

    speedup = t_per / max(t_shared, 1e-9)
    record_pr7(
        "P1-shared-batch",
        config={
            "n": graph.n,
            "engine": ENGINE,
            "rounds": ROUNDS,
            "seed": SEED,
            "patterns": [f"cycle:{k}" for k in (4, 5, 6, 7)],
        },
        per_pattern={"wall_s": round(t_per, 3), "work": base.cost.work},
        shared={"wall_s": round(t_shared, 3), "work": shared.cost.work},
        rewarm={"wall_s": round(t_rewarm, 3), "work": rewarm.cost.work},
        verdicts=[r.found for r in shared.results],
        speedup=round(speedup, 2),
    )
    benchmark.extra_info.update(
        n=graph.n, speedup=round(speedup, 2),
        shared_work=shared.cost.work, per_pattern_work=base.cost.work,
    )
    report(
        "P1-shared", n=graph.n,
        per_s=round(t_per, 2), shared_s=round(t_shared, 2),
        rewarm_s=round(t_rewarm, 3), speedup=round(speedup, 2),
    )
    if not smoke:
        assert speedup >= 1.5, (
            f"shared batch only {speedup:.2f}x faster than per-pattern"
        )
