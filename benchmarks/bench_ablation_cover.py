"""A2 — Ablation of the Section 2 covering strategy.

Three ways to cover a diameter-Theta(sqrt n) planar graph with bounded-
treewidth pieces:

* the naive per-vertex ball cover (Theta(n^2) total size — the paper's
  strawman);
* a single global BFS + level windows (Eppstein: linear size but the BFS
  has Theta(diameter) depth);
* EST clustering + per-cluster windows (this paper: linear size AND
  poly-log depth).

We measure total piece size and construction depth for all three.
"""

import numpy as np
import pytest

from repro.baselines import naive_ball_cover
from repro.graphs import grid_graph, parallel_bfs
from repro.isomorphism import treewidth_cover
from repro.planar import embed_geometric

from conftest import report

SIDE = 28
D = 2


@pytest.fixture(scope="module")
def target():
    gg = grid_graph(SIDE, SIDE)
    emb, _ = embed_geometric(gg)
    return gg, emb


def test_naive_ball_cover_quadratic(benchmark, target):
    gg, _emb = target

    def run():
        return naive_ball_cover(gg.graph, d=D)

    cover = benchmark.pedantic(run, rounds=1, iterations=1)
    n = gg.graph.n
    report(
        "A2-naive", n=n, total_size=cover.total_piece_size,
        per_vertex=round(cover.total_piece_size / n, 1),
        depth=cover.cost.depth,
    )
    # Each ball has ~2d^2 vertices: total ~ n * ball >> n.
    assert cover.total_piece_size >= 10 * n


def test_clustered_cover_linear(benchmark, target):
    gg, emb = target

    def run():
        return treewidth_cover(gg.graph, emb, k=4, d=D, seed=0)

    cover = benchmark.pedantic(run, rounds=1, iterations=1)
    n = gg.graph.n
    total = sum(p.graph.n for p in cover.pieces)
    report(
        "A2-clustered", n=n, total_size=total,
        per_vertex=round(total / n, 2), depth=cover.cost.depth,
    )
    assert total <= (D + 1) * n  # Theorem 2.4 membership bound
    # Construction depth poly-log, not Theta(sqrt n).
    assert cover.cost.depth <= 30 * 4 * np.log2(n)


def test_global_bfs_depth_is_diameter(benchmark, target):
    def _experiment():
        gg, _emb = target
        res, cost = parallel_bfs(gg.graph, [0])
        report(
            "A2-globalbfs", diameter_levels=res.depth, bfs_depth=cost.depth,
            sqrt_n=round(np.sqrt(gg.graph.n), 1),
        )
        # The single-BFS strategy pays Theta(sqrt n) depth on a grid.
        assert cost.depth >= np.sqrt(gg.graph.n)

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


def test_sizes_summary(benchmark, target):
    def _experiment():
        gg, emb = target
        n = gg.graph.n
        naive = naive_ball_cover(gg.graph, d=D).total_piece_size
        ours = sum(
            p.graph.n
            for p in treewidth_cover(gg.graph, emb, 4, D, seed=1).pieces
        )
        report(
            "A2-summary", n=n, naive=naive, clustered=ours,
            ratio=round(naive / ours, 1),
        )
        assert naive > 4 * ours

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


