"""E7 — Lemma 4.1: disconnected patterns via random coloring.

Claims measured:
* a correctly-colored round appears within ~l^k colorings (the success
  rate per coloring is ~l^-k times the per-component success rates);
* decisions agree with exhaustive search;
* the overhead multiplier vs the connected driver is the coloring count.
"""

import numpy as np

from repro.graphs import Graph, triangulated_grid
from repro.isomorphism import Pattern, decide_disconnected, triangle
from repro.planar import embed_geometric

from conftest import report


def two_component_pattern():
    # A triangle plus a disjoint edge: l = 2, k = 5.
    return Pattern(Graph(5, [(0, 1), (1, 2), (0, 2), (3, 4)]))


def test_colorings_needed(benchmark):
    gg = triangulated_grid(10, 10)
    emb, _ = embed_geometric(gg)
    pattern = two_component_pattern()

    def run():
        return [
            decide_disconnected(
                gg.graph, emb, pattern, seed=s, colorings=400
            ).colorings_used
            for s in range(6)
        ]

    used = benchmark.pedantic(run, rounds=1, iterations=1)
    l, k = 2, 5
    report(
        "E7-colorings", mean_used=round(float(np.mean(used)), 1),
        max_used=max(used), lemma_scale=l**k,
    )
    # l^k = 32 colorings in expectation per fixed occurrence; many
    # occurrences exist, so far fewer suffice — but bounded by the lemma.
    assert max(used) <= l**k * 4


def test_colorings_needed_rare_occurrence(benchmark):
    """The lemma's l^-k success probability is about a FIXED occurrence;
    make the triangle component unique (one planted diagonal in an
    otherwise triangle-free grid) so the coloring count becomes visible."""
    from repro.graphs import grid_graph

    base = grid_graph(8, 8)
    planted = base.graph.with_edges_added([(0, 9)])  # one corner triangle
    gg = type(base)(planted, base.positions)
    emb, _ = embed_geometric(gg)
    pattern = two_component_pattern()

    def run():
        return [
            decide_disconnected(
                planted, emb, pattern, seed=100 + s, colorings=600
            ).colorings_used
            for s in range(6)
        ]

    used = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E7-rare", mean_used=round(float(np.mean(used)), 1),
        max_used=max(used), found_all=all(u <= 600 for u in used),
        lemma_scale=2**5,
    )
    # Success probability per coloring ~ 2 * (1/2)^3 * P(edge elsewhere in
    # the other class) — tens of colorings expected, within the lemma's
    # l^k log n envelope.
    assert max(used) <= 600


def test_agrees_with_oracle(benchmark):
    def _experiment():
        gg = triangulated_grid(7, 7)
        emb, _ = embed_geometric(gg)
        pattern = two_component_pattern()
        result = decide_disconnected(
            gg.graph, emb, pattern, seed=0, colorings=300
        )
        report("E7-positive", found=result.found)
        assert result.found  # triangles and edges abound

        from repro.graphs import grid_graph

        gg2 = grid_graph(7, 7)
        emb2, _ = embed_geometric(gg2)
        # Triangle component cannot exist in a bipartite grid.
        result2 = decide_disconnected(
            gg2.graph, emb2, pattern, seed=1, colorings=40
        )
        report("E7-negative", found=result2.found)
        assert not result2.found

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


def test_overhead_vs_connected(benchmark):
    """The coloring loop multiplies the connected driver's work."""
    gg = triangulated_grid(8, 8)
    emb, _ = embed_geometric(gg)
    from repro.isomorphism import decide_subgraph_isomorphism

    connected_cost = decide_subgraph_isomorphism(
        gg.graph, emb, triangle(), seed=3
    ).cost

    def run():
        return decide_disconnected(
            gg.graph, emb, two_component_pattern(), seed=3, colorings=300
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.found
    multiplier = result.cost.work / max(connected_cost.work, 1)
    report(
        "E7-overhead", connected_work=connected_cost.work,
        disconnected_work=result.cost.work,
        multiplier=round(multiplier, 2),
        colorings_used=result.colorings_used,
    )
