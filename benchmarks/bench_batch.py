"""S1 — Session engine: cold one-shot queries vs a warm cached session.

The serving scenario the session engine targets: one fixed target (the
Table-1 n=4096 grid), a stream of 16 small-pattern queries — four distinct
k=4 patterns, each repeated, exactly what a pattern-mining loop issues.
Cold = 16 independent one-shot driver calls (each rebuilds clusterings,
covers and per-piece decompositions, and re-runs every DP).  Warm = one
fresh :class:`~repro.engine.TargetSession` answering the same stream via
``decide_batch``: same-k queries share the per-seed EST clusterings and
cover sweeps, every query after the first reuses the per-piece nice
decompositions, and repeated patterns reuse the per-piece DP solutions.

Assertions (the session contract, at full strength even under smoke):

* per-query results byte-identical to one-shot — verdict, witness, rounds;
* ``trace.cost == result.cost`` on every session result;
* ``cold_equivalent_cost.work`` exactly equals the one-shot charge;
* warm wall-clock >= 3x faster than cold (waived under ``BENCH_SMOKE``).

Writes the machine-readable record to ``BENCH_PR3.json`` (see conftest).
"""

import gc
import time

from repro.engine import TargetSession
from repro.graphs import grid_graph
from repro.isomorphism import (
    clique_pattern,
    cycle_pattern,
    decide_subgraph_isomorphism,
    diamond,
    path_pattern,
)
from repro.planar import embed_geometric

from conftest import record_pr3, report, smoke_mode

ENGINE = "sequential"  # the realistic serving configuration (cf. planar_vc)
ROUNDS = 2
SEED = 0


def _patterns():
    """16 queries over four distinct k=4 patterns, four repeats each.

    On the bipartite grid target, cycles/paths are positive and the
    triangle-containing patterns (diamond, K4) negative, so both the
    early-exit and the full-round paths of the driver are exercised — with
    repeats, because repeated queries are the serving workload's common
    case.
    """
    distinct = [
        cycle_pattern(4),
        path_pattern(4),
        diamond(),
        clique_pattern(4),
    ]
    return distinct * 4


def test_batch_session_speedup(benchmark):
    smoke = smoke_mode()
    side = 16 if smoke else 64
    gg = grid_graph(side, side)
    emb, _ = embed_geometric(gg)
    graph = gg.graph
    patterns = _patterns()

    def run():
        # Each cold result is summarized immediately so the 16 full trace
        # trees are freed before the warm phase — a serving process would
        # not retain them either, and live megabyte-scale span forests
        # distort the warm timing through GC pressure.
        cold = []
        t0 = time.perf_counter()
        for p in patterns:
            r = decide_subgraph_isomorphism(
                graph, emb, p, seed=SEED, engine=ENGINE, rounds=ROUNDS
            )
            cold.append((r.found, r.rounds_used, r.witness, r.cost.work))
        t_cold = time.perf_counter() - t0
        gc.collect()
        session = TargetSession(graph, emb)
        t1 = time.perf_counter()
        batch = session.decide_batch(
            patterns, seed=SEED, engine=ENGINE, rounds=ROUNDS
        )
        t_warm = time.perf_counter() - t1
        return cold, t_cold, session, batch, t_warm

    cold, t_cold, session, batch, t_warm = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # The session contract: byte-identical per-query results, exact
    # cold-equivalent work, internally consistent traces.
    assert len(batch.results) == len(patterns)
    for (found, rounds, witness, work), warm in zip(cold, batch.results):
        assert warm.found == found
        assert warm.rounds_used == rounds
        assert warm.witness == witness
        assert warm.trace.cost == warm.cost
        assert warm.cold_equivalent_cost.work == work
    assert batch.amortized_queries >= len(patterns) - 1
    assert batch.cold_equivalent_cost.work == sum(
        work for (_, _, _, work) in cold
    )

    speedup = record_pr3(
        "S1-batch-session",
        config={
            "n": graph.n,
            "engine": ENGINE,
            "rounds": ROUNDS,
            "seed": SEED,
            "queries": len(patterns),
            "distinct_patterns": 4,
            "k": 4,
        },
        cold={"wall_s": round(t_cold, 3), "work": batch.cold_equivalent_cost.work},
        warm={
            "wall_s": round(t_warm, 3),
            "work": batch.cost.work,
            "cache": session.stats.as_dict(),
        },
    )
    benchmark.extra_info.update(
        n=graph.n, speedup=round(speedup, 2),
        charged_work=batch.cost.work,
        cold_equivalent_work=batch.cold_equivalent_cost.work,
    )
    report(
        "S1-batch", n=graph.n, queries=len(patterns),
        cold_s=round(t_cold, 1), warm_s=round(t_warm, 1),
        speedup=round(speedup, 2),
        hits=session.stats.hit_count, misses=session.stats.miss_count,
    )
    # The charged (amortized) work must undercut the cold-equivalent work
    # substantially — this is the work-level statement of the speedup.
    assert batch.cost.work < batch.cold_equivalent_cost.work
    if not smoke:
        assert speedup >= 3.0, f"warm session only {speedup:.2f}x faster"
