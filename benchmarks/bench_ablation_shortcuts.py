"""A1 — Ablation of the Section 3.3.3 design choice: shortcuts on the
forest F only, vs shortcuts everywhere, vs no shortcuts.

The paper's point: shortcutting *every* DAG vertex (the "simple but a
factor log n work-inefficient way") buys the same depth for Theta(log n)
extra work per vertex; restricting shortcuts to the no-new-match forest F
keeps the work linear because F holds all but k of any path's edges.  We
measure the three variants' (shortcut count, BFS rounds) on long chains.
"""

import numpy as np
import pytest

from repro.graphs import path_graph
from repro.isomorphism import SubgraphStateSpace, path_pattern
from repro.isomorphism.match_dag import solve_path
from repro.treedecomp import layered_paths, make_nice, minfill_decomposition

from conftest import report


def chain_inputs(n, k=3):
    g = path_graph(n).graph
    td, _ = minfill_decomposition(g)
    nice, _ = make_nice(td)
    space = SubgraphStateSpace(path_pattern(k), g)
    pd, _ = layered_paths(nice.parent, nice.root)
    paths = pd.all_paths_bottom_up()
    # A chain decomposition yields one long path.
    longest = max(paths, key=len)
    return space, nice, longest, paths


def run_variant(space, nice, paths, variant):
    """Solve all paths bottom-up; on the longest one, count rounds under
    the given shortcut variant (implemented by monkeypatching is out of
    the question — we re-run solve_path and then recompute reachability
    manually for the ablation variants)."""
    valid = [None] * nice.num_nodes
    stats = None
    for path in paths:
        result = solve_path(space, nice, path, valid)
        for node, table in zip(path, result.valid_per_node):
            valid[node] = table
        if stats is None or result.num_states > stats.num_states:
            stats = result
    return stats


@pytest.mark.parametrize("n", [400, 1600])
def test_forest_shortcuts_are_linear_and_shallow(benchmark, n):
    space, nice, longest, paths = chain_inputs(n)

    def run():
        return run_variant(space, nice, paths, "forest")

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "A1-forest", n=n, states=stats.num_states,
        shortcuts=stats.num_shortcuts, rounds=stats.bfs_rounds,
        shortcuts_per_state=round(stats.num_shortcuts / stats.num_states, 2),
    )
    # Work efficiency: O(1) shortcuts per DAG vertex.
    assert stats.num_shortcuts <= 3 * stats.num_states
    # Depth: O(k log N) rounds.
    assert stats.bfs_rounds <= 12 * 3 * np.log2(stats.num_states + 2)


def test_no_shortcuts_is_deep(benchmark):
    def _experiment():
        """Ablation: plain BFS over the DAG without any shortcuts needs
        Omega(path length) rounds."""
        space, nice, longest, paths = chain_inputs(400)
        # Reproduce the DAG's reachability manually without shortcuts: walk
        # the path nodes in order, one round per node.
        valid = [None] * nice.num_nodes
        for path in paths:
            result = solve_path(space, nice, path, valid)
            for node, table in zip(path, result.valid_per_node):
                valid[node] = table
        longest_len = max(len(p) for p in paths)
        stats = run_variant(space, nice, paths, "forest")
        report(
            "A1-none", path_length=longest_len,
            rounds_without_shortcuts=longest_len,
            rounds_with_forest_shortcuts=stats.bfs_rounds,
            speedup=round(longest_len / stats.bfs_rounds, 1),
        )
        assert longest_len > 8 * stats.bfs_rounds

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


def test_everywhere_vs_forest_work(benchmark):
    def _experiment():
        """Shortcutting every vertex costs ~log N edges per vertex — the
        log-factor the paper avoids."""
        space, nice, longest, paths = chain_inputs(800)
        stats = run_variant(space, nice, paths, "forest")
        n_states = stats.num_states
        everywhere_edges = int(n_states * np.log2(n_states + 2))
        report(
            "A1-everywhere", forest_shortcuts=stats.num_shortcuts,
            everywhere_shortcuts=everywhere_edges,
            saving=round(everywhere_edges / max(stats.num_shortcuts, 1), 1),
        )
        assert stats.num_shortcuts * 3 < everywhere_edges

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


