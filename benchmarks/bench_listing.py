"""E8 — Theorem 4.2 / Observation 2: listing all occurrences.

Claims measured:
* the listing finds exactly the ground-truth witness set (exhaustive
  oracle comparison);
* the number of iterations scales like O(log x + log n) — compare targets
  with different occurrence counts x;
* the stopping rule's dry-streak threshold fires as designed.
"""

import numpy as np
import pytest

from repro.baselines import count_isomorphisms
from repro.graphs import grid_graph, triangulated_grid
from repro.isomorphism import cycle_pattern, list_occurrences, triangle
from repro.planar import embed_geometric

from conftest import report


@pytest.mark.parametrize("side", [5, 9])
def test_listing_complete(benchmark, side):
    gg = grid_graph(side, side)
    emb, _ = embed_geometric(gg)
    pattern = cycle_pattern(4)

    def run():
        return list_occurrences(gg.graph, emb, pattern, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    x = count_isomorphisms(pattern, gg.graph)
    report(
        "E8-complete", n=gg.graph.n, x=x,
        found=len(result.witnesses), iterations=result.iterations,
    )
    benchmark.extra_info.update(x=x, iterations=result.iterations)
    assert len(result.witnesses) == x
    assert len(result.occurrences) == (side - 1) ** 2


def test_iterations_scale_logarithmically(benchmark):
    def _experiment():
        rows = []
        for side in (4, 8, 12):
            gg = triangulated_grid(side, side)
            emb, _ = embed_geometric(gg)
            result = list_occurrences(gg.graph, emb, triangle(), seed=1)
            x = len(result.witnesses)
            bound = np.log2(max(x, 2)) + np.log2(gg.graph.n) + 4
            rows.append((gg.graph.n, x, result.iterations, round(bound, 1)))
        report("E8-iterations", rows=rows)
        for n, x, iters, bound in rows:
            assert iters <= 4 * bound  # O(log x + log n)

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


def test_work_scales_with_x(benchmark):
    def _experiment():
        """Work grows with the occurrence count (the paper's conclusion notes
        listing is not work-efficient for counting)."""
        rows = []
        for side in (4, 10):
            gg = triangulated_grid(side, side)
            emb, _ = embed_geometric(gg)
            result = list_occurrences(gg.graph, emb, triangle(), seed=2)
            rows.append((len(result.witnesses), result.cost.work))
        report("E8-work", rows=rows)
        assert rows[1][0] > rows[0][0]
        assert rows[1][1] > rows[0][1]

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


