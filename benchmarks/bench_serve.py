"""S2 — Query daemon: cold vs warm request latency over real sockets.

The daemon's value proposition, measured end-to-end: one ``repro serve``
instance, a 16-query decision workload (four distinct k=4 patterns, four
repeats each — the same stream as S1/bench_batch) issued as HTTP requests
against its ephemeral port.

* **cold** — the pool is force-evicted before every request, so each
  query pays the full session build (clusterings, cover, per-piece
  decompositions) plus the HTTP round-trip: what a daemon-less service
  that spawned one process per request would charge.
* **warm** — the same 16 requests against the now-resident session: every
  query after the first reuses the session's cached artifacts, repeats
  reuse the per-piece DP solutions; the HTTP overhead stays.

Assertions (full strength under smoke except the wall-clock floor):

* per-query verdicts identical across the passes (same seeds → same
  witnesses and rounds);
* every warm response after the first is flagged ``amortized``;
* warm wall-clock >= 3x faster than cold (waived under ``BENCH_SMOKE``).

Writes the machine-readable record to ``BENCH_SERVE.json`` (see
conftest) — per-request latencies for both passes plus the speedup.
"""

import asyncio
import contextlib
import http.client
import json
import threading
import time

from repro.serve import QueryServer, SessionPool

from conftest import record_serve, report, smoke_mode

SEED = 0


@contextlib.contextmanager
def _running_server():
    """One in-process daemon on an ephemeral port, drained on exit."""
    holder = {}
    ready = threading.Event()

    def run():
        async def main():
            server = QueryServer(pool=SessionPool(), port=0)
            await server.start()
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            ready.set()
            await server.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(30)
    try:
        yield holder["server"]
    finally:
        holder["loop"].call_soon_threadsafe(
            holder["server"].request_shutdown
        )
        thread.join(60)


def _post(port, path, payload):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=600)
    try:
        conn.request("POST", path, body=json.dumps(payload))
        resp = conn.getresponse()
        body = json.loads(resp.read())
        assert resp.status == 200, body
        return body
    finally:
        conn.close()


def _workload(target):
    """16 decide requests: 4 distinct k=4 patterns, 4 repeats each."""
    distinct = ["cycle:4", "path:4", "diamond", "clique:4"]
    return [
        {"target": target, "pattern": p, "seed": SEED, "rounds": 2}
        for p in distinct * 4
    ]


def _run_pass(server, queries, evict_between):
    latencies = []
    responses = []
    for query in queries:
        if evict_between:
            for pooled in server.pool.resident():
                server.pool.evict(pooled.fingerprint)
        t0 = time.perf_counter()
        responses.append(_post(server.port, "/v1/decide", query))
        latencies.append(time.perf_counter() - t0)
    return responses, latencies


def test_daemon_warm_request_latency(benchmark):
    smoke = smoke_mode()
    target = "grid:8x8" if smoke else "grid:16x16"
    queries = _workload(target)

    def run():
        with _running_server() as server:
            cold, cold_lat = _run_pass(server, queries, evict_between=True)
            warm, warm_lat = _run_pass(server, queries, evict_between=False)
        return cold, cold_lat, warm, warm_lat

    cold, cold_lat, warm, warm_lat = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Verdict parity: the warm session answers exactly what the cold
    # rebuilds answered.
    for c, w in zip(cold, warm):
        assert w["found"] == c["found"]
        assert w["witness"] == c["witness"]
        assert w["rounds_used"] == c["rounds_used"]
    # Warm requests after the first ride the resident session's caches.
    assert all(r["amortized"] for r in warm[1:])

    speedup = record_serve(
        "daemon-cold-vs-warm",
        {
            "target": target,
            "queries": len(queries),
            "distinct_patterns": 4,
            "seed": SEED,
            "rounds": 2,
        },
        {
            "wall_s": round(sum(cold_lat), 4),
            "mean_request_s": round(sum(cold_lat) / len(cold_lat), 4),
            "latencies_s": [round(v, 4) for v in cold_lat],
        },
        {
            "wall_s": round(sum(warm_lat), 4),
            "mean_request_s": round(sum(warm_lat) / len(warm_lat), 4),
            "latencies_s": [round(v, 4) for v in warm_lat],
        },
    )
    report(
        "S2-daemon",
        target=target,
        cold_s=round(sum(cold_lat), 3),
        warm_s=round(sum(warm_lat), 3),
        speedup=round(speedup, 2),
    )
    if not smoke:
        assert speedup >= 3.0, (
            f"warm requests only {speedup:.2f}x faster than cold"
        )
