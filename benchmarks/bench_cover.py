"""E2 — Theorem 2.4 / Figure 3: the Parallel Treewidth k-d cover.

Claims measured:
* every piece's decomposition width <= 3(d+1) + 2 (3d + stellation slack);
* every vertex lies in at most d + 1 pieces;
* a fixed occurrence is captured with probability >= 1/2;
* O(nd) work and O(k log n) depth.
"""

import numpy as np
import pytest

from repro.baselines import iter_isomorphisms
from repro.graphs import triangulated_grid
from repro.isomorphism import treewidth_cover, triangle
from repro.planar import embed_geometric

from conftest import report


@pytest.mark.parametrize("d", [1, 2, 3])
def test_width_and_membership(benchmark, d):
    gg = triangulated_grid(30, 30)
    emb, _ = embed_geometric(gg)

    def run():
        return treewidth_cover(gg.graph, emb, k=4, d=d, seed=0)

    cover = benchmark.pedantic(run, rounds=1, iterations=1)
    counts = cover.pieces_per_vertex(gg.graph.n)
    report(
        "E2-width", d=d, max_width=cover.max_width(),
        bound=3 * (d + 1) + 2, max_membership=int(counts.max()),
        membership_bound=d + 1, pieces=len(cover.pieces),
        work=cover.cost.work, depth=cover.cost.depth,
    )
    benchmark.extra_info.update(d=d, max_width=cover.max_width())
    assert cover.max_width() <= 3 * (d + 1) + 2
    assert counts.max() <= d + 1
    assert counts.min() >= 1


def test_capture_probability(benchmark):
    def _experiment():
        gg = triangulated_grid(12, 12)
        emb, _ = embed_geometric(gg)
        pattern = triangle()
        occurrence = set(next(iter_isomorphisms(pattern, gg.graph)).values())
        trials, hits = 60, 0
        for s in range(trials):
            cover = treewidth_cover(gg.graph, emb, pattern.k, 1, seed=s)
            if any(
                occurrence <= set(p.originals.tolist()) for p in cover.pieces
            ):
                hits += 1
        report("E2-capture", hits=hits, trials=trials,
               rate=round(hits / trials, 3), bound=0.5)
        assert hits / trials >= 0.5

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


def test_work_scales_with_nd(benchmark):
    def _experiment():
        gg_small = triangulated_grid(20, 20)
        gg_large = triangulated_grid(40, 40)
        rows = []
        for gg in (gg_small, gg_large):
            emb, _ = embed_geometric(gg)
            for d in (1, 3):
                cover = treewidth_cover(gg.graph, emb, 4, d, seed=1)
                rows.append((gg.graph.n, d, cover.cost.work))
        report("E2-work", rows=rows)
        # 4x vertices at fixed d: work within ~6x; 3x d at fixed n: within ~4x.
        by = {(n, d): w for n, d, w in rows}
        assert by[(1600, 1)] / by[(400, 1)] <= 7
        assert by[(400, 3)] / by[(400, 1)] <= 5

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


def test_depth_polylogarithmic(benchmark):
    gg = triangulated_grid(45, 45)
    emb, _ = embed_geometric(gg)
    k = 4

    def run():
        return treewidth_cover(gg.graph, emb, k, 2, seed=2)

    cover = benchmark.pedantic(run, rounds=1, iterations=1)
    bound = 30 * k * np.log2(gg.graph.n)
    report("E2-depth", n=gg.graph.n, depth=cover.cost.depth,
           bound=round(bound))
    assert cover.cost.depth <= bound
