"""E9 — Lemma 5.2 / Figure 6: planar vertex connectivity.

Claims measured:
* the decision agrees with the flow baseline on every family kappa = 1..5;
* work near O(n log n): the connectivity-2 pipeline over an n sweep;
* depth poly-logarithmic — contrast with the flow baseline's inherently
  sequential augmentation.

The 8-cycle searches carry the paper's k^O(k) constant, so the kappa >= 4
instances stay small (see the engine note in repro.connectivity.planar_vc).
"""

import numpy as np
import pytest

from repro.connectivity import (
    planar_vertex_connectivity,
    vertex_connectivity_flow,
)
from repro.graphs import (
    antiprism_graph,
    cycle_graph,
    grid_graph,
    random_tree,
    wheel_graph,
)
from repro.planar import embed_geometric, embed_planar

from conftest import report

FAMILIES = [
    ("tree", lambda: random_tree(60, seed=1), 1),
    ("cycle", lambda: cycle_graph(40).graph, 2),
    ("grid", lambda: grid_graph(4, 8).graph, 2),
    ("wheel", lambda: wheel_graph(10).graph, 3),
    ("octahedron", lambda: antiprism_graph(3).graph, 4),
]


@pytest.mark.parametrize(
    "name,make,expect", FAMILIES, ids=[f[0] for f in FAMILIES]
)
def test_family_agrees_with_flow(benchmark, name, make, expect):
    g = make()
    emb = embed_planar(g)
    rounds = 1 if expect >= 4 else 2

    def run():
        return planar_vertex_connectivity(g, emb, seed=1, rounds=rounds)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    flow = vertex_connectivity_flow(g)
    report(
        "E9-family", family=name, n=g.n, ours=result.connectivity,
        flow=flow, expect=expect, work=result.cost.work,
        depth=result.cost.depth,
    )
    assert result.connectivity == flow == expect


@pytest.mark.parametrize("n", [32, 128, 512])
def test_work_scaling_kappa2(benchmark, n):
    """Connectivity-2 decision over growing cycles: the separating 4-cycle
    search dominates; work should stay near-linear in n."""
    gg = cycle_graph(n)
    emb, _ = embed_geometric(gg)

    def run():
        return planar_vertex_connectivity(gg.graph, emb, seed=0, rounds=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.connectivity == 2
    report(
        "E9-scaling", n=n, work=result.cost.work,
        work_per_n=round(result.cost.work / n),
        depth=result.cost.depth,
    )
    benchmark.extra_info.update(n=n, work=result.cost.work)


def test_work_near_linear(benchmark):
    def _experiment():
        works = {}
        for n in (32, 128, 512):
            gg = cycle_graph(n)
            emb, _ = embed_geometric(gg)
            works[n] = planar_vertex_connectivity(
                gg.graph, emb, seed=0, rounds=1
            ).cost.work
        report("E9-linear", works=works)
        # 4x n -> work within ~6x (n log n with Monte Carlo noise).
        assert works[512] / works[128] <= 8
        assert works[128] / works[32] <= 8

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


@pytest.mark.parametrize("n", [128, 512])
def test_depth_polylogarithmic(benchmark, n):
    """Lemma 5.2's O(log^2 n) depth needs the parallel engine end to end."""
    gg = cycle_graph(n)
    emb, _ = embed_geometric(gg)

    def run():
        return planar_vertex_connectivity(
            gg.graph, emb, seed=0, rounds=1, engine="parallel"
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.connectivity == 2
    bound = 80 * np.log2(gg.graph.n) ** 2
    report("E9-depth", n=gg.graph.n, depth=result.cost.depth,
           bound=round(bound))
    assert result.cost.depth <= bound
