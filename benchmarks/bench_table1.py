"""T1 — Table 1, measured: work & depth of the planar subgraph isomorphism
algorithms.

Paper's claims (Table 1):

==============  ==========================  ==================
algorithm       work                        depth
==============  ==========================  ==================
color coding    e^k n^Theta(sqrt k) log n   Theta(k log n)
Eppstein        O(2^(3k log(3k+1)) n)       Theta(k n)
this paper      O((3k)^(3k+1) n log n)      O(k log^2 n)
==============  ==========================  ==================

We measure the charged work/depth of our pipeline (parallel engine),
Eppstein's sequential algorithm, and the color-coding comparator over an n
sweep, and assert the shapes: everyone's work grows near-linearly with n,
Eppstein's depth grows linearly while ours stays poly-logarithmic.  Host
wall-clock is what pytest-benchmark records.
"""

import math
import time

import numpy as np
import pytest

from repro.baselines import color_coding_decide, eppstein_decide
from repro.graphs import grid_graph
from repro.isomorphism import (
    SubgraphStateSpace,
    cycle_pattern,
    decide_subgraph_isomorphism,
    parallel_dp,
    triangle,
)
from repro.isomorphism.cover import treewidth_cover
from repro.planar import embed_geometric
from repro.pram import (
    Tracer,
    aggregate_phases,
    simulate_schedule,
    speedup_curve,
)
from repro.treedecomp import make_nice

from conftest import record_pr2, report, smoke_mode

SIZES = [256, 1024, 4096]

# Phases broken out per run (work share of the total); the union of
# "cover" and "dp-solve" covers nearly all charged work.
BREAKDOWN_PHASES = ("clustering", "cover", "dp-solve")


def _phase_breakdown(trace):
    """Map phase name -> total work charged under spans of that name."""
    if trace is None:
        return {}
    agg = aggregate_phases(trace)
    return {
        name: agg[name]["work"] for name in BREAKDOWN_PHASES if name in agg
    }


def _target(n):
    side = int(np.sqrt(n))
    gg = grid_graph(side, side)
    emb, _ = embed_geometric(gg)
    return gg.graph, emb


@pytest.mark.parametrize("n", SIZES)
def test_table1_this_paper(benchmark, n):
    graph, emb = _target(n)
    pattern = cycle_pattern(4)

    def run():
        return decide_subgraph_isomorphism(
            graph, emb, pattern, seed=1, rounds=1
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.found
    phases = _phase_breakdown(result.trace)
    benchmark.extra_info.update(
        n=n, work=result.cost.work, depth=result.cost.depth,
        phase_work=phases,
    )
    report(
        "T1-ours", n=n, k=pattern.k, work=result.cost.work,
        depth=result.cost.depth,
        **{f"work_{name}": w for name, w in phases.items()},
    )
    # The breakdown is attribution, not extra charge: phase totals are
    # bounded by (and nearly exhaust) the unchanged overall work.
    assert sum(w for n_, w in phases.items() if n_ != "clustering") <= (
        result.cost.work
    )
    # Depth claim O(k log^2 n): generous constant, but clearly sublinear.
    assert result.cost.depth <= 60 * pattern.k * math.log2(n) ** 2


@pytest.mark.parametrize("n", SIZES)
def test_table1_eppstein(benchmark, n):
    graph, emb = _target(n)
    pattern = cycle_pattern(4)

    def run():
        return eppstein_decide(graph, emb, pattern)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.found
    benchmark.extra_info.update(
        n=n, work=result.cost.work, depth=result.cost.depth
    )
    report(
        "T1-eppstein", n=n, k=pattern.k, work=result.cost.work,
        depth=result.cost.depth,
    )
    # Theta(k n) depth: at least linear in n.
    assert result.cost.depth >= graph.n


@pytest.mark.parametrize("n", SIZES[:2])
def test_table1_color_coding(benchmark, n):
    graph, emb = _target(n)
    pattern = cycle_pattern(4)

    def run():
        return color_coding_decide(pattern, graph, seed=2, repetitions=40)

    found, cost = benchmark.pedantic(run, rounds=1, iterations=1)
    assert found
    benchmark.extra_info.update(n=n, work=cost.work, depth=cost.depth)
    report("T1-colorcoding", n=n, k=pattern.k, work=cost.work,
           depth=cost.depth)


def test_table1_packed_speedup(benchmark):
    """T1-packed: wall-clock of the packed vs reference table engines.

    Times the dp-solve phase (where the packed kernels act) over the
    heaviest pieces of one real n=4096 cover with a k=7 pattern — the
    regime Table 1 is about, where the ``(tau + 3)^k`` tables dominate.
    The charged costs, accepting counts and parallel diagnostics must be
    identical between engines (the packed contract); the wall-clock floor
    is >= 5x (waived under BENCH_SMOKE along with the instance size).
    """
    smoke = smoke_mode()
    n = 256 if smoke else 4096
    pattern = cycle_pattern(5 if smoke else 7)
    top_pieces = 2 if smoke else 4
    graph, emb = _target(n)
    cover = treewidth_cover(
        graph, emb, pattern.k, pattern.diameter(), seed=1,
        tracer=Tracer("bench-cover"),
    )
    pieces = sorted(
        (p for p in cover.pieces if p.graph.n >= pattern.k),
        key=lambda p: p.graph.n,
        reverse=True,
    )[:top_pieces]
    prep = [
        (p, make_nice(p.decomposition.binarize())[0]) for p in pieces
    ]

    def solve(kernel):
        t0 = time.perf_counter()
        results = [
            parallel_dp(
                SubgraphStateSpace(pattern, p.graph), nice, engine=kernel
            )
            for p, nice in prep
        ]
        wall = time.perf_counter() - t0
        return wall, results

    def run():
        return solve("reference"), solve("packed")

    (ref_wall, ref), (pkd_wall, pkd) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # Engine invariance: identical charged costs and diagnostics per piece.
    for r, p in zip(ref, pkd):
        assert p.cost == r.cost
        assert p.accepting_count == r.accepting_count
        assert (p.total_states, p.total_shortcuts, p.max_bfs_rounds) == (
            r.total_states, r.total_shortcuts, r.max_bfs_rounds
        )
    work = sum(r.cost.work for r in ref)
    depth = max(r.cost.depth for r in ref)
    speedup = record_pr2(
        "T1-packed-speedup",
        config={
            "n": n, "pattern": f"C{pattern.k}", "engine": "parallel",
            "pieces": [p.graph.n for p, _ in prep],
        },
        reference={"wall_s": round(ref_wall, 3), "work": work, "depth": depth},
        packed={"wall_s": round(pkd_wall, 3), "work": work, "depth": depth},
    )
    benchmark.extra_info.update(n=n, speedup=round(speedup, 2))
    report(
        "T1-packed", n=n, k=pattern.k, pieces=len(prep),
        ref_s=round(ref_wall, 2), packed_s=round(pkd_wall, 2),
        speedup=round(speedup, 1),
    )
    if not smoke:
        assert speedup >= 5.0


def test_table1_speedup_curves(benchmark):
    """T1-speedup: strong-scaling curves, simulated vs scalar.

    The scalar curve evaluates the flat Brent closed form
    ``(W + D) / (ceil(W/P) + D)``; the simulated curve *executes* the
    recorded span tree under the greedy list scheduler
    (``repro.pram.schedule``), so sequential phases and imbalanced pieces
    show up as lost speedup the closed form cannot see.  Both are
    reported; the invariants asserted are the guaranteed ones: the
    simulated time never exceeds the scalar ``ceil(W/P) + D`` bound, and
    the simulated speedup never exceeds the ideal ``W / max(ceil(W/P), D)``.
    """
    smoke = smoke_mode()
    sizes = SIZES[:1] if smoke else SIZES
    procs = [1, 4, 16, 64, 256]
    pattern = cycle_pattern(4)

    def _experiment():
        rows = []
        for n in sizes:
            graph, emb = _target(n)
            result = decide_subgraph_isomorphism(
                graph, emb, pattern, seed=1, rounds=1
            )
            scalar = speedup_curve(result.cost, procs)
            simulated = {}
            for p in procs:
                sched = simulate_schedule(result.trace, p)
                assert sched.makespan <= result.cost.brent_time(p)
                assert sched.makespan >= sched.ideal_time()
                simulated[p] = sched.speedup
            assert simulated[1] == pytest.approx(1.0)
            report(
                "T1-speedup", n=n,
                scalar={p: round(s, 2) for p, s in scalar.items()},
                simulated={p: round(s, 2) for p, s in simulated.items()},
            )
            rows.append((n, scalar, simulated))
        return rows

    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    benchmark.extra_info.update(
        sizes=sizes,
        simulated={n: {p: round(s, 2) for p, s in sim.items()}
                   for n, _, sim in rows},
    )


def test_table1_depth_crossover(benchmark):
    def _experiment():
        """The headline: ours' depth is poly-log, Eppstein's is linear — the
        gap must widen with n."""
        pattern = triangle()
        ratios = []
        for n in SIZES:
            graph, emb = _target(n)
            ours = decide_subgraph_isomorphism(
                graph, emb, pattern, seed=0, rounds=1
            )
            seq = eppstein_decide(graph, emb, pattern)
            ratios.append(seq.cost.depth / ours.cost.depth)
            report(
                "T1-depth-ratio", n=n,
                ours=ours.cost.depth, eppstein=seq.cost.depth,
                ratio=round(seq.cost.depth / ours.cost.depth, 1),
            )
        assert ratios[-1] > ratios[0] > 1

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


def test_table1_work_near_linear(benchmark):
    def _experiment():
        """Our work grows ~n log n: quadrupling n grows work by <= ~5.5x."""
        pattern = triangle()
        works = []
        for n in SIZES:
            graph, emb = _target(n)
            result = decide_subgraph_isomorphism(
                graph, emb, pattern, seed=3, rounds=1
            )
            works.append(result.cost.work)
        for small, large in zip(works, works[1:]):
            assert large / small <= 6.5
        report("T1-work-scaling", works=works)

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


