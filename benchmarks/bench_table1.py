"""T1 — Table 1, measured: work & depth of the planar subgraph isomorphism
algorithms.

Paper's claims (Table 1):

==============  ==========================  ==================
algorithm       work                        depth
==============  ==========================  ==================
color coding    e^k n^Theta(sqrt k) log n   Theta(k log n)
Eppstein        O(2^(3k log(3k+1)) n)       Theta(k n)
this paper      O((3k)^(3k+1) n log n)      O(k log^2 n)
==============  ==========================  ==================

We measure the charged work/depth of our pipeline (parallel engine),
Eppstein's sequential algorithm, and the color-coding comparator over an n
sweep, and assert the shapes: everyone's work grows near-linearly with n,
Eppstein's depth grows linearly while ours stays poly-logarithmic.  Host
wall-clock is what pytest-benchmark records.
"""

import math

import numpy as np
import pytest

from repro.baselines import color_coding_decide, eppstein_decide
from repro.graphs import grid_graph
from repro.isomorphism import (
    cycle_pattern,
    decide_subgraph_isomorphism,
    triangle,
)
from repro.planar import embed_geometric
from repro.pram import aggregate_phases

from conftest import report

SIZES = [256, 1024, 4096]

# Phases broken out per run (work share of the total); the union of
# "cover" and "dp-solve" covers nearly all charged work.
BREAKDOWN_PHASES = ("clustering", "cover", "dp-solve")


def _phase_breakdown(trace):
    """Map phase name -> total work charged under spans of that name."""
    if trace is None:
        return {}
    agg = aggregate_phases(trace)
    return {
        name: agg[name]["work"] for name in BREAKDOWN_PHASES if name in agg
    }


def _target(n):
    side = int(np.sqrt(n))
    gg = grid_graph(side, side)
    emb, _ = embed_geometric(gg)
    return gg.graph, emb


@pytest.mark.parametrize("n", SIZES)
def test_table1_this_paper(benchmark, n):
    graph, emb = _target(n)
    pattern = cycle_pattern(4)

    def run():
        return decide_subgraph_isomorphism(
            graph, emb, pattern, seed=1, rounds=1
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.found
    phases = _phase_breakdown(result.trace)
    benchmark.extra_info.update(
        n=n, work=result.cost.work, depth=result.cost.depth,
        phase_work=phases,
    )
    report(
        "T1-ours", n=n, k=pattern.k, work=result.cost.work,
        depth=result.cost.depth,
        **{f"work_{name}": w for name, w in phases.items()},
    )
    # The breakdown is attribution, not extra charge: phase totals are
    # bounded by (and nearly exhaust) the unchanged overall work.
    assert sum(w for n_, w in phases.items() if n_ != "clustering") <= (
        result.cost.work
    )
    # Depth claim O(k log^2 n): generous constant, but clearly sublinear.
    assert result.cost.depth <= 60 * pattern.k * math.log2(n) ** 2


@pytest.mark.parametrize("n", SIZES)
def test_table1_eppstein(benchmark, n):
    graph, emb = _target(n)
    pattern = cycle_pattern(4)

    def run():
        return eppstein_decide(graph, emb, pattern)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.found
    benchmark.extra_info.update(
        n=n, work=result.cost.work, depth=result.cost.depth
    )
    report(
        "T1-eppstein", n=n, k=pattern.k, work=result.cost.work,
        depth=result.cost.depth,
    )
    # Theta(k n) depth: at least linear in n.
    assert result.cost.depth >= graph.n


@pytest.mark.parametrize("n", SIZES[:2])
def test_table1_color_coding(benchmark, n):
    graph, emb = _target(n)
    pattern = cycle_pattern(4)

    def run():
        return color_coding_decide(pattern, graph, seed=2, repetitions=40)

    found, cost = benchmark.pedantic(run, rounds=1, iterations=1)
    assert found
    benchmark.extra_info.update(n=n, work=cost.work, depth=cost.depth)
    report("T1-colorcoding", n=n, k=pattern.k, work=cost.work,
           depth=cost.depth)


def test_table1_depth_crossover(benchmark):
    def _experiment():
        """The headline: ours' depth is poly-log, Eppstein's is linear — the
        gap must widen with n."""
        pattern = triangle()
        ratios = []
        for n in SIZES:
            graph, emb = _target(n)
            ours = decide_subgraph_isomorphism(
                graph, emb, pattern, seed=0, rounds=1
            )
            seq = eppstein_decide(graph, emb, pattern)
            ratios.append(seq.cost.depth / ours.cost.depth)
            report(
                "T1-depth-ratio", n=n,
                ours=ours.cost.depth, eppstein=seq.cost.depth,
                ratio=round(seq.cost.depth / ours.cost.depth, 1),
            )
        assert ratios[-1] > ratios[0] > 1

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


def test_table1_work_near_linear(benchmark):
    def _experiment():
        """Our work grows ~n log n: quadrupling n grows work by <= ~5.5x."""
        pattern = triangle()
        works = []
        for n in SIZES:
            graph, emb = _target(n)
            result = decide_subgraph_isomorphism(
                graph, emb, pattern, seed=3, rounds=1
            )
            works.append(result.cost.work)
        for small, large in zip(works, works[1:]):
            assert large / small <= 6.5
        report("T1-work-scaling", works=works)

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


