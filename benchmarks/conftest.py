"""Shared fixtures/helpers for the benchmark harness.

Every ``bench_*.py`` regenerates one experiment from DESIGN.md's index
(measured analogue of the paper's Table 1 plus one experiment per
lemma/theorem/figure).  Conventions:

* heavy pipelines run once per measurement (``benchmark.pedantic`` with a
  single round) — the interesting quantities are the *charged* work/depth,
  recorded in ``benchmark.extra_info`` and printed as ``<id>| ...`` rows
  (run ``pytest benchmarks/ --benchmark-only -s`` to see them);
* each measurement also asserts the qualitative claim it reproduces (who
  wins, how curves scale), so the harness doubles as a regression test.
"""

import numpy as np
import pytest

from repro.graphs import delaunay_graph, grid_graph, triangulated_grid
from repro.planar import embed_geometric


@pytest.fixture(scope="session")
def targets():
    """A cache of embedded targets shared by the benchmarks."""
    cache = {}

    def get(kind: str, size: int, seed: int = 0):
        key = (kind, size, seed)
        if key not in cache:
            if kind == "delaunay":
                gg = delaunay_graph(size, seed=seed)
            elif kind == "grid":
                side = int(np.sqrt(size))
                gg = grid_graph(side, side)
            elif kind == "trigrid":
                side = int(np.sqrt(size))
                gg = triangulated_grid(side, side)
            else:
                raise ValueError(kind)
            emb, _ = embed_geometric(gg)
            cache[key] = (gg.graph, emb)
        return cache[key]

    return get


def report(experiment: str, **fields):
    """Print one table row for the experiment log."""
    cells = " ".join(f"{k}={v}" for k, v in fields.items())
    print(f"\n{experiment}| {cells}")
