"""Shared fixtures/helpers for the benchmark harness.

Every ``bench_*.py`` regenerates one experiment from DESIGN.md's index
(measured analogue of the paper's Table 1 plus one experiment per
lemma/theorem/figure).  Conventions:

* heavy pipelines run once per measurement (``benchmark.pedantic`` with a
  single round) — the interesting quantities are the *charged* work/depth,
  recorded in ``benchmark.extra_info`` and printed as ``<id>| ...`` rows
  (run ``pytest benchmarks/ --benchmark-only -s`` to see them);
* each measurement also asserts the qualitative claim it reproduces (who
  wins, how curves scale), so the harness doubles as a regression test.

The packed-kernel speedup experiments additionally write a machine-readable
record to ``BENCH_PR2.json`` (see :func:`record_pr2`): charged work/depth
and host wall-clock for the reference and packed table engines, plus the
wall-clock speedup.  The session-engine batch experiments write
``BENCH_PR3.json`` the same way (see :func:`record_pr3`): cold one-shot vs
warm cached-session wall-clock over a multi-pattern batch.
The multicore-backend experiments write ``BENCH_PR6.json`` (see
:func:`record_pr6`): measured wall-clock scaling of the ``processes``
execution backend laid side-by-side with the HLF schedule simulation's
predicted ``T_P`` and the Brent sandwich bounds.
The query-planner experiments write ``BENCH_PR7.json`` (see
:func:`record_pr7`): the planner's charged-cost regret against the best
manual variant, its predicted-vs-actual error, and the shared-subpattern
batch speedup over the per-pattern session path.
The query-daemon experiments write ``BENCH_SERVE.json`` (see
:func:`record_serve`): cold vs warm request latency of the same workload
over real sockets against ``python -m repro serve``'s session pool.
``BENCH_PR2_PATH``/``BENCH_PR3_PATH``/``BENCH_PR6_PATH``/
``BENCH_PR7_PATH``/``BENCH_SERVE_PATH`` override the output paths;
``BENCH_SMOKE=1`` shrinks
the instances and waives the speedup floors (CI smoke mode — the
equivalence assertions still run at full strength).
"""

import json
import os

import numpy as np
import pytest

from repro.graphs import delaunay_graph, grid_graph, triangulated_grid
from repro.planar import embed_geometric

_PR2_ROWS = []
_PR3_ROWS = []
_PR6_ROWS = []
_PR7_ROWS = []
_SERVE_ROWS = []


def smoke_mode() -> bool:
    """CI smoke mode: reduced instance sizes, no wall-clock floor."""
    return bool(os.environ.get("BENCH_SMOKE"))


def record_pr2(experiment: str, config: dict, reference: dict, packed: dict):
    """Record one reference-vs-packed measurement for BENCH_PR2.json.

    ``reference``/``packed`` each carry ``wall_s`` plus the charged
    ``work``/``depth`` totals; the charged quantities must already have
    been asserted identical by the caller (engine invariance).
    """
    speedup = reference["wall_s"] / max(packed["wall_s"], 1e-9)
    _PR2_ROWS.append(
        {
            "experiment": experiment,
            "config": config,
            "reference": reference,
            "packed": packed,
            "speedup": round(speedup, 2),
        }
    )
    return speedup


def record_pr3(experiment: str, config: dict, cold: dict, warm: dict):
    """Record one cold-vs-warm session measurement for BENCH_PR3.json.

    ``cold``/``warm`` each carry ``wall_s`` plus the charged ``work``
    totals of one full batch; the caller must already have asserted the
    per-query results byte-identical.
    """
    speedup = cold["wall_s"] / max(warm["wall_s"], 1e-9)
    _PR3_ROWS.append(
        {
            "experiment": experiment,
            "config": config,
            "cold": cold,
            "warm": warm,
            "speedup": round(speedup, 2),
        }
    )
    return speedup


def record_pr6(experiment: str, config: dict, points: list, extra: dict):
    """Record one measured-vs-predicted scaling sweep for BENCH_PR6.json.

    ``points`` are :func:`repro.pram.measured_as_dicts` rows — for every
    worker count the measured wall-clock and speedup next to the HLF
    simulation's predicted ``T_P``/speedup and the Brent sandwich bounds.
    The caller must already have asserted results and traces identical
    across the measured backends.
    """
    _PR6_ROWS.append(
        {
            "experiment": experiment,
            "config": config,
            "points": points,
            **extra,
        }
    )


def record_pr7(experiment: str, config: dict, **data):
    """Record one planner measurement for BENCH_PR7.json.

    ``data`` carries the experiment's payload verbatim — per-query regret
    rows with predicted-vs-actual errors for the planning experiments,
    batch wall-clock/charged-cost comparisons for the sharing ones.
    """
    _PR7_ROWS.append(
        {
            "experiment": experiment,
            "config": config,
            **data,
        }
    )


def record_serve(experiment: str, config: dict, cold: dict, warm: dict,
                 **extra):
    """Record one daemon cold-vs-warm measurement for BENCH_SERVE.json.

    ``cold``/``warm`` each carry ``wall_s`` and per-request latencies of
    one full request workload over real sockets; the caller must already
    have asserted the per-query verdicts identical across the passes.
    """
    speedup = cold["wall_s"] / max(warm["wall_s"], 1e-9)
    _SERVE_ROWS.append(
        {
            "experiment": experiment,
            "config": config,
            "cold": cold,
            "warm": warm,
            "speedup": round(speedup, 2),
            **extra,
        }
    )
    return speedup


def pytest_sessionfinish(session, exitstatus):
    if _PR2_ROWS:
        path = os.environ.get(
            "BENCH_PR2_PATH",
            os.path.join(os.path.dirname(__file__), "..", "BENCH_PR2.json"),
        )
        payload = {
            "schema": "bench-pr2/v1",
            "smoke": smoke_mode(),
            "experiments": _PR2_ROWS,
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if _PR3_ROWS:
        path = os.environ.get(
            "BENCH_PR3_PATH",
            os.path.join(os.path.dirname(__file__), "..", "BENCH_PR3.json"),
        )
        payload = {
            "schema": "bench-pr3/v1",
            "smoke": smoke_mode(),
            "experiments": _PR3_ROWS,
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if _PR6_ROWS:
        path = os.environ.get(
            "BENCH_PR6_PATH",
            os.path.join(os.path.dirname(__file__), "..", "BENCH_PR6.json"),
        )
        payload = {
            "schema": "bench-pr6/v1",
            "smoke": smoke_mode(),
            "cpu_count": os.cpu_count(),
            "experiments": _PR6_ROWS,
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if _SERVE_ROWS:
        path = os.environ.get(
            "BENCH_SERVE_PATH",
            os.path.join(
                os.path.dirname(__file__), "..", "BENCH_SERVE.json"
            ),
        )
        payload = {
            "schema": "bench-serve/v1",
            "smoke": smoke_mode(),
            "experiments": _SERVE_ROWS,
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if _PR7_ROWS:
        path = os.environ.get(
            "BENCH_PR7_PATH",
            os.path.join(os.path.dirname(__file__), "..", "BENCH_PR7.json"),
        )
        payload = {
            "schema": "bench-pr7/v1",
            "smoke": smoke_mode(),
            "experiments": _PR7_ROWS,
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")


@pytest.fixture(scope="session")
def targets():
    """A cache of embedded targets shared by the benchmarks."""
    cache = {}

    def get(kind: str, size: int, seed: int = 0):
        key = (kind, size, seed)
        if key not in cache:
            if kind == "delaunay":
                gg = delaunay_graph(size, seed=seed)
            elif kind == "grid":
                side = int(np.sqrt(size))
                gg = grid_graph(side, side)
            elif kind == "trigrid":
                side = int(np.sqrt(size))
                gg = triangulated_grid(side, side)
            else:
                raise ValueError(kind)
            emb, _ = embed_geometric(gg)
            cache[key] = (gg.graph, emb)
        return cache[key]

    return get


def report(experiment: str, **fields):
    """Print one table row for the experiment log."""
    cells = " ".join(f"{k}={v}" for k, v in fields.items())
    print(f"\n{experiment}| {cells}")
