"""E3 — Lemma 3.2 / Appendix A / Figure 1: tree -> layered paths.

Claims measured:
* number of layers <= log2 n + 1;
* vertices in layer i have no children in layers > i (validated);
* O(n) work, O(log n) depth via tree contraction with the *corrected*
  function family (the erratum note in repro.pram.layer_algebra).
"""

import numpy as np
import pytest

from repro.treedecomp import layered_paths, tree_layers_parallel

from conftest import report

NIL = -1


def random_full_binary(n_internal, rng):
    n = 2 * n_internal + 1
    parent = np.full(n, NIL, dtype=np.int64)
    leaves = [0]
    nxt = 1
    for _ in range(n_internal):
        v = leaves.pop(int(rng.integers(0, len(leaves))))
        parent[nxt] = v
        parent[nxt + 1] = v
        leaves.extend([nxt, nxt + 1])
        nxt += 2
    return parent


@pytest.mark.parametrize("n_internal", [500, 2000, 8000])
def test_layer_count_logarithmic(benchmark, n_internal):
    rng = np.random.default_rng(7)
    parent = random_full_binary(n_internal, rng)
    n = parent.shape[0]

    def run():
        return layered_paths(parent, 0)

    pd, cost = benchmark.pedantic(run, rounds=1, iterations=1)
    bound = np.log2(n) + 1
    report(
        "E3-layers", n=n, layers=pd.num_layers, bound=round(bound, 1),
        paths=sum(len(layer) for layer in pd.layers),
    )
    benchmark.extra_info.update(n=n, layers=pd.num_layers)
    assert pd.num_layers <= bound
    # Lemma 3.2's structural property.
    for v in range(n):
        p = int(parent[v])
        if p != NIL:
            assert pd.layer_of[p] >= pd.layer_of[v]


@pytest.mark.parametrize("n_internal", [1000, 4000])
def test_contraction_cost(benchmark, n_internal):
    rng = np.random.default_rng(8)
    parent = random_full_binary(n_internal, rng)
    n = parent.shape[0]

    def run():
        return tree_layers_parallel(parent, 0)

    layers, cost = benchmark.pedantic(run, rounds=1, iterations=1)
    lg = np.log2(n)
    report(
        "E3-contraction", n=n, work=cost.work, depth=cost.depth,
        work_per_n=round(cost.work / n, 1), depth_bound=round(30 * lg),
    )
    assert cost.work <= 150 * n  # O(n) work
    assert cost.depth <= 30 * lg  # O(log n) depth


def test_pathological_caterpillar(benchmark):
    def _experiment():
        """A caterpillar stays in one layer (single path per tree)."""
        n_internal = 3000
        n = 2 * n_internal + 1
        parent = np.full(n, NIL, dtype=np.int64)
        node = 0
        for i in range(n_internal):
            parent[node + 2] = node  # spine child
            parent[node + 1] = node  # leaf child
            node += 2
        pd, _ = layered_paths(parent, 0)
        report("E3-caterpillar", n=n, layers=pd.num_layers)
        assert pd.num_layers == 2  # leaves in layer 0, the spine in layer 1

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


