"""E5 — Lemma 3.1 / Figure 4: the bounded-treewidth engines.

Claims measured:
* parallel and sequential engines produce identical valid-state sets
  (correctness at scale);
* per-node state count respects the (tau + 3)^k bound, and the measured
  count is far below it (the sparse pruning);
* work grows with the bag width tau as the bound predicts (steeply), while
  staying linear in n at fixed tau.
"""

import pytest

from repro.graphs import grid_graph
from repro.isomorphism import (
    SubgraphStateSpace,
    cycle_pattern,
    parallel_dp,
    sequential_dp,
    triangle,
)
from repro.treedecomp import make_nice, minfill_decomposition

from conftest import report


def inputs(rows, cols, pattern):
    g = grid_graph(rows, cols).graph
    td, _ = minfill_decomposition(g)
    nice, _ = make_nice(td)
    return g, SubgraphStateSpace(pattern, g), nice


@pytest.mark.parametrize("cols", [40, 160])
def test_work_linear_in_n_at_fixed_width(benchmark, cols):
    g, space, nice = inputs(4, cols, cycle_pattern(4))

    def run():
        return sequential_dp(space, nice)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.found
    report(
        "E5-linear", n=g.n, tau=nice.width(), work=result.cost.work,
        work_per_n=round(result.cost.work / g.n),
    )
    benchmark.extra_info.update(n=g.n, work=result.cost.work)


def test_work_per_vertex_flat(benchmark):
    def _experiment():
        per_vertex = []
        for cols in (40, 80, 160):
            g, space, nice = inputs(4, cols, cycle_pattern(4))
            result = sequential_dp(space, nice)
            per_vertex.append(result.cost.work / g.n)
        report("E5-per-vertex", per_vertex=[round(w) for w in per_vertex])
        assert max(per_vertex) / min(per_vertex) <= 1.6

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


@pytest.mark.parametrize("rows", [3, 4, 5])
def test_state_bound(benchmark, rows):
    pattern = triangle()
    g, space, nice = inputs(rows, 12, pattern)

    def run():
        return parallel_dp(space, nice)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    tau = nice.width()
    bound = nice.num_nodes * (tau + 3) ** pattern.k
    report(
        "E5-states", tau=tau, states=result.total_states,
        paper_bound=bound,
        fraction=round(result.total_states / bound, 5),
    )
    assert result.total_states <= bound


def test_engines_agree_at_scale(benchmark):
    def _experiment():
        g, space, nice = inputs(5, 24, cycle_pattern(4))
        seq = sequential_dp(space, nice)
        par = parallel_dp(space, nice)
        mismatches = sum(
            1
            for node in range(nice.num_nodes)
            if set(par.valid[node]) != set(seq.valid[node])
        )
        report("E5-agreement", nodes=nice.num_nodes, mismatches=mismatches,
               found=seq.found)
        assert mismatches == 0
        assert par.found == seq.found

    benchmark.pedantic(_experiment, rounds=1, iterations=1)


