"""Planar vertex connectivity (Section 5, Lemmas 5.1 and 5.2, Figure 6).

Pipeline:

1. connectivity 0 / 1 via connected components and articulation points
   (the "existing algorithms" step [38, 50]);
2. build the bipartite face--vertex graph G' from a planar embedding
   (Section 5.1; ``repro.planar.face_vertex``), marking the original
   vertices as the set S;
3. for c = 2, 3, 4 in turn, search for an S-separating cycle of length 2c
   in G' using the separating subgraph isomorphism machinery (Section 5.2);
   the first hit gives kappa = c (Lemma 5.1: the shortest separating cycle
   has length exactly 2 kappa);
4. no separating 8-cycle: kappa = 5 (planar graphs have a degree-<= 5
   vertex, so kappa <= 5).

Monte Carlo: "found" answers are exact; "not found" steps hold w.h.p., so
the returned connectivity is correct w.h.p. (Lemma 5.2).

Tiny graphs (n <= 5) bypass the cycle characterization — Lemma 5.1 needs a
separator to exist (e.g. K4 has connectivity 3 yet no separating cycle at
all) — and are answered by the exact flow baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..engine.artifacts import ColdArtifacts
from ..graphs.biconnectivity import is_biconnected
from ..graphs.components import connected_components
from ..graphs.csr import Graph
from ..isomorphism.pattern import cycle_pattern
from ..planar.embedding import PlanarEmbedding
from ..pram import Cost, Span, Tracer
from ..separating.driver import decide_separating_isomorphism
from .flow_vc import vertex_connectivity_flow

from ..analysis.contracts import cost_contract

__all__ = ["VertexConnectivityResult", "planar_vertex_connectivity"]


@dataclass
class VertexConnectivityResult:
    """Outcome of the planar vertex connectivity decision.

    ``connectivity`` is exact for values decided structurally (0, 1, small
    graphs) and correct w.h.p. for the cycle-characterized values 2..5.
    ``certificate_cut`` (when requested and kappa <= 4) is a *verified*
    minimum vertex cut extracted from a separating cycle.  (Not every
    separating cycle's original vertices cut G — see the note in
    ``repro.connectivity.min_cuts`` — so candidates are checked and, if
    needed, further cycles are enumerated.)
    """

    connectivity: int
    certificate_cut: Optional[frozenset]
    cost: Cost
    trace: Optional[Span] = None
    amortized: bool = False
    cold_equivalent_cost: Optional[Cost] = None
    plan: Optional[object] = None


@cost_contract(work="O(c_k n log n + c_k p)", depth="O(log^2 n + c_k p)")
def planar_vertex_connectivity(
    graph: Graph,
    embedding: PlanarEmbedding,
    seed: int = 0,
    engine: Optional[str] = None,
    rounds: Optional[int] = None,
    want_certificate: bool = False,
    artifacts=None,
    backend=None,
    plan=None,
) -> VertexConnectivityResult:
    """Decide the vertex connectivity of a planar graph (Lemma 5.2).

    ``engine`` defaults to the sequential bounded-treewidth engine: the
    parallel engine's candidate enumeration realizes the paper's full
    ``2^O(k) (3k+3)^(3k+1)`` per-piece state bound, whose constant for the
    8-cycle searches is enormous (the paper's work bound is FPT in k, not
    small); the sequential engine visits only reachable states and returns
    identical verdicts (property-tested).  Pass ``engine="parallel"`` to
    exercise the low-depth machinery end to end (fine for small graphs;
    the E10 benchmark measures its depth).  ``backend`` executes the
    per-minor solves of the cycle searches (``repro.exec``); one resolved
    backend is shared across the c = 2, 3, 4 searches.
    """
    from ..engine.planner import apply_plan

    n = graph.n
    provider = (
        artifacts if artifacts is not None else ColdArtifacts(graph, embedding)
    )
    # VC has no pattern argument: plan against the deepest cycle search
    # (the 8-cycle of the c = 4 probe), which dominates the pipeline cost.
    plan_obj, engine, _kernel, backend = apply_plan(
        plan, provider, cycle_pattern(8), "vc", seed, rounds,
        engine, None, backend, default_engine="sequential",
    )
    mark = provider.amortization_mark()
    tracker = Tracer("planar-vc")
    tracker.count(n=n)

    def _result(connectivity, cut):
        hits, saved = provider.amortization_since(mark)
        if plan_obj is not None:
            plan_obj.record_actual(tracker.cost)
        return VertexConnectivityResult(
            connectivity=connectivity,
            certificate_cut=cut,
            cost=tracker.cost,
            trace=tracker.root,
            amortized=hits > 0,
            cold_equivalent_cost=tracker.cost + saved,
            plan=plan_obj,
        )

    if n <= 5:
        # Lemma 5.1 needs a separator to exist; tiny/complete graphs are
        # answered exactly by the flow baseline.
        kappa = vertex_connectivity_flow(graph)
        tracker.charge(
            # n <= 5 here: the n^2 flow baseline is O(1) in the
            # contract's asymptotic regime.
            Cost.step(max(n * n, 1)),  # repro: noqa[RPR010]
            label="flow-baseline")
        return _result(kappa, None)

    _, count, ccost = connected_components(graph)
    tracker.charge(ccost, label="components", components=count)
    if count > 1:
        return _result(0, None)
    two, bcost = is_biconnected(graph)
    tracker.charge(bcost, label="biconnectivity")
    if not two:
        cut = None
        if want_certificate:
            from ..graphs.biconnectivity import articulation_points

            points, acost = articulation_points(graph)
            tracker.charge(acost, label="articulation")
            if points.size:
                cut = frozenset([int(points[0])])
        return _result(1, cut)

    fv = provider.face_vertex(tracker)
    sub_artifacts = provider.sub_provider(fv.graph, fv.embedding)
    marked = np.zeros(fv.graph.n, dtype=bool)
    marked[: fv.num_original] = True
    # Cycles of the bipartite G' alternate original/face vertices, so the
    # pattern parity can be pinned to the bipartition (symmetry reduction:
    # every cycle admits a rotation starting at an original vertex).
    host_classes = (np.arange(fv.graph.n) >= fv.num_original).astype(
        np.int64
    )

    from ..exec.backends import backend_scope

    with backend_scope(backend) as executor:
        for c in (2, 3, 4):
            with tracker.span("cycle-search", cycle=2 * c):
                result = decide_separating_isomorphism(
                    fv.graph,
                    fv.embedding,
                    marked,
                    cycle_pattern(2 * c),
                    seed=seed + 101 * c,
                    engine=engine,
                    rounds=rounds,
                    want_witness=want_certificate,
                    host_classes=host_classes,
                    pattern_classes=[p % 2 for p in range(2 * c)],
                    artifacts=sub_artifacts,
                    backend=executor,
                )
                tracker.attach(result.trace)
            if result.found:
                certificate = None
                if want_certificate:
                    certificate = _certified_cut(
                        graph, embedding, c, result.witness, seed, engine,
                        tracker,
                    )
                return _result(c, certificate)
    # Planar graphs are never 6-connected (Euler: minimum degree <= 5).
    return _result(5, None)


@cost_contract(work="O(n log n)", depth="O(log^2 n)")
def _certified_cut(
    graph, embedding, kappa, witness, seed, engine, tracker: Tracer
) -> Optional[frozenset]:
    """Turn the found separating cycle into a *verified* minimum cut,
    enumerating further cycles if the first candidate does not cut G."""
    from .min_cuts import _really_cuts, minimum_vertex_cuts

    if witness is not None:
        candidate = frozenset(
            v for v in witness.values() if v < graph.n
        )
        if len(candidate) == kappa and _really_cuts(graph, candidate):
            return candidate
    fallback = minimum_vertex_cuts(
        graph, embedding, seed=seed + 1, engine=engine,
        stop_after_first=True, known_connectivity=kappa,
        max_iterations=8,
    )
    tracker.attach(fallback.trace)
    return next(iter(fallback.cuts), None)
