"""Enumerating minimum vertex cuts of a planar graph.

A by-product of the Section 5 machinery: every minimum vertex cut of G is
the original-vertex set of some S-separating 2·kappa-cycle in the
face--vertex graph G' (the construction direction of Lemma 5.1), and the
*listing* extension of the separating search (Sections 4.2 + 5.2)
enumerates those cycles.  This module combines the two, yielding all (or,
Monte Carlo, w.h.p. all) minimum vertex cuts of the input graph — useful
for reliability analysis of planar networks (which set of kappa
intersection closures disconnects the city?).

A subtlety the paper's Figure 6 glosses over: the *converse* direction is
not literal — a cycle can separate the original vertices of G' without its
original vertices cutting G (on the 7-cycle, any 4-cycle through both face
vertices isolates every other original vertex of G', yet two *adjacent*
originals do not cut C7).  Lemma 5.1's *length* claim is unaffected (the
shortest separating cycle length still equals 2·kappa), but candidate
vertex sets extracted from cycles must be *verified* — each is checked to
actually disconnect G before being reported.  Completeness still holds
because every true minimum cut does appear among the cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Optional, Set

import numpy as np

from ..graphs.csr import Graph
from ..isomorphism.pattern import cycle_pattern
from ..isomorphism.recovery import iter_witnesses
from ..isomorphism.sequential_dp import sequential_dp
from ..isomorphism.parallel_dp import parallel_dp
from ..planar.embedding import PlanarEmbedding
from ..planar.face_vertex import build_face_vertex_graph
from ..pram import Cost, Span, Tracer
from ..separating.cover import separating_cover
from ..separating.state_space import SeparatingStateSpace
from ..treedecomp.nice import make_nice
from .planar_vc import planar_vertex_connectivity

__all__ = ["MinimumCutsResult", "minimum_vertex_cuts"]


@dataclass
class MinimumCutsResult:
    """All minimum vertex cuts found (w.h.p. all of them).

    ``connectivity`` is the graph's kappa; each element of ``cuts`` is a
    frozenset of kappa vertices whose removal disconnects the graph.
    """

    connectivity: int
    cuts: Set[FrozenSet[int]]
    iterations: int
    cost: Cost
    trace: Optional[Span] = None


def _really_cuts(graph: Graph, cut: FrozenSet[int]) -> bool:
    """Verify that deleting ``cut`` disconnects the graph."""
    from ..graphs.components import connected_components

    rest = [v for v in range(graph.n) if v not in cut]
    if len(rest) < 2:
        return False
    sub, _ = graph.induced_subgraph(rest)
    _, comps, _ = connected_components(sub)
    return comps > 1


def minimum_vertex_cuts(
    graph: Graph,
    embedding: PlanarEmbedding,
    seed: int = 0,
    engine: str = "sequential",
    confidence_log_factor: float = 1.0,
    max_iterations: Optional[int] = None,
    stop_after_first: bool = False,
    known_connectivity: Optional[int] = None,
) -> MinimumCutsResult:
    """Enumerate (w.h.p.) every minimum vertex cut of a planar graph.

    Applies only when ``kappa in {2, 3, 4}`` (the cycle-characterized
    range); for kappa <= 1 the cuts are articulation points / empty and for
    kappa = 5 no separating 8-cycle exists — both cases return the trivial
    answer.
    """
    tracker = Tracer("min-cuts")
    tracker.count(n=graph.n)
    if known_connectivity is None:
        vc = planar_vertex_connectivity(
            graph, embedding, seed=seed, engine=engine
        )
        tracker.attach(vc.trace)
        kappa = vc.connectivity
    else:
        kappa = known_connectivity
    if kappa == 0:
        return MinimumCutsResult(
            0, set(), 0, tracker.cost, trace=tracker.root
        )
    if kappa == 1:
        from ..graphs.biconnectivity import articulation_points

        cuts_arr, acost = articulation_points(graph)
        tracker.charge(acost, label="articulation")
        return MinimumCutsResult(
            1,
            {frozenset([int(v)]) for v in cuts_arr},
            0,
            tracker.cost,
            trace=tracker.root,
        )
    if kappa >= 5:
        return MinimumCutsResult(
            kappa, set(), 0, tracker.cost, trace=tracker.root
        )

    fv, fcost = build_face_vertex_graph(embedding)
    tracker.charge(fcost, label="face-vertex")
    marked = np.zeros(fv.graph.n, dtype=bool)
    marked[: fv.num_original] = True
    host_classes = (np.arange(fv.graph.n) >= fv.num_original).astype(
        np.int64
    )
    pattern = cycle_pattern(2 * kappa)
    pattern_classes = [p % 2 for p in range(2 * kappa)]

    cuts: Set[FrozenSet[int]] = set()
    dry = 0
    iterations = 0
    log_n = math.log2(max(graph.n, 2))
    while True:
        iterations += 1
        with tracker.span("iteration"):
            cover = separating_cover(
                fv.graph, fv.embedding, marked, pattern.k,
                pattern.diameter(), seed=seed + 31 * iterations,
                tracer=tracker,
            )
            new_here = 0
            stop_now = False
            for piece in cover.pieces:
                if int(piece.allowed.sum()) < pattern.k:
                    continue
                local_classes = np.where(
                    piece.originals >= 0,
                    host_classes[np.maximum(piece.originals, 0)],
                    -1,
                )
                space = SeparatingStateSpace(
                    pattern, piece.graph, piece.marked, piece.allowed,
                    host_classes=local_classes,
                    pattern_classes=pattern_classes,
                )
                nice, _ = make_nice(
                    piece.decomposition.binarize(), tracer=tracker
                )
                result = (
                    parallel_dp(space, nice, tracer=tracker)
                    if engine == "parallel"
                    else sequential_dp(space, nice, tracer=tracker)
                )
                if not result.found:
                    continue
                for w in iter_witnesses(space, nice, result.valid):
                    cut = frozenset(
                        int(piece.originals[v])
                        for v in w.values()
                        if 0 <= int(piece.originals[v]) < fv.num_original
                    )
                    if (
                        len(cut) == kappa
                        and cut not in cuts
                        and _really_cuts(graph, cut)
                    ):
                        cuts.add(cut)
                        new_here += 1
                        if stop_after_first:
                            stop_now = True
                            break
                if stop_now:
                    break
        if stop_now:
            return MinimumCutsResult(
                connectivity=kappa,
                cuts=cuts,
                iterations=iterations,
                cost=tracker.cost,
                trace=tracker.root,
            )
        if new_here:
            dry = 0
        else:
            dry += 1
        threshold = math.log2(iterations + 1) + (
            confidence_log_factor * log_n
        )
        if dry >= threshold:
            break
        if max_iterations is not None and iterations >= max_iterations:
            break
    return MinimumCutsResult(
        connectivity=kappa,
        cuts=cuts,
        iterations=iterations,
        cost=tracker.cost,
        trace=tracker.root,
    )
