"""Flow-based vertex connectivity (the classical baseline).

Even--Tarjan scheme over unit-capacity vertex-split max-flows: kappa(s, t)
for non-adjacent s, t equals the max number of internally vertex-disjoint
s-t paths (Menger); the global kappa is the minimum of kappa(v_i, v_j) over
all non-adjacent pairs with i <= current-min + 1 (some vertex among the
first kappa + 1 lies outside a minimum separator).  Each flow augments at
most kappa + 1 <= 6 times on planar inputs, so the baseline is comfortably
polynomial — it anchors the correctness of the paper's algorithm in the E9
benchmark and the tests.

Also provides the definition-checking brute force for tiny graphs.
"""

from __future__ import annotations

from itertools import combinations
from typing import List


from ..graphs.components import connected_components
from ..graphs.csr import Graph

__all__ = ["vertex_connectivity_flow", "vertex_connectivity_bruteforce",
           "local_connectivity"]


def local_connectivity(graph: Graph, s: int, t: int) -> int:
    """kappa(s, t) for non-adjacent s != t: max internally vertex-disjoint
    paths, via BFS augmentation on the vertex-split digraph."""
    if s == t or graph.has_edge(s, t):
        raise ValueError("local connectivity needs non-adjacent endpoints")
    n = graph.n
    # Node 2v = v_in, 2v+1 = v_out; arc v_in -> v_out capacity 1 (except
    # s, t: infinite); edge {u, v} -> u_out -> v_in and v_out -> u_in.
    # Residual graph as adjacency dict with capacities.
    cap = {}

    def add(a: int, b: int, c: int) -> None:
        cap[(a, b)] = cap.get((a, b), 0) + c
        cap.setdefault((b, a), 0)

    big = n + 1
    for v in range(n):
        add(2 * v, 2 * v + 1, big if v in (s, t) else 1)
    for u, v in graph.iter_edges():
        add(2 * u + 1, 2 * v, big)
        add(2 * v + 1, 2 * u, big)
    adj: List[List[int]] = [[] for _ in range(2 * n)]
    for (a, b) in cap:
        adj[a].append(b)

    source, sink = 2 * s + 1, 2 * t
    flow = 0
    while True:
        parent = {source: -1}
        queue = [source]
        while queue and sink not in parent:
            nxt = []
            for x in queue:
                for y in adj[x]:
                    if y not in parent and cap[(x, y)] > 0:
                        parent[y] = x
                        nxt.append(y)
            queue = nxt
        if sink not in parent:
            return flow
        y = sink
        while y != source:
            x = parent[y]
            cap[(x, y)] -= 1
            cap[(y, x)] += 1
            y = x
        flow += 1
        if flow > n:  # pragma: no cover - safety valve
            raise RuntimeError("flow exceeded vertex count")


def vertex_connectivity_flow(graph: Graph) -> int:
    """Global vertex connectivity (Even--Tarjan pair selection).

    Conventions: kappa(K_n) = n - 1, kappa of a disconnected graph is 0,
    kappa(K_1) = 0.
    """
    n = graph.n
    if n <= 1:
        return 0
    _, count, _ = connected_components(graph)
    if count > 1:
        return 0
    if 2 * graph.m == n * (n - 1):
        return n - 1  # complete graph
    best = n - 1
    i = 0
    while i <= best and i < n:
        s = i
        for t in range(n):
            if t == s or graph.has_edge(s, t):
                continue
            best = min(best, local_connectivity(graph, s, t))
        i += 1
    return best


def vertex_connectivity_bruteforce(graph: Graph) -> int:
    """Definition-checking: the smallest vertex cut, by subset enumeration.

    Exponential; for cross-checking on tiny graphs only (n <= ~10).
    """
    n = graph.n
    if n <= 1:
        return 0
    _, count, _ = connected_components(graph)
    if count > 1:
        return 0
    for size in range(0, n - 1):
        for cut in combinations(range(n), size):
            rest = [v for v in range(n) if v not in cut]
            if not rest:
                continue
            sub, _ = graph.induced_subgraph(rest)
            _, comps, _ = connected_components(sub)
            if comps > 1:
                return size
    return n - 1
