"""Planar vertex connectivity (Section 5) and the flow baseline."""

from .flow_vc import (
    local_connectivity,
    vertex_connectivity_bruteforce,
    vertex_connectivity_flow,
)
from .planar_vc import VertexConnectivityResult, planar_vertex_connectivity
from .min_cuts import MinimumCutsResult, minimum_vertex_cuts

__all__ = [
    "MinimumCutsResult",
    "minimum_vertex_cuts",
    "local_connectivity",
    "vertex_connectivity_flow",
    "vertex_connectivity_bruteforce",
    "VertexConnectivityResult",
    "planar_vertex_connectivity",
]
