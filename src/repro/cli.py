"""Command-line interface.

Examples
--------
::

    python -m repro decide  --target trigrid:12x12 --pattern triangle
    python -m repro decide  --target trigrid:24x24 --pattern cycle:4 \
        --backend processes --processors 4
    python -m repro decide  --target grid:16x16 --pattern cycle:4 \
        --plan auto --explain
    python -m repro count   --target grid:8x8 --pattern cycle:4 --exact
    python -m repro list    --target grid:6x6 --pattern cycle:4
    python -m repro vc      --target antiprism:4
    python -m repro vc      --target delaunay:200:7 --rounds 2
    python -m repro batch   --target grid:16x16 \
        --patterns cycle:4,path:4,star:3 --session-stats
    python -m repro batch   --target trigrid:12x12 \
        --patterns-file patterns.txt --session-stats
    python -m repro profile --target trigrid:12x12 --pattern cycle:4 \
        --processors 1,4,16,64 --chrome-trace decide.json --metrics decide.prom
    python -m repro profile --target trigrid:16x16 --pattern cycle:4 \
        --processors 1,2,4 --measure
    python -m repro lint src/repro --format json --output lint.json

``batch`` answers every pattern against one :class:`repro.engine.TargetSession`
(covers, clusterings and per-piece decompositions are built once and served
from cache afterwards); ``--session-stats`` prints the cache hit/miss table
and the saved (amortized) cost, and ``--metrics PATH`` exports the same
counters (plus the last query's trace) in Prometheus text format.

``profile`` runs one decide query, *executes* its span tree under the
greedy list scheduler (``repro.pram.schedule``) for each ``--processors``
count, and prints the simulated makespans against the scalar Brent bound;
``--chrome-trace PATH`` writes a Chrome trace-event/Perfetto JSON timeline
of the widest schedule and ``--metrics PATH`` the Prometheus gauges.

Every command accepts ``--trace`` to print the hierarchical per-phase
work/depth table (the span tree recorded by ``repro.pram.trace``) and
``--trace-json PATH`` to dump the same tree as JSON::

    python -m repro decide --target trigrid:12x12 --pattern triangle --trace
    python -m repro vc --target wheel:6 --rounds 2 --trace-json vc-trace.json

Target specs: ``grid:RxC``, ``trigrid:RxC``, ``delaunay:N[:SEED]``,
``cycle:N``, ``path:N``, ``wheel:RIM``, ``antiprism:K``, ``icosahedron``,
``tree:N[:SEED]``, ``outerplanar:N[:SEED]``.

Pattern specs: ``triangle``, ``path:K``, ``cycle:K``, ``star:LEAVES``,
``clique:K``, ``diamond``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Tuple

from .graphs.csr import Graph
from .planar.embedding import PlanarEmbedding

__all__ = ["main", "parse_target", "parse_pattern"]


def parse_target(spec: str) -> Tuple[Graph, PlanarEmbedding]:
    """Build the target graph + embedding from a CLI spec string."""
    from . import graphs
    from .planar import embed_geometric, embed_planar

    name, *args = spec.split(":")
    try:
        if name == "grid":
            r, c = args[0].split("x")
            gg = graphs.grid_graph(int(r), int(c))
        elif name == "trigrid":
            r, c = args[0].split("x")
            gg = graphs.triangulated_grid(int(r), int(c))
        elif name == "delaunay":
            seed = int(args[1]) if len(args) > 1 else 0
            gg = graphs.delaunay_graph(int(args[0]), seed=seed)
        elif name == "cycle":
            gg = graphs.cycle_graph(int(args[0]))
        elif name == "path":
            gg = graphs.path_graph(int(args[0]))
        elif name == "wheel":
            gg = graphs.wheel_graph(int(args[0]))
        elif name == "antiprism":
            gg = graphs.antiprism_graph(int(args[0]))
        elif name == "icosahedron":
            g = graphs.icosahedron_graph().graph
            return g, embed_planar(g)
        elif name == "tree":
            seed = int(args[1]) if len(args) > 1 else 0
            g = graphs.random_tree(int(args[0]), seed=seed)
            return g, embed_planar(g)
        elif name == "outerplanar":
            seed = int(args[1]) if len(args) > 1 else 0
            gg = graphs.outerplanar_graph(int(args[0]), seed=seed)
        else:
            raise ValueError(f"unknown target family {name!r}")
    except (IndexError, ValueError) as exc:
        raise SystemExit(f"bad target spec {spec!r}: {exc}") from exc
    emb, _ = embed_geometric(gg)
    return gg.graph, emb


def parse_pattern(spec: str):
    """Build the pattern from a CLI spec string."""
    from . import isomorphism as iso

    name, *args = spec.split(":")
    try:
        if name == "triangle":
            return iso.triangle()
        if name == "path":
            return iso.path_pattern(int(args[0]))
        if name == "cycle":
            return iso.cycle_pattern(int(args[0]))
        if name == "star":
            return iso.star_pattern(int(args[0]))
        if name == "clique":
            return iso.clique_pattern(int(args[0]))
        if name == "diamond":
            return iso.diamond()
        raise ValueError(f"unknown pattern family {name!r}")
    except (IndexError, ValueError) as exc:
        raise SystemExit(f"bad pattern spec {spec!r}: {exc}") from exc


def _cost_summary(cost) -> str:
    return (
        f"work={cost.work:,} depth={cost.depth:,} "
        f"parallelism={cost.parallelism():,.0f} "
        f"T(64 procs)={cost.brent_time(64):,}"
    )


def _emit_plan(args, plan) -> None:
    """Print the executed plan per --explain."""
    if not getattr(args, "explain", False):
        return
    if plan is None:
        print("(no plan recorded: pass --plan auto)")
        return
    print(plan.explain())


def _emit_trace(args, trace) -> None:
    """Print and/or dump the result's span tree per --trace/--trace-json."""
    if trace is None:
        if args.trace or args.trace_json:
            print("(no trace recorded for this command)")
        return
    if args.trace:
        from .pram import format_trace

        print(format_trace(trace))
    if args.trace_json:
        import json

        try:
            with open(args.trace_json, "w", encoding="utf-8") as fh:
                json.dump(trace.to_dict(), fh, indent=2)
        except OSError as exc:
            raise SystemExit(
                f"cannot write trace to {args.trace_json!r}: {exc}"
            ) from exc
        print(f"trace written to {args.trace_json}")


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel planar subgraph isomorphism & vertex "
        "connectivity (SPAA 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, pattern=True, workers=True):
        p.add_argument("--target", required=True, help="target graph spec")
        if pattern:
            p.add_argument(
                "--pattern", required=True, help="pattern spec"
            )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--rounds", type=int, default=None)
        p.add_argument(
            "--engine", choices=["parallel", "sequential"],
            default=None,
        )
        p.add_argument(
            "--backend", choices=["serial", "threads", "processes"],
            default=None,
            help="piece-solve execution backend (repro.exec); results "
            "and traces are backend-independent (default: serial, or "
            "the plan's choice under --plan auto)",
        )
        p.add_argument(
            "--plan", choices=["auto", "manual"], default=None,
            help="query planning: 'auto' picks engine/kernel/backend by "
            "predicted cost (repro.engine.planner); explicit --engine/"
            "--backend still override the plan (default: manual)",
        )
        p.add_argument(
            "--explain", action="store_true",
            help="print the executed query plan (chosen variant, "
            "predicted vs actual cost); pairs with --plan auto",
        )
        if workers:
            p.add_argument(
                "--processors", type=int, default=None, metavar="N",
                help="worker count for non-serial backends "
                "(default: all cores)",
            )
        p.add_argument(
            "--trace", action="store_true",
            help="print the hierarchical per-phase work/depth table",
        )
        p.add_argument(
            "--trace-json", metavar="PATH", default=None,
            help="write the span tree as JSON to PATH",
        )

    common(sub.add_parser("decide", help="decide occurrence (Thm 2.1)"))
    count_p = sub.add_parser("count", help="count occurrences")
    common(count_p)
    count_p.add_argument(
        "--exact", action="store_true",
        help="deterministic exact counting (window inclusion-exclusion)",
    )
    common(sub.add_parser("list", help="list all occurrences (Thm 4.2)"))
    common(sub.add_parser("vc", help="vertex connectivity (Lemma 5.2)"),
           pattern=False)
    batch_p = sub.add_parser(
        "batch",
        help="decide many patterns over one cached target session",
    )
    common(batch_p, pattern=False)
    batch_p.add_argument(
        "--patterns", default=None,
        help="comma-separated pattern specs (e.g. cycle:4,path:4,star:3)",
    )
    batch_p.add_argument(
        "--patterns-file", metavar="PATH", default=None,
        help="file with one pattern spec per line ('#' comments allowed)",
    )
    batch_p.add_argument(
        "--session-stats", action="store_true",
        help="print the session cache hit/miss table and amortized cost",
    )
    batch_p.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write cache stats + last query's trace as Prometheus text",
    )
    profile_p = sub.add_parser(
        "profile",
        help="simulate Brent schedules of one decide query's span tree",
    )
    common(profile_p, workers=False)
    profile_p.add_argument(
        "--processors", default="1,2,4,8,16,64",
        help="comma-separated simulated processor counts "
        "(default: 1,2,4,8,16,64)",
    )
    profile_p.add_argument(
        "--measure", action="store_true",
        help="also run the query for real at each --processors count "
        "(processes backend unless --backend threads) and print "
        "measured wall-clock against the simulated T_P and the Brent "
        "sandwich",
    )
    profile_p.add_argument(
        "--chrome-trace", metavar="PATH", default=None,
        help="write a Chrome trace-event JSON timeline of the schedule at "
        "the largest processor count (open in Perfetto / chrome://tracing)",
    )
    profile_p.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write trace + schedule gauges in Prometheus text format",
    )
    serve_p = sub.add_parser(
        "serve",
        help="run the HTTP/JSON query daemon (multi-tenant warm "
        "session pool; POST /v1/decide|count|list|connectivity|batch, "
        "GET /healthz, GET /metrics)",
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_p.add_argument(
        "--port", type=int, default=8722,
        help="bind port (0 = pick an ephemeral port; the chosen port "
        "is printed on startup)",
    )
    serve_p.add_argument(
        "--cache-budget-mb", type=float, default=256.0, metavar="MB",
        help="session-pool residency budget; least-recently-used "
        "target sessions are invalidated past it (default: 256)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="query executor threads (default: 4)",
    )
    serve_p.add_argument(
        "--backend", choices=["serial", "threads", "processes"],
        default=None,
        help="piece-solve execution backend shared by every query "
        "(default: serial, or the plan's choice)",
    )
    serve_p.add_argument(
        "--processors", type=int, default=None, metavar="N",
        help="worker count for a non-serial --backend",
    )
    lint_p = sub.add_parser(
        "lint",
        help="cost-soundness analyzer (uncharged work, depth hazards, "
        "nondeterminism, unsafe spans, cost contracts, static CREW, "
        "task purity)",
    )
    lint_p.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint_p.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="findings output format",
    )
    lint_p.add_argument(
        "--output", metavar="PATH", default=None,
        help="write findings to PATH instead of stdout",
    )
    lint_p.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="baseline file freezing known findings "
        "(default: src/repro/analysis/baseline.json)",
    )
    lint_p.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    lint_p.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    lint_p.add_argument(
        "--ratchet", action="store_true",
        help="also fail on stale baseline entries that no longer fire "
        "(committed debt must only shrink)",
    )

    args = parser.parse_args(argv)
    if args.command == "serve":
        from .serve import serve_main

        return serve_main(args)
    if args.command == "lint":
        from .analysis import run as lint_run

        return lint_run(
            args.paths or ["src/repro"],
            format=args.format,
            output=args.output,
            baseline=args.baseline,
            no_baseline=args.no_baseline,
            write_baseline=args.write_baseline,
            ratchet=args.ratchet,
        )
    graph, embedding = parse_target(args.target)
    print(f"target: {args.target} (n={graph.n}, m={graph.m})")
    t0 = time.perf_counter()

    # One resolved backend serves every query of the command (the process
    # pool spins up once); profile builds its own per --measure count.
    executor = None
    if args.command != "profile" and args.backend is not None:
        from .exec import resolve_backend

        executor = resolve_backend(
            args.backend, max_workers=args.processors
        )

    if args.command == "decide":
        from .isomorphism import find_occurrence

        pattern = parse_pattern(args.pattern)
        result = find_occurrence(
            graph, embedding, pattern, seed=args.seed,
            engine=args.engine, rounds=args.rounds,
            backend=executor, plan=args.plan,
        )
        print(f"found: {result.found}")
        if result.witness:
            print(f"witness: {result.witness}")
        print(_cost_summary(result.cost))
        _emit_plan(args, result.plan)
        _emit_trace(args, result.trace)
    elif args.command == "count":
        pattern = parse_pattern(args.pattern)
        if args.exact:
            from .isomorphism import count_occurrences_exact

            result = count_occurrences_exact(
                graph, embedding, pattern, backend=executor,
                plan=args.plan,
            )
            print(f"isomorphisms (exact, deterministic): "
                  f"{result.isomorphisms}")
            print(_cost_summary(result.cost))
            _emit_plan(args, result.plan)
            _emit_trace(args, result.trace)
        else:
            from .isomorphism import list_occurrences

            listing = list_occurrences(
                graph, embedding, pattern, seed=args.seed,
                engine=args.engine, backend=executor, plan=args.plan,
            )
            print(f"isomorphisms (w.h.p.): {len(listing.witnesses)}")
            print(f"distinct occurrences:  {len(listing.occurrences)}")
            print(_cost_summary(listing.cost))
            _emit_plan(args, listing.plan)
            _emit_trace(args, listing.trace)
    elif args.command == "list":
        from .isomorphism import list_occurrences

        pattern = parse_pattern(args.pattern)
        listing = list_occurrences(
            graph, embedding, pattern, seed=args.seed,
            engine=args.engine, backend=executor, plan=args.plan,
        )
        print(f"occurrences: {len(listing.occurrences)} "
              f"({listing.iterations} iterations)")
        for image in sorted(listing.occurrences, key=sorted)[:20]:
            print(f"  {sorted(image)}")
        if len(listing.occurrences) > 20:
            print(f"  ... and {len(listing.occurrences) - 20} more")
        print(_cost_summary(listing.cost))
        _emit_plan(args, listing.plan)
        _emit_trace(args, listing.trace)
    elif args.command == "vc":
        from .connectivity import planar_vertex_connectivity

        result = planar_vertex_connectivity(
            graph, embedding, seed=args.seed, rounds=args.rounds,
            engine=args.engine, backend=executor, plan=args.plan,
        )
        print(f"vertex connectivity: {result.connectivity}")
        print(_cost_summary(result.cost))
        _emit_plan(args, result.plan)
        _emit_trace(args, result.trace)
    elif args.command == "batch":
        from .engine import TargetSession

        specs: list = []
        if args.patterns:
            specs.extend(s.strip() for s in args.patterns.split(",") if s.strip())
        if args.patterns_file:
            try:
                with open(args.patterns_file, encoding="utf-8") as fh:
                    for line in fh:
                        line = line.split("#", 1)[0].strip()
                        if line:
                            specs.append(line)
            except OSError as exc:
                raise SystemExit(
                    f"cannot read {args.patterns_file!r}: {exc}"
                ) from exc
        if not specs:
            raise SystemExit(
                "batch needs --patterns and/or --patterns-file"
            )
        patterns = [parse_pattern(s) for s in specs]
        session = TargetSession(graph, embedding)
        kwargs = {"backend": executor}
        if args.engine:
            kwargs["engine"] = args.engine
        if args.rounds is not None:
            kwargs["rounds"] = args.rounds
        batch = session.decide_batch(
            patterns, seed=args.seed, plan=args.plan, **kwargs
        )
        for spec, result in zip(specs, batch.results):
            suffix = " (amortized)" if result.amortized else ""
            print(
                f"  {spec:<16} found={result.found!s:<5} "
                f"rounds={result.rounds_used}{suffix}"
            )
        print(f"queries: {len(specs)}  "
              f"amortized: {batch.amortized_queries}  "
              f"deduped: {batch.deduped_queries}"
              + ("  [shared-subpattern plan]" if batch.shared else ""))
        if args.explain:
            if batch.shared:
                print(
                    "plan: shared-subpattern batch — one (k_max, d_max) "
                    "cover per round, occurrence tables computed once per "
                    "canonical subpattern and shared across patterns"
                )
            else:
                for spec, result in zip(specs, batch.results):
                    if getattr(result, "plan", None) is not None:
                        print(f"-- {spec}")
                        print(result.plan.explain())
        print("charged:         " + _cost_summary(batch.cost))
        print("cold equivalent: " + _cost_summary(batch.cold_equivalent_cost))
        if args.session_stats:
            print(session.stats.format())
        if args.metrics:
            from .pram import write_prometheus

            last_trace = batch.results[-1].trace if batch.results else None
            try:
                write_prometheus(
                    args.metrics, trace=last_trace,
                    cache_stats=session.stats,
                )
            except OSError as exc:
                raise SystemExit(
                    f"cannot write metrics to {args.metrics!r}: {exc}"
                ) from exc
            print(f"metrics written to {args.metrics}")
        _emit_trace(args, batch.results[-1].trace if batch.results else None)
    elif args.command == "profile":
        from .isomorphism import find_occurrence
        from .pram import (
            simulate_schedule,
            write_chrome_trace,
            write_prometheus,
        )

        pattern = parse_pattern(args.pattern)
        result = find_occurrence(
            graph, embedding, pattern, seed=args.seed,
            engine=args.engine, rounds=args.rounds, plan=args.plan,
        )
        print(f"found: {result.found}")
        print(_cost_summary(result.cost))
        _emit_plan(args, result.plan)
        try:
            procs = sorted({
                int(s) for s in args.processors.split(",") if s.strip()
            })
        except ValueError as exc:
            raise SystemExit(
                f"bad --processors {args.processors!r}: {exc}"
            ) from exc
        if not procs or procs[0] < 1:
            raise SystemExit("--processors needs positive integers")
        schedules = [simulate_schedule(result.trace, p) for p in procs]
        header = (
            f"{'P':>6} {'T_P (sim)':>14} {'speedup':>9} {'util':>7} "
            f"{'Brent bound':>14}"
        )
        print(header)
        print("-" * len(header))
        for s in schedules:
            print(
                f"{s.processors:>6} {s.makespan:>14,} {s.speedup:>9.2f} "
                f"{s.utilization:>7.1%} {s.brent_bound():>14,}"
            )
        widest = schedules[-1]
        longest = sorted(
            widest.critical_path, key=lambda sp: sp.duration, reverse=True
        )[:3]
        print(f"critical path at P={widest.processors}: "
              f"{len(widest.critical_path)} spans; longest:")
        for sp in longest:
            print(f"  {sp.name:<24} [{sp.start:,}, {sp.finish:,}) "
                  f"work={sp.work:,}")
        if args.measure:
            from .exec import resolve_backend
            from .exec.backends import available_cores
            from .pram import compare_measured, format_measured

            bk_name = (
                "threads" if args.backend == "threads" else "processes"
            )
            cores = available_cores()
            over = [p for p in procs if p > cores]
            note = (
                f"; P={','.join(map(str, over))} oversubscribe — "
                f"measured speedups above {cores}x are not expected"
                if over else ""
            )
            print(f"physical cores available: {cores}{note}")
            measurements = {}
            for p in procs:
                with resolve_backend(bk_name, max_workers=p) as mexec:
                    m0 = time.perf_counter()
                    find_occurrence(
                        graph, embedding, pattern, seed=args.seed,
                        engine=args.engine,
                        rounds=args.rounds, backend=mexec,
                    )
                    measurements[p] = time.perf_counter() - m0
            print(format_measured(
                compare_measured(result.trace, measurements),
                title=f"measured ({bk_name}) vs simulated:",
            ))
        try:
            if args.chrome_trace:
                write_chrome_trace(args.chrome_trace, widest)
                print(f"chrome trace (P={widest.processors}) written to "
                      f"{args.chrome_trace}")
            if args.metrics:
                write_prometheus(
                    args.metrics, trace=result.trace, schedules=schedules
                )
                print(f"metrics written to {args.metrics}")
        except OSError as exc:
            raise SystemExit(f"cannot write telemetry: {exc}") from exc
        _emit_trace(args, result.trace)

    if executor is not None:
        executor.close()
    print(f"(host time: {time.perf_counter() - t0:.2f}s)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
