"""Eppstein's sequential algorithm [19] (Table 1, row 2).

The deterministic original our paper parallelizes: a single global BFS
splits the target into levels; each window of d + 1 consecutive levels is a
bounded-treewidth subgraph solved by the sequential bottom-up DP.  Work is
the same O((tau+3)^(3k+1) n) shape as the parallel algorithm, but the depth
is Theta(k n): the BFS may be as deep as the graph's diameter and each DP
runs sequentially along its decomposition tree — precisely the two
bottlenecks Sections 2 and 3.3 remove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..graphs.bfs import parallel_bfs
from ..graphs.csr import Graph
from ..isomorphism.cover import _build_window_piece
from ..isomorphism.pattern import Pattern
from ..isomorphism.recovery import first_witness
from ..isomorphism.sequential_dp import sequential_dp
from ..isomorphism.state_space import SubgraphStateSpace
from ..planar.embedding import PlanarEmbedding
from ..pram import Cost, Tracker
from ..treedecomp.nice import make_nice

__all__ = ["EppsteinResult", "eppstein_decide"]


@dataclass
class EppsteinResult:
    """Deterministic decision + cost trace."""

    found: bool
    witness: Optional[Dict[int, int]]
    cost: Cost
    pieces_examined: int


def eppstein_decide(
    graph: Graph,
    embedding: PlanarEmbedding,
    pattern: Pattern,
    want_witness: bool = False,
) -> EppsteinResult:
    """Decide subgraph isomorphism deterministically (connected pattern,
    connected planar target) a la Eppstein [19]."""
    if not pattern.is_connected():
        raise ValueError("Eppstein's algorithm handles connected patterns")
    k, d = pattern.k, pattern.diameter()
    tracker = Tracker()
    bfs, bcost = parallel_bfs(graph, [0])
    # Sequential-depth BFS: the depth equals the work of a level-by-level
    # scan (this baseline has no low-depth guarantee).
    tracker.charge(Cost(bcost.work, bcost.work))
    if np.any(bfs.level < 0):
        raise ValueError("the target graph must be connected")
    level = bfs.level
    max_level = int(level.max(initial=0))
    pieces = 0
    for i in range(max(0, max_level - d) + 1):
        piece = _build_window_piece(
            embedding,
            graph,
            np.arange(graph.n),
            level,
            i,
            d,
            0,
            cluster_id=0,
            tracker=tracker,
        )
        if piece is None or piece.graph.n < k:
            continue
        pieces += 1
        nice, ncost = make_nice(piece.decomposition.binarize())
        tracker.charge(ncost)
        space = SubgraphStateSpace(pattern, piece.graph)
        result = sequential_dp(space, nice)
        tracker.charge(result.cost)
        if result.found:
            witness = None
            if want_witness:
                w = first_witness(space, nice, result.valid)
                if w is not None:
                    witness = {
                        p: int(piece.originals[v]) for p, v in w.items()
                    }
            return EppsteinResult(
                found=True,
                witness=witness,
                cost=tracker.cost,
                pieces_examined=pieces,
            )
    return EppsteinResult(
        found=False, witness=None, cost=tracker.cost, pieces_examined=pieces
    )
