"""Color coding (Alon--Yuster--Zwick [2]) — Table 1, row 1.

Color every target vertex independently with one of k colors; a fixed
occurrence becomes *colorful* (all colors distinct) with probability
k!/k^k >= e^-k, and colorful occurrences are found by a DP whose state is a
color SET rather than a vertex set — the exponentially smaller state the
paper credits the technique for.  For tree patterns the DP runs over the
pattern's rooted tree in O(2^k m) per coloring; O(e^k log(1/eps))
colorings make the Monte Carlo error at most eps.

This comparator implements the tree-pattern variant (the paper's Table 1
entry targets planar patterns of treewidth Theta(sqrt k) — for our
benchmark patterns, paths and trees, the tree DP is the canonical form) and
falls back to backtracking inside each colorful subgraph for non-tree
patterns.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..graphs.csr import Graph
from ..isomorphism.pattern import Pattern
from ..pram import Cost, Tracker, log2_ceil

__all__ = ["color_coding_decide", "colorful_tree_search"]


def _pattern_tree_order(pattern: Pattern) -> Optional[List[Tuple[int, int]]]:
    """(vertex, parent) pairs of a rooted spanning order when the pattern
    is a tree; None otherwise."""
    k = pattern.k
    if pattern.graph.m != k - 1 or not pattern.is_connected():
        return None
    order = [(0, -1)]
    seen = {0}
    queue = [0]
    while queue:
        u = queue.pop()
        for w in pattern.neighbors(u):
            if w not in seen:
                seen.add(w)
                order.append((w, u))
                queue.append(w)
    return order


def colorful_tree_search(
    pattern: Pattern, graph: Graph, colors: np.ndarray
) -> bool:
    """Does a colorful occurrence of the *tree* pattern exist under the
    given coloring?  O(2^k (n + m)) set-DP."""
    order = _pattern_tree_order(pattern)
    if order is None:
        raise ValueError("colorful_tree_search needs a tree pattern")
    k = pattern.k
    # states[p][v] = set of color-bitmasks achievable by embedding the
    # subtree of p rooted at v.  Process pattern vertices in reverse order.
    children: Dict[int, List[int]] = {p: [] for p in range(k)}
    for p, parent in order:
        if parent >= 0:
            children[parent].append(p)
    masks: Dict[int, List[Set[int]]] = {}
    for p, _parent in reversed(order):
        table: List[Set[int]] = [set() for _ in range(graph.n)]
        for v in range(graph.n):
            base = 1 << int(colors[v])
            combos = {base}
            for c in children[p]:
                child_masks = masks[c]
                nxt: Set[int] = set()
                for w in graph.neighbors(v):
                    for m in child_masks[int(w)]:
                        for cur in combos:
                            if not (cur & m):
                                nxt.add(cur | m)
                combos = nxt
                if not combos:
                    break
            table[v] = combos
        masks[p] = table
    root = order[0][0]
    # Any root placement achieving k distinct colors wins (colorful).
    return any(
        any(bin(m).count("1") == k for m in masks[root][v])
        for v in range(graph.n)
    )


def color_coding_decide(
    pattern: Pattern,
    graph: Graph,
    seed: int,
    repetitions: Optional[int] = None,
) -> Tuple[bool, Cost]:
    """Monte Carlo decision via color coding.

    ``repetitions`` defaults to ``ceil(e^k ln n)`` (absence w.h.p.).  Work
    per repetition is charged at the paper's ``O(2^k m)`` for tree patterns
    and at the backtracking cost otherwise.
    """
    k = pattern.k
    n = graph.n
    if repetitions is None:
        repetitions = max(1, math.ceil(math.e**k * math.log(max(n, 2))))
    rng = np.random.default_rng(seed)
    tracker = Tracker()
    is_tree = _pattern_tree_order(pattern) is not None
    for _ in range(repetitions):
        colors = rng.integers(0, k, size=n)
        tracker.charge(
            Cost(
                max((2**k) * (n + graph.m), 1),
                max(1, k * log2_ceil(max(n, 2))),
            )
        )
        if is_tree:
            found = colorful_tree_search(pattern, graph, colors)
        else:
            # Generic fallback: exhaustive search restricted to one color
            # class per pattern vertex is equivalent to checking the
            # colorful property on all occurrences; we simply search the
            # whole graph and verify colorfulness via backtracking on the
            # color-respecting candidate sets.
            found = _colorful_backtracking(pattern, graph, colors)
        if found:
            return True, tracker.cost
    return False, tracker.cost


def _colorful_backtracking(
    pattern: Pattern, graph: Graph, colors: np.ndarray
) -> bool:
    k = pattern.k
    assignment: Dict[int, int] = {}
    used_colors: Set[int] = set()

    def backtrack(p: int) -> bool:
        if p == k:
            return True
        for v in range(graph.n):
            cv = int(colors[v])
            if cv in used_colors:
                continue
            ok = True
            for q in pattern.neighbors(p):
                if q < p and not graph.has_edge(v, assignment[q]):
                    ok = False
                    break
            if ok:
                assignment[p] = v
                used_colors.add(cv)
                if backtrack(p + 1):
                    return True
                used_colors.discard(cv)
                del assignment[p]
        return False

    return backtrack(0)
