"""Ullmann's subgraph isomorphism algorithm [51] (Table 1 related work).

The classic 1976 backtracking search with the refinement (arc-consistency)
procedure: maintain a candidate matrix M (pattern vertex x target vertex);
repeatedly prune candidates whose pattern neighbors have no compatible
target neighbor; branch on the pattern vertex with the fewest candidates.
Exponential in general — the "no algorithm with less work than naive n^k"
anchor of the related-work comparison.
"""

from __future__ import annotations

from typing import Dict, Iterator


from ..graphs.csr import Graph
from ..isomorphism.pattern import Pattern

__all__ = ["ullmann_iter", "ullmann_has", "ullmann_count"]


def _refine(
    pattern: Pattern, graph: Graph, candidates: list
) -> bool:
    """Ullmann's refinement: drop target v from M[p] unless every pattern
    neighbor q of p has a candidate adjacent to v.  Returns False when a
    pattern vertex runs out of candidates."""
    changed = True
    while changed:
        changed = False
        for p in range(pattern.k):
            drop = []
            for v in candidates[p]:
                for q in pattern.neighbors(p):
                    adj = graph.adjacency_set(v)
                    if not any(w in adj for w in candidates[q]):
                        drop.append(v)
                        break
            if drop:
                candidates[p] -= set(drop)
                changed = True
                if not candidates[p]:
                    return False
    return True


def ullmann_iter(
    pattern: Pattern, graph: Graph
) -> Iterator[Dict[int, int]]:
    """Yield all subgraph isomorphisms via Ullmann's algorithm."""
    k = pattern.k
    if graph.n < k:
        return
    degs = graph.degrees()
    pdegs = [len(pattern.neighbors(p)) for p in range(k)]
    base = [
        {int(v) for v in range(graph.n) if degs[v] >= pdegs[p]}
        for p in range(k)
    ]

    def search(candidates, assigned: Dict[int, int]) -> Iterator[Dict[int, int]]:
        if len(assigned) == k:
            yield dict(assigned)
            return
        # Branch on the unassigned pattern vertex with fewest candidates.
        p = min(
            (q for q in range(k) if q not in assigned),
            key=lambda q: len(candidates[q]),
        )
        for v in sorted(candidates[p]):
            nxt = [set(c) for c in candidates]
            nxt[p] = {v}
            for q in range(k):
                if q != p:
                    nxt[q].discard(v)
            if all(nxt[q] for q in range(k)) and _refine(
                pattern, graph, nxt
            ):
                assigned[p] = v
                yield from search(nxt, assigned)
                del assigned[p]

    start = [set(c) for c in base]
    if _refine(pattern, graph, start):
        yield from search(start, {})


def ullmann_has(pattern: Pattern, graph: Graph) -> bool:
    return next(ullmann_iter(pattern, graph), None) is not None


def ullmann_count(pattern: Pattern, graph: Graph) -> int:
    return sum(1 for _ in ullmann_iter(pattern, graph))
