"""The naive Theta(n^2)-size ball cover (Section 2's inefficient strawman).

"A simple (but work-inefficient) approach ... would consist of building for
every vertex in the target graph the subgraph induced by nodes at a distance
at most d, and then invoking an algorithm for bounded treewidth graphs on
each of those subgraphs.  This approach ... is inefficient because many
vertices of the target graph could be in multiple (even all) of these
subgraphs, leading to a total size of these subgraphs of Theta(n^2)."

Implemented for the A2 ablation benchmark: it is *deterministic* and always
captures every occurrence, but its total piece size (and hence work) grows
quadratically where the clustering cover stays near-linear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..graphs.bfs import parallel_bfs
from ..graphs.csr import Graph
from ..pram import Cost, ShadowArray, Tracker

__all__ = ["NaiveBallCover", "naive_ball_cover"]


@dataclass
class NaiveBallCover:
    """All radius-d balls: piece i is the ball around vertex i."""

    pieces: List[Tuple[Graph, np.ndarray]]
    total_piece_size: int
    cost: Cost


def naive_ball_cover(graph: Graph, d: int, seed: int = 0) -> NaiveBallCover:
    """Build the ball cover (deterministic; ``seed`` accepted for interface
    parity with the clustering cover)."""
    if d < 0:
        raise ValueError("need d >= 0")
    tracker = Tracker()
    pieces: List[Tuple[Graph, np.ndarray]] = []
    total = 0
    with tracker.parallel() as region:
        ball_cells = ShadowArray("ball-pieces", graph.n)
        for v in range(graph.n):
            with region.branch() as branch:
                branch.record_writes(ball_cells, v)
                res, cost = parallel_bfs(graph, [v])
                branch.charge(cost)
                ball = np.flatnonzero(
                    (res.level >= 0) & (res.level <= d)
                )
                sub, originals = graph.induced_subgraph(ball)
                branch.charge(Cost.step(max(sub.n + sub.m, 1)))
                pieces.append((sub, originals))
                total += sub.n
    return NaiveBallCover(
        pieces=pieces, total_piece_size=total, cost=tracker.cost
    )
