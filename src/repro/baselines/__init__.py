"""Comparators: backtracking, Ullmann, color coding, naive covers,
Eppstein's sequential algorithm (the Table 1 related work)."""

from .backtracking import (
    count_isomorphisms,
    has_isomorphism,
    iter_isomorphisms,
)
from .ullmann import ullmann_count, ullmann_has, ullmann_iter
from .color_coding import color_coding_decide, colorful_tree_search
from .naive_cover import NaiveBallCover, naive_ball_cover
from .eppstein import EppsteinResult, eppstein_decide

__all__ = [
    "iter_isomorphisms",
    "count_isomorphisms",
    "has_isomorphism",
    "ullmann_iter",
    "ullmann_has",
    "ullmann_count",
    "color_coding_decide",
    "colorful_tree_search",
    "NaiveBallCover",
    "naive_ball_cover",
    "EppsteinResult",
    "eppstein_decide",
]
