"""VF2-style backtracking subgraph isomorphism (exhaustive baseline).

A simple, obviously-correct enumerator of all injective maps phi: H -> G
respecting the pattern's edges, used (a) as the correctness oracle for the
DP engines and (b) as the practical comparator in the Table-1 benchmark.
Candidate ordering follows a connectivity-aware search order with degree
pruning (the practical tricks of VF2 without its full state machinery).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from ..graphs.csr import Graph
from ..isomorphism.pattern import Pattern

__all__ = ["iter_isomorphisms", "count_isomorphisms", "has_isomorphism"]


def _search_order(pattern: Pattern) -> List[int]:
    """Pattern vertices ordered so each one (after the first of each
    component) has a previously-ordered neighbor."""
    k = pattern.k
    seen = [False] * k
    order: List[int] = []
    degs = [len(pattern.neighbors(p)) for p in range(k)]
    for start in sorted(range(k), key=lambda p: -degs[p]):
        if seen[start]:
            continue
        seen[start] = True
        order.append(start)
        frontier = [start]
        while frontier:
            frontier.sort(key=lambda p: -degs[p])
            nxt: List[int] = []
            for p in frontier:
                for q in pattern.neighbors(p):
                    if not seen[q]:
                        seen[q] = True
                        order.append(q)
                        nxt.append(q)
            frontier = nxt
    return order


def iter_isomorphisms(
    pattern: Pattern,
    graph: Graph,
    allowed: Optional[np.ndarray] = None,
) -> Iterator[Dict[int, int]]:
    """Yield every subgraph isomorphism ``{pattern vertex: target vertex}``.

    ``allowed`` optionally restricts the usable target vertices.
    """
    k = pattern.k
    if graph.n < k:
        return
    order = _search_order(pattern)
    degs = graph.degrees()
    pattern_degs = [len(pattern.neighbors(p)) for p in range(k)]
    assignment: Dict[int, int] = {}
    used = set()

    def candidates(p: int) -> Iterator[int]:
        anchored = [
            assignment[q] for q in pattern.neighbors(p) if q in assignment
        ]
        if anchored:
            pool = graph.neighbors(anchored[0])
        else:
            pool = range(graph.n)
        for v in pool:
            v = int(v)
            if v in used:
                continue
            if allowed is not None and not allowed[v]:
                continue
            if degs[v] < pattern_degs[p]:
                continue
            ok = True
            for q in pattern.neighbors(p):
                if q in assignment and not graph.has_edge(v, assignment[q]):
                    ok = False
                    break
            if ok:
                yield v

    def backtrack(i: int) -> Iterator[Dict[int, int]]:
        if i == k:
            yield dict(assignment)
            return
        p = order[i]
        for v in candidates(p):
            assignment[p] = v
            used.add(v)
            yield from backtrack(i + 1)
            used.discard(v)
            del assignment[p]

    yield from backtrack(0)


def count_isomorphisms(
    pattern: Pattern, graph: Graph, allowed: Optional[np.ndarray] = None
) -> int:
    """Number of injective edge-respecting maps H -> G."""
    return sum(1 for _ in iter_isomorphisms(pattern, graph, allowed))


def has_isomorphism(
    pattern: Pattern, graph: Graph, allowed: Optional[np.ndarray] = None
) -> bool:
    """Decision version."""
    return next(iter_isomorphisms(pattern, graph, allowed), None) is not None
