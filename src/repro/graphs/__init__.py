"""Graph substrate: CSR graphs, generators, BFS, connectivity."""

from .csr import Graph
from .bfs import BFSResult, parallel_bfs
from .components import component_members, connected_components, is_connected
from .biconnectivity import articulation_points, is_biconnected
from .generators import (
    GeometricGraph,
    antiprism_graph,
    apex_graph,
    complete_graph,
    cycle_graph,
    delaunay_graph,
    grid_graph,
    icosahedron_graph,
    ladder_graph,
    outerplanar_graph,
    path_graph,
    random_tree,
    star_graph,
    torus_grid,
    triangulated_grid,
    wheel_graph,
)

__all__ = [
    "Graph",
    "BFSResult",
    "parallel_bfs",
    "connected_components",
    "is_connected",
    "component_members",
    "articulation_points",
    "is_biconnected",
    "GeometricGraph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "wheel_graph",
    "grid_graph",
    "triangulated_grid",
    "delaunay_graph",
    "antiprism_graph",
    "icosahedron_graph",
    "torus_grid",
    "random_tree",
    "ladder_graph",
    "outerplanar_graph",
    "apex_graph",
]
