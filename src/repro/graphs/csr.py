"""Static undirected graphs in compressed sparse row (CSR) form.

The whole library operates on this one immutable representation: vertex ids
are ``0..n-1``, adjacency is two NumPy arrays (``indptr``, ``indices``) with
every undirected edge stored in both directions and neighbor lists sorted.
CSR keeps the hot loops (BFS frontier expansion, clustering, covering)
vectorizable, per the HPC guide's "vectorize the bottleneck" rule.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

__all__ = ["Graph"]


class Graph:
    """An immutable undirected graph in CSR form.

    Parameters
    ----------
    n:
        Number of vertices (ids ``0..n-1``).
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops are rejected; duplicate
        edges are merged (the structure is a simple graph).
    """

    __slots__ = (
        "n", "indptr", "indices", "_edges_uv", "_adjsets", "_edge_keys",
        "_content_fp",
    )

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]]) -> None:
        if n < 0:
            raise ValueError("vertex count must be non-negative")
        pairs = np.asarray(list(edges), dtype=np.int64)
        if pairs.size == 0:
            pairs = pairs.reshape(0, 2)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("edges must be (u, v) pairs")
        if pairs.size and (pairs.min() < 0 or pairs.max() >= n):
            raise ValueError("edge endpoint out of range")
        if np.any(pairs[:, 0] == pairs[:, 1]):
            raise ValueError("self-loops are not allowed")
        # Canonicalize, dedupe, then mirror.
        lo = np.minimum(pairs[:, 0], pairs[:, 1])
        hi = np.maximum(pairs[:, 0], pairs[:, 1])
        canon = np.unique(np.stack([lo, hi], axis=1), axis=0)
        self.n = int(n)
        self._edges_uv = canon
        both = np.concatenate([canon, canon[:, ::-1]], axis=0)
        order = np.lexsort((both[:, 1], both[:, 0]))
        both = both[order]
        self.indices = np.ascontiguousarray(both[:, 1])
        counts = np.bincount(both[:, 0], minlength=n)
        self.indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        self._adjsets = None
        self._edge_keys = None
        self._content_fp = None

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_csr(n: int, indptr: np.ndarray, indices: np.ndarray) -> "Graph":
        """Trusted fast path: adopt already-valid CSR arrays."""
        g = Graph.__new__(Graph)
        g.n = int(n)
        g.indptr = np.asarray(indptr, dtype=np.int64)
        g.indices = np.asarray(indices, dtype=np.int64)
        g._adjsets = None
        g._edge_keys = None
        g._content_fp = None
        u = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.indptr))
        mask = u < g.indices
        g._edges_uv = np.stack([u[mask], g.indices[mask]], axis=1)
        return g

    @staticmethod
    def empty(n: int) -> "Graph":
        return Graph(n, [])

    # -- stable serialization ----------------------------------------------

    def to_arrays(self) -> dict:
        """Stable array form for pickling / shared-memory transport.

        Returns ``{"n": int, "indptr": int64[n+1], "indices": int64[2m]}``
        — exactly the CSR invariants :meth:`from_arrays` trusts.  The
        arrays are the graph's own (contiguous int64 by construction); do
        not mutate them.
        """
        return {"n": self.n, "indptr": self.indptr, "indices": self.indices}

    @staticmethod
    def from_arrays(n: int, indptr: np.ndarray, indices: np.ndarray) -> "Graph":
        """Rebuild a graph from :meth:`to_arrays` output (or buffers of it).

        Validates the dtypes/shapes the CSR fast path trusts, so arrays
        that crossed a process or shared-memory boundary cannot silently
        corrupt the adjacency: ``indptr`` must be a monotone int64 array of
        length ``n + 1`` ending at ``len(indices)``.
        """
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.shape[0] != n + 1:
            raise ValueError("indptr must have length n + 1")
        if indptr[0] != 0 or int(indptr[-1]) != indices.shape[0]:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if indptr.size > 1 and np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be monotone")
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("neighbor id out of range")
        return Graph.from_csr(n, indptr, indices)

    # -- basic queries -----------------------------------------------------

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return int(self._edges_uv.shape[0])

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of ``v`` (a CSR view — do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """O(log deg(u)) membership test via bisection on the sorted CSR row
        (no per-vertex set materialization)."""
        lo = int(self.indptr[u])
        hi = int(self.indptr[u + 1])
        i = lo + int(np.searchsorted(self.indices[lo:hi], v))
        return i < hi and int(self.indices[i]) == v

    def has_edges(self, u, v) -> np.ndarray:
        """Vectorized edge-membership test: ``out[i] = has_edge(u[i], v[i])``.

        ``u`` and ``v`` broadcast against each other.  Implemented as one
        ``np.searchsorted`` over the flattened edge-key array ``u * n + v``
        (sorted because CSR rows are sorted and concatenated in vertex
        order), so a batch of q queries costs O(q log m) with no Python
        loop — the membership kernel the packed DP engines build on.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        u, v = np.broadcast_arrays(u, v)
        if self._edge_keys is None:
            src = np.repeat(
                np.arange(self.n, dtype=np.int64), np.diff(self.indptr)
            )
            self._edge_keys = src * self.n + self.indices
        keys = u * self.n + v
        pos = np.searchsorted(self._edge_keys, keys)
        pos_clipped = np.minimum(pos, max(self._edge_keys.size - 1, 0))
        if self._edge_keys.size == 0:
            return np.zeros(u.shape, dtype=bool)
        return (pos < self._edge_keys.size) & (
            self._edge_keys[pos_clipped] == keys
        )

    def adjacency_set(self, v: int) -> frozenset:
        """Cached neighbor set of ``v`` (fast membership tests).

        Built lazily *per queried vertex* — a single query no longer pays
        for all ``n`` sets."""
        if self._adjsets is None:
            self._adjsets = {}
        s = self._adjsets.get(v)
        if s is None:
            s = frozenset(
                int(x)
                for x in self.indices[self.indptr[v] : self.indptr[v + 1]]
            )
            self._adjsets[v] = s
        return s

    def edges(self) -> np.ndarray:
        """The ``m x 2`` array of canonical (u < v) edges."""
        return self._edges_uv

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        for u, v in self._edges_uv:
            yield int(u), int(v)

    def max_degree(self) -> int:
        if self.n == 0:
            return 0
        return int(self.degrees().max(initial=0))

    # -- derived graphs ----------------------------------------------------

    def induced_subgraph(
        self, vertices: Sequence[int]
    ) -> Tuple["Graph", np.ndarray]:
        """Subgraph induced by ``vertices``.

        Returns ``(subgraph, originals)`` where ``originals[i]`` is the
        original id of the subgraph's vertex ``i``.
        """
        verts = np.unique(np.asarray(list(vertices), dtype=np.int64))
        if verts.size and (verts[0] < 0 or verts[-1] >= self.n):
            raise ValueError("vertex out of range")
        remap = np.full(self.n, -1, dtype=np.int64)
        remap[verts] = np.arange(verts.size)
        e = self._edges_uv
        if e.size:
            keep = (remap[e[:, 0]] >= 0) & (remap[e[:, 1]] >= 0)
            sub_edges = remap[e[keep]]
        else:
            sub_edges = e
        return Graph(int(verts.size), sub_edges), verts

    def quotient(
        self, labels: np.ndarray
    ) -> Tuple["Graph", np.ndarray]:
        """Contract every vertex class of ``labels`` to a single vertex.

        ``labels`` assigns an arbitrary hashable-free integer class to each
        vertex; classes are compacted to ``0..k-1``.  Self-loops vanish and
        parallel edges merge.  Returns ``(minor, class_of_vertex)``.
        """
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape[0] != self.n:
            raise ValueError("labels must cover every vertex")
        uniq, compact = np.unique(labels, return_inverse=True)
        e = self._edges_uv
        if e.size:
            ce = compact[e]
            keep = ce[:, 0] != ce[:, 1]
            minor = Graph(int(uniq.size), ce[keep])
        else:
            minor = Graph(int(uniq.size), [])
        return minor, compact

    def with_edges_added(self, extra: Iterable[Tuple[int, int]]) -> "Graph":
        """A new graph with additional edges (duplicates merged)."""
        extra_arr = np.asarray(list(extra), dtype=np.int64).reshape(-1, 2)
        if extra_arr.size:
            combined = np.concatenate([self._edges_uv, extra_arr], axis=0)
        else:
            combined = self._edges_uv
        return Graph(self.n, combined)

    # -- dunder ------------------------------------------------------------

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self.n == other.n and np.array_equal(
            self._edges_uv, other._edges_uv
        )

    def __hash__(self) -> int:
        return hash((self.n, self._edges_uv.tobytes()))
