"""Graph generators for the paper's target families.

Geometric generators return a :class:`GeometricGraph` (graph + straight-line
planar coordinates); the coordinates give us combinatorial embeddings for
free (``repro.planar.geometric``), playing the role of the Klein--Reif
parallel embedding primitive (see DESIGN.md, Substitutions).

The families cover everything the experiments need: planar targets of
unbounded diameter (grids, Delaunay triangulations), targets with known
vertex connectivity 1..5 (trees, cycles, wheels, antiprisms, icosahedron),
a bounded-genus family (torus grids, Section 4.3) and apex graphs (the
excluded-minor obstruction discussed in Section 4.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .csr import Graph

__all__ = [
    "GeometricGraph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "wheel_graph",
    "grid_graph",
    "triangulated_grid",
    "delaunay_graph",
    "antiprism_graph",
    "icosahedron_graph",
    "torus_grid",
    "random_tree",
    "ladder_graph",
    "outerplanar_graph",
    "apex_graph",
]


@dataclass(frozen=True)
class GeometricGraph:
    """A planar graph with a straight-line drawing (positions ``n x 2``)."""

    graph: Graph
    positions: np.ndarray


def _circle_positions(n: int, radius: float = 1.0) -> np.ndarray:
    theta = 2 * np.pi * np.arange(n) / max(n, 1)
    return radius * np.stack([np.cos(theta), np.sin(theta)], axis=1)


def path_graph(n: int) -> GeometricGraph:
    """The path on ``n`` vertices (connectivity 1 for ``n >= 2``)."""
    edges = [(i, i + 1) for i in range(n - 1)]
    pos = np.stack([np.arange(n, dtype=float), np.zeros(n)], axis=1)
    return GeometricGraph(Graph(n, edges), pos)


def cycle_graph(n: int) -> GeometricGraph:
    """The cycle on ``n >= 3`` vertices (connectivity 2)."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return GeometricGraph(Graph(n, edges), _circle_positions(n))


def star_graph(leaves: int) -> GeometricGraph:
    """A star: center 0 with ``leaves`` leaves (connectivity 1)."""
    edges = [(0, i) for i in range(1, leaves + 1)]
    pos = np.concatenate(
        [np.zeros((1, 2)), _circle_positions(leaves)], axis=0
    )
    return GeometricGraph(Graph(leaves + 1, edges), pos)


def complete_graph(n: int) -> Graph:
    """K_n (planar only for ``n <= 4``)."""
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def wheel_graph(rim: int) -> GeometricGraph:
    """Wheel: hub 0 joined to a rim cycle of ``rim >= 3`` vertices.

    3-connected planar; the standard connectivity-3 family of E9.
    """
    if rim < 3:
        raise ValueError("a wheel needs a rim of at least 3")
    edges = [(0, i) for i in range(1, rim + 1)]
    edges += [(i, i % rim + 1) for i in range(1, rim + 1)]
    pos = np.concatenate([np.zeros((1, 2)), _circle_positions(rim)], axis=0)
    return GeometricGraph(Graph(rim + 1, edges), pos)


def grid_graph(rows: int, cols: int) -> GeometricGraph:
    """The ``rows x cols`` grid (diameter Θ(rows+cols), treewidth min side)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    n = rows * cols
    idx = lambda r, c: r * cols + c
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((idx(r, c), idx(r, c + 1)))
            if r + 1 < rows:
                edges.append((idx(r, c), idx(r + 1, c)))
    rr, cc = np.divmod(np.arange(n), cols)
    pos = np.stack([cc.astype(float), rr.astype(float)], axis=1)
    return GeometricGraph(Graph(n, edges), pos)


def triangulated_grid(rows: int, cols: int) -> GeometricGraph:
    """The grid with one diagonal per cell (a planar triangulation of the
    interior); richer in small patterns (triangles, diamonds)."""
    base = grid_graph(rows, cols)
    idx = lambda r, c: r * cols + c
    diagonals = [
        (idx(r, c), idx(r + 1, c + 1))
        for r in range(rows - 1)
        for c in range(cols - 1)
    ]
    return GeometricGraph(
        base.graph.with_edges_added(diagonals), base.positions
    )


def delaunay_graph(n: int, seed: int) -> GeometricGraph:
    """Delaunay triangulation of ``n`` random points in the unit square.

    The standard "random planar triangulation" workload; typical vertex
    connectivity 3..4.
    """
    from scipy.spatial import Delaunay  # deferred: scipy is heavy to import

    if n < 3:
        raise ValueError("need at least 3 points")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    tri = Delaunay(pts)
    s = tri.simplices
    edges = np.concatenate([s[:, [0, 1]], s[:, [1, 2]], s[:, [0, 2]]], axis=0)
    return GeometricGraph(Graph(n, edges), pts)


def antiprism_graph(k: int) -> GeometricGraph:
    """The ``k``-antiprism: two ``k``-cycles joined in a band.

    4-regular and 4-connected planar for ``k >= 3`` — the paper's
    motivating "distinguish 4-connected from 5-connected" family.
    """
    if k < 3:
        raise ValueError("an antiprism needs k >= 3")
    n = 2 * k
    edges = []
    for i in range(k):
        edges.append((i, (i + 1) % k))  # outer cycle
        edges.append((k + i, k + (i + 1) % k))  # inner cycle
        edges.append((i, k + i))  # band
        edges.append(((i + 1) % k, k + i))  # band diagonal
    outer = _circle_positions(k, radius=2.0)
    theta = 2 * np.pi * (np.arange(k) + 0.5) / k
    inner = 0.8 * np.stack([np.cos(theta), np.sin(theta)], axis=1)
    return GeometricGraph(Graph(n, edges), np.concatenate([outer, inner]))


def icosahedron_graph() -> GeometricGraph:
    """The icosahedron: the canonical 5-connected planar graph (12 vertices).

    Built as the 5-antiprism (vertices 0..9) plus two apexes: vertex 10
    joined to the outer pentagon, vertex 11 to the inner pentagon.  The
    returned positions are *not* a planar straight-line drawing (the top
    apex cannot be drawn inside); callers embed this graph combinatorially
    (``repro.planar.dmp``) rather than geometrically.
    """
    k = 5
    edges = []
    for i in range(k):
        edges.append((i, (i + 1) % k))
        edges.append((k + i, k + (i + 1) % k))
        edges.append((i, k + i))
        edges.append(((i + 1) % k, k + i))
        edges.append((10, i))  # top apex joined to outer pentagon
        edges.append((11, k + i))  # bottom apex joined to inner pentagon
    outer = _circle_positions(k, radius=2.0)
    theta = 2 * np.pi * (np.arange(k) + 0.5) / k
    inner = 0.9 * np.stack([np.cos(theta), np.sin(theta)], axis=1)
    # Planar drawing: bottom apex at the center, top apex outside the outer
    # pentagon does not give a planar straight-line drawing; callers embed
    # this graph combinatorially (DMP) rather than geometrically.
    pos = np.concatenate(
        [outer, inner, np.array([[3.0, 0.0], [0.0, 0.0]])]
    )
    return GeometricGraph(Graph(12, edges), pos)


def torus_grid(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` grid with wraparound: genus 1 (Section 4.3)."""
    if rows < 3 or cols < 3:
        raise ValueError("torus grid needs both sides >= 3")
    n = rows * cols
    idx = lambda r, c: r * cols + c
    edges = []
    for r in range(rows):
        for c in range(cols):
            edges.append((idx(r, c), idx(r, (c + 1) % cols)))
            edges.append((idx(r, c), idx((r + 1) % rows, c)))
    return Graph(n, edges)


def random_tree(n: int, seed: int) -> Graph:
    """A uniform random recursive tree (connectivity 1)."""
    if n < 1:
        raise ValueError("need at least one vertex")
    rng = np.random.default_rng(seed)
    edges = [(int(rng.integers(0, i)), i) for i in range(1, n)]
    return Graph(n, edges)


def ladder_graph(rungs: int) -> GeometricGraph:
    """The ladder ``P_rungs x K_2`` (connectivity 2)."""
    if rungs < 2:
        raise ValueError("a ladder needs at least 2 rungs")
    n = 2 * rungs
    edges = []
    for i in range(rungs):
        edges.append((2 * i, 2 * i + 1))
        if i + 1 < rungs:
            edges.append((2 * i, 2 * i + 2))
            edges.append((2 * i + 1, 2 * i + 3))
    xs = np.repeat(np.arange(rungs, dtype=float), 2)
    ys = np.tile(np.array([0.0, 1.0]), rungs)
    return GeometricGraph(Graph(n, edges), np.stack([xs, ys], axis=1))


def outerplanar_graph(n: int, seed: int) -> GeometricGraph:
    """A maximal outerplanar graph: an ``n``-gon with a random non-crossing
    triangulation of its interior (treewidth 2)."""
    if n < 3:
        raise ValueError("need at least 3 vertices")
    rng = np.random.default_rng(seed)
    edges = [(i, (i + 1) % n) for i in range(n)]

    def triangulate(lo: int, hi: int) -> None:
        # Triangulate the polygon arc lo..hi (indices along the n-gon).
        if hi - lo < 2:
            return
        mid = int(rng.integers(lo + 1, hi))
        if mid - lo > 1:
            edges.append((lo, mid))
        if hi - mid > 1:
            edges.append((mid, hi))
        triangulate(lo, mid)
        triangulate(mid, hi)

    triangulate(0, n - 1)
    return GeometricGraph(Graph(n, edges), _circle_positions(n))


def apex_graph(base: Graph) -> Graph:
    """``base`` plus one new vertex adjacent to everything.

    Section 4.3.1: apex graphs witness that diameter does not bound
    treewidth outside apex-minor-free families.
    """
    apex = base.n
    extra = [(apex, v) for v in range(base.n)]
    edges = np.concatenate(
        [base.edges(), np.asarray(extra, dtype=np.int64).reshape(-1, 2)]
    )
    return Graph(base.n + 1, edges)
