"""Articulation points / 2-connectivity.

Section 5.1 of the paper invokes "existing algorithms" for 2-connectivity
(Tarjan--Vishkin [50]: linear work, O(log n) depth).  As documented in
DESIGN.md, we execute Hopcroft--Tarjan lowpoint DFS (iterative) and *charge*
the Tarjan--Vishkin parallel bounds — the verdict is identical, only the
host-side execution strategy differs, and 2-connectivity is a black-box
subroutine of the vertex connectivity driver.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..pram import Cost, log2_ceil
from .components import connected_components
from .csr import Graph

__all__ = ["articulation_points", "is_biconnected", "tarjan_vishkin_cost"]


def tarjan_vishkin_cost(graph: Graph) -> Cost:
    """The charged parallel cost of biconnectivity (Tarjan--Vishkin):
    O(n + m) work, O(log n) depth."""
    n, m = graph.n, graph.m
    work = max(4 * (n + m), 1)
    return Cost(work, min(max(1, 2 * log2_ceil(max(n, 2))), work))


def articulation_points(graph: Graph) -> Tuple[np.ndarray, Cost]:
    """All articulation points (cut vertices) of the graph.

    Returns a sorted vertex array and the charged parallel cost.  Works on
    disconnected graphs (per-component analysis).
    """
    n = graph.n
    cost = tarjan_vishkin_cost(graph)
    if n == 0:
        return np.empty(0, dtype=np.int64), cost

    indptr, indices = graph.indptr, graph.indices
    visited = np.zeros(n, dtype=bool)
    disc = np.zeros(n, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    is_cut = np.zeros(n, dtype=bool)
    timer = 0

    for root in range(n):
        if visited[root]:
            continue
        # Iterative lowpoint DFS from this root.
        root_children = 0
        # Stack entries: (vertex, parent, next neighbor offset)
        stack: List[List[int]] = [[root, -1, int(indptr[root])]]
        visited[root] = True
        disc[root] = low[root] = timer
        timer += 1
        while stack:
            v, parent, ptr = stack[-1]
            if ptr < indptr[v + 1]:
                stack[-1][2] += 1
                w = int(indices[ptr])
                if not visited[w]:
                    visited[w] = True
                    disc[w] = low[w] = timer
                    timer += 1
                    if v == root:
                        root_children += 1
                    stack.append([w, v, int(indptr[w])])
                elif w != parent:
                    if disc[w] < low[v]:
                        low[v] = disc[w]
            else:
                stack.pop()
                if stack:
                    pv = stack[-1][0]
                    if low[v] < low[pv]:
                        low[pv] = low[v]
                    if pv != root and low[v] >= disc[pv]:
                        is_cut[pv] = True
        if root_children >= 2:
            is_cut[root] = True
    return np.flatnonzero(is_cut), cost


def is_biconnected(graph: Graph) -> Tuple[bool, Cost]:
    """Whether the graph is 2-connected.

    Convention (matching the paper's c-vertex-connectivity definition): the
    graph needs at least ``c + 1 = 3`` vertices, must be connected, and must
    have no articulation point.
    """
    if graph.n < 3:
        return False, tarjan_vishkin_cost(graph)
    _, count, c_cost = connected_components(graph)
    cuts, a_cost = articulation_points(graph)
    return count == 1 and cuts.size == 0, c_cost + a_cost
