"""Parallel connected components (Shiloach--Vishkin hook & compress).

The paper charges connected components to Gazit's optimal EREW algorithm
(O(n) work, O(log n) depth [27]).  We implement the classic
Shiloach--Vishkin label-propagation algorithm instead — it is simple,
deterministic, vectorizes cleanly, and runs in O((n + m) log n) work and
O(log n) depth, which is what we charge (the extra log factor over Gazit is
reported in EXPERIMENTS.md; it does not affect any qualitative claim).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..pram import Cost
from .csr import Graph

__all__ = ["connected_components", "is_connected", "component_members"]


def connected_components(graph: Graph) -> Tuple[np.ndarray, int, Cost]:
    """Label every vertex with a component id in ``0..k-1``.

    Returns ``(labels, component_count, cost)``.
    """
    n = graph.n
    if n == 0:
        return np.empty(0, dtype=np.int64), 0, Cost.zero()
    parent = np.arange(n, dtype=np.int64)
    edges = graph.edges()
    cost = Cost.step(n)
    if edges.size:
        u, v = edges[:, 0], edges[:, 1]
        while True:
            # Hook: for every edge, try to attach the larger root under the
            # smaller (arbitrary-winner concurrent write, as in CRCW SV; a
            # CREW machine simulates it with a log-factor already charged).
            pu, pv = parent[u], parent[v]
            lo = np.minimum(pu, pv)
            hi = np.maximum(pu, pv)
            changed_mask = lo != hi
            if not changed_mask.any():
                break
            np.minimum.at(parent, hi[changed_mask], lo[changed_mask])
            # Compress: one pointer-jumping sweep.
            for _ in range(2):
                parent = parent[parent]
            cost = cost + Cost.step(2 * int(edges.shape[0]) + 2 * n)
        # Final full compression.
        while True:
            grand = parent[parent]
            cost = cost + Cost.step(2 * n)
            if np.array_equal(grand, parent):
                break
            parent = grand
    roots, labels = np.unique(parent, return_inverse=True)
    cost = cost + Cost.scan(n)
    return labels.astype(np.int64), int(roots.size), cost


def is_connected(graph: Graph) -> Tuple[bool, Cost]:
    """Whether the graph is connected (vacuously true for n <= 1)."""
    if graph.n <= 1:
        return True, Cost.zero()
    _, count, cost = connected_components(graph)
    return count == 1, cost


def component_members(labels: np.ndarray, count: int) -> list:
    """Group vertex ids by component label (bucketing by stable sort)."""
    order = np.argsort(labels, kind="stable")
    boundaries = np.searchsorted(labels[order], np.arange(count + 1))
    return [
        order[boundaries[i] : boundaries[i + 1]] for i in range(count)
    ]
