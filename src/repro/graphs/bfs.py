"""Level-synchronous parallel BFS ("naive parallel BFS" of Section 2).

The paper deliberately uses naive BFS only inside low-diameter clusters:
each level is expanded in one parallel round, so the depth is the number of
levels and the work is linear in the explored edges — exactly what we charge.
On an unbounded-diameter graph this BFS would have linear depth, which is the
problem the exponential start time clustering solves (Section 2, "we care
exactly about the situation when the diameter D is not bounded").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..pram import Cost, Tracer
from .csr import Graph

from ..analysis.contracts import cost_contract

__all__ = ["BFSResult", "parallel_bfs"]

UNREACHED = -1


@dataclass(frozen=True)
class BFSResult:
    """Levels and parents of a (multi-source) BFS.

    ``level[v] == -1`` marks unreached vertices; sources have level 0 and
    parent ``-1``.
    """

    level: np.ndarray
    parent: np.ndarray

    @property
    def depth(self) -> int:
        """The largest BFS level reached (eccentricity of the source set)."""
        reached = self.level[self.level != UNREACHED]
        return int(reached.max(initial=0))

    def levels_count(self) -> int:
        return self.depth + 1


@cost_contract(work="O(n + m)", depth="O(d log n)")
def parallel_bfs(
    graph: Graph,
    sources: Sequence[int] | np.ndarray,
    tracer: Optional[Tracer] = None,
    label: str = "bfs",
) -> Tuple[BFSResult, Cost]:
    """Multi-source level-synchronous BFS with work--depth accounting.

    Work: O(n + explored edges).  Depth: one round per BFS level.  When a
    ``tracer`` is given the cost is also charged to it as a labeled leaf.
    """
    srcs = np.unique(np.asarray(list(np.atleast_1d(sources)), dtype=np.int64))
    if srcs.size == 0:
        raise ValueError("need at least one source")
    if srcs[0] < 0 or srcs[-1] >= graph.n:
        raise ValueError("source out of range")

    level = np.full(graph.n, UNREACHED, dtype=np.int64)
    parent = np.full(graph.n, UNREACHED, dtype=np.int64)
    level[srcs] = 0
    frontier = srcs
    cost = Cost.step(graph.n)  # parallel initialization
    depth_level = 0
    indptr, indices = graph.indptr, graph.indices
    while frontier.size:
        depth_level += 1
        # Gather all neighbors of the frontier (vectorized frontier expand).
        counts = indptr[frontier + 1] - indptr[frontier]
        total = int(counts.sum())
        if total:
            offsets = np.repeat(indptr[frontier], counts)
            within = np.arange(total) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            nbrs = indices[offsets + within]
            origins = np.repeat(frontier, counts)
            fresh_mask = level[nbrs] == UNREACHED
            fresh = nbrs[fresh_mask]
            fresh_origins = origins[fresh_mask]
            # CREW arbitrary-write tie break: first writer wins per target.
            uniq, first_idx = np.unique(fresh, return_index=True)
            level[uniq] = depth_level
            parent[uniq] = fresh_origins[first_idx]
            frontier = uniq
        else:
            frontier = np.empty(0, dtype=np.int64)
        # One parallel round per level: work ~ edges touched this level.
        cost = cost + Cost.step(max(total + int(frontier.size), 1))
    if tracer is not None:
        tracer.charge(cost, label=label, levels=depth_level, n=graph.n)
    return BFSResult(level=level, parent=parent), cost
