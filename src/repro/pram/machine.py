"""Work--depth tracker: a mutable accumulator over the :class:`Cost` algebra.

Long-running drivers (the subgraph-isomorphism pipeline, the vertex
connectivity decision) thread a :class:`Tracker` through their phases so the
total cost of a run is assembled incrementally.  Nested parallel regions are
expressed with :meth:`Tracker.parallel`, which turns the costs *charged inside
the region* into a parallel composition (sum of work, max of depth)::

    t = Tracker()
    t.charge(Cost.step(5))              # a sequential round
    with t.parallel() as region:
        for cluster in clusters:        # conceptually concurrent branches
            with region.branch():
                ...                     # charges inside land on this branch
    total = t.cost

The tracker only *accounts*; execution remains single-threaded (see
``repro.pram.cost`` for why this is the faithful reproduction of the paper's
CREW PRAM claims).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .cost import Cost

__all__ = ["Tracker", "ParallelRegion"]


class Tracker:
    """Accumulates the cost of a computation with nested parallel regions."""

    def __init__(self) -> None:
        self._work = 0
        self._depth = 0

    @property
    def cost(self) -> Cost:
        """The total cost charged so far."""
        return Cost(self._work, self._depth)

    def charge(self, cost: Cost) -> None:
        """Sequentially compose ``cost`` onto the running total."""
        self._work += cost.work
        self._depth += cost.depth

    def step(self, work: int = 1) -> None:
        """Charge one synchronous round of ``work`` operations."""
        if work > 0:
            self._work += work
            self._depth += 1

    @contextmanager
    def parallel(self) -> Iterator["ParallelRegion"]:
        """Open a parallel region; its branches compose in parallel."""
        region = ParallelRegion(self)
        yield region
        self.charge(region.cost)


class ParallelRegion:
    """Collects branch costs; total = (sum of work, max of depth)."""

    def __init__(self, parent: Tracker) -> None:
        self._parent = parent
        self._work = 0
        self._max_depth = 0

    @property
    def cost(self) -> Cost:
        return Cost(self._work, self._max_depth)

    def add(self, cost: Cost) -> None:
        """Add a branch with a precomputed cost."""
        self._work += cost.work
        if cost.depth > self._max_depth:
            self._max_depth = cost.depth

    @contextmanager
    def branch(self) -> Iterator[Tracker]:
        """Open a branch; costs charged to the yielded tracker join the
        region as one parallel arm."""
        sub = Tracker()
        yield sub
        self.add(sub.cost)
