"""Work--depth tracker: compatibility façade over the trace substrate.

Historically this module held the flat ``Tracker``/``ParallelRegion``
accumulator pair.  The accounting substrate now lives in
:mod:`repro.pram.trace`: :class:`~repro.pram.trace.Tracer` keeps the exact
``charge`` / ``step`` / ``parallel`` semantics (the same (work, depth)
arithmetic, now also exception-safe) while recording a phase-labeled span
tree.  ``Tracker`` remains as an alias so existing call sites and the
published API keep working::

    t = Tracker()
    t.charge(Cost.step(5))              # a sequential round
    with t.parallel() as region:
        for cluster in clusters:        # conceptually concurrent branches
            with region.branch():
                ...                     # charges inside land on this branch
    total = t.cost                      # unchanged
    tree = t.root                       # new: the recorded phase tree

The tracker only *accounts*; execution remains single-threaded (see
``repro.pram.cost`` for why this is the faithful reproduction of the paper's
CREW PRAM claims).  Because the machine is simulated, an accounting bug —
two "concurrent" branches writing the same cell — cannot crash; it silently
voids the CREW assumption behind the charged bounds.  The opt-in write-race
sanitizer (:mod:`repro.pram.sanitize`, re-exported here) turns that into a
hard error: run with ``REPRO_SANITIZE=crew`` (or ``erew`` for exclusive-read
checking) and conflicting branch write-sets raise
:class:`~repro.pram.sanitize.CREWViolation` naming both branch span paths.
"""

from __future__ import annotations

from .sanitize import CREWViolation, ShadowArray, active_mode, sanitized
from .trace import ParallelRegion, Tracer, Tracker

__all__ = [
    "Tracker",
    "Tracer",
    "ParallelRegion",
    "CREWViolation",
    "ShadowArray",
    "active_mode",
    "sanitized",
]
