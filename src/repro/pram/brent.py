"""Brent-scheduling utilities: turn (work, depth) traces into P-processor
simulated execution times and speedup curves.

Section 1.1 of the paper: "By Brent's scheduling algorithm, an algorithm with
work W and depth D can be executed with P processors in time O(W/P + D) on a
CREW PRAM."  These helpers evaluate that bound over processor sweeps; the
Table-1 benchmark uses them to plot simulated strong-scaling curves.
"""

from __future__ import annotations

from typing import Dict, Sequence

from .cost import Cost

__all__ = ["brent_schedule", "speedup_curve", "scalability_limit"]


def brent_schedule(cost: Cost, processors: Sequence[int]) -> Dict[int, int]:
    """Simulated time ``ceil(W/P) + D`` for each processor count."""
    return {p: cost.brent_time(p) for p in processors}


def speedup_curve(cost: Cost, processors: Sequence[int]) -> Dict[int, float]:
    """Speedup ``T_1 / T_P`` for each processor count."""
    t1 = cost.brent_time(1)
    return {p: t1 / cost.brent_time(p) for p in processors}


def scalability_limit(cost: Cost) -> float:
    """The asymptote of the speedup curve: ``T_1 / D = (W + D) / D``.

    No processor count can beat this; it equals 1 + parallelism.
    """
    if cost.depth == 0:
        return float("inf")
    return cost.brent_time(1) / cost.depth
