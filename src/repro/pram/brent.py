"""Brent-scheduling utilities: turn (work, depth) traces into P-processor
simulated execution times and speedup curves.

Section 1.1 of the paper: "By Brent's scheduling algorithm, an algorithm with
work W and depth D can be executed with P processors in time O(W/P + D) on a
CREW PRAM."  These helpers evaluate that bound over processor sweeps; the
Table-1 benchmark uses them to plot simulated strong-scaling curves.

The closed form here treats the trace as a single flat (work, depth) pair.
For schedules that respect the recorded span *structure* — where the
critical path actually lives — see :mod:`repro.pram.schedule`, which
executes the span tree under a greedy list scheduler and never reports a
time above the ``ceil(W/P) + D`` bound evaluated here.
"""

from __future__ import annotations

from typing import Dict, Sequence

from .cost import Cost

__all__ = ["brent_schedule", "speedup_curve", "scalability_limit"]


def _check_processors(processors: Sequence[int]) -> None:
    for p in processors:
        if p < 1:
            raise ValueError(
                f"processor counts must be >= 1, got {p}"
            )


def brent_schedule(cost: Cost, processors: Sequence[int]) -> Dict[int, float]:
    """Simulated time ``ceil(W/P) + D`` for each processor count.

    Times are returned as floats for consistency with
    :func:`speedup_curve` (a zero-cost trace runs in time 0.0).  Processor
    counts below 1 raise :class:`ValueError` up front rather than failing
    midway through the sweep.
    """
    _check_processors(processors)
    return {p: float(cost.brent_time(p)) for p in processors}


def speedup_curve(cost: Cost, processors: Sequence[int]) -> Dict[int, float]:
    """Speedup ``T_1 / T_P`` for each processor count.

    A zero-cost trace (``brent_time(p) == 0`` for every ``p``) speeds up
    by definition 1.0 — doing nothing is never faster than doing nothing —
    instead of dividing by zero.  Processor counts below 1 raise
    :class:`ValueError`.
    """
    _check_processors(processors)
    t1 = float(cost.brent_time(1))
    return {
        p: t1 / tp if (tp := float(cost.brent_time(p))) else 1.0
        for p in processors
    }


def scalability_limit(cost: Cost) -> float:
    """The asymptote of the speedup curve: ``T_1 / D = (W + D) / D``.

    No processor count can beat this; it equals 1 + parallelism.
    """
    if cost.depth == 0:
        return float("inf")
    return cost.brent_time(1) / cost.depth
