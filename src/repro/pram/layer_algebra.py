"""The unary-function family of Appendix A — with a corrected closure.

Appendix A of the paper evaluates the layer-number recursion

    L(l1, .., lk) = max(l)      if the maximum is unique,
                    max(l) + 1  otherwise,

by parallel expression-tree evaluation (Lemma A.1), which requires a family
of O(1)-representable unary functions closed under composition and under
projection of ``L``.  The paper proposes, for each natural ``i``::

    f_i(x) = i + 1         if i == x          ("max so far unique, equal i")
             max(i, x)     otherwise
    g_i(x) = i + 1         if i >= x          ("max so far not unique")
             x             if i <  x

**Erratum.** The family ``{id, f_i, g_i}`` is *not* closed under composition,
and the composition table printed in Appendix A is not pointwise-correct.
Counterexample: the table claims ``f_i ∘ f_j = f_max(i,j)`` for ``i != j``,
but ``(f_1 ∘ f_0)(0) = f_1(f_0(0)) = f_1(1) = 2`` while ``f_1(0) = 1``.  The
discrepancy arises whenever ``i == j + 1``: the inner function can lift its
argument to exactly the outer function's tie value, which the table ignores.
The function ``f_1 ∘ f_0`` (``x=0 ↦ 2, 1 ↦ 2, 2 ↦ 2, x ↦ x above``) is not
any ``f_i`` or ``g_i``.

**Fix (what this module implements).** The actual closure of the family is
the two-parameter family ``F(m, j)`` with ``-1 <= m`` and ``0 <= j <= m``
(plus the identity ``F(-1, 0)``)::

    F(m, j)(x) = m        if x < j
                 m + 1    if j <= x <= m
                 x        if x > m

with ``f_i = F(i, i)`` and ``g_i = F(i, 0)``.  ``m`` is the maximum layer
value accumulated so far and ``j`` is the threshold below which the pending
argument can no longer reach that maximum (so the result is ``m`` — the
maximum stays unique).  Composition stays in the family and is computed in
O(1) by::

    F(M, J) ∘ F(m, j)  =  F(m, j)   if m >  M
                          F(M, 0)   if m == M
                          F(M, J)   if m <  M and m + 1 <  J
                          F(M, j)   if m <  M and m + 1 == J
                          F(M, 0)   if m <  M and J <= m

(verified exhaustively in ``tests/pram/test_layer_algebra.py``, together with
a regression test pinning the paper's counterexample).  Lemma A.1 and every
result depending on it are unaffected — only the exhibited family needed the
extra parameter.

Representation: a pair ``(m, j)``.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "IDENTITY",
    "make_f",
    "make_g",
    "make_member",
    "apply_fn",
    "compose",
    "project_layer_op",
    "layer_op",
]

Fn = Tuple[int, int]

IDENTITY: Fn = (-1, 0)


def make_member(m: int, j: int) -> Fn:
    """The family member ``F(m, j)`` (validated)."""
    if m == -1 and j == 0:
        return IDENTITY
    if m < 0 or not 0 <= j <= m:
        raise ValueError(f"invalid family parameters F({m}, {j})")
    return (m, j)


def make_f(i: int) -> Fn:
    """The paper's ``f_i`` ("unique maximum so far, equal to ``i``")."""
    if i < 0:
        raise ValueError("index must be non-negative")
    return (i, i)


def make_g(i: int) -> Fn:
    """The paper's ``g_i`` ("duplicated maximum so far, equal to ``i``")."""
    if i < 0:
        raise ValueError("index must be non-negative")
    return (i, 0)


def apply_fn(fn: Fn, x: int) -> int:
    """Evaluate a family member at ``x``."""
    m, j = fn
    if x < j:
        return m
    if x <= m:
        return m + 1
    return x


def compose(outer: Fn, inner: Fn) -> Fn:
    """Return the family member equal to ``outer ∘ inner`` (O(1))."""
    M, J = outer
    m, j = inner
    if m > M:
        return inner
    if m == M:
        return (M, 0) if M >= 0 else IDENTITY
    if m + 1 < J:
        return outer
    if m + 1 == J:
        return (M, j)
    return (M, 0)


def layer_op(a: int, b: int) -> int:
    """The binary ``L``: the layer number of a parent from its two children."""
    if a == b:
        return a + 1
    return max(a, b)


def project_layer_op(known: int) -> Fn:
    """Project the binary ``L`` by fixing one child's layer number.

    With a single fixed argument the maximum "so far" is trivially unique, so
    ``L(known, x) = f_known(x)`` (final display of Appendix A).
    """
    return make_f(known)
