"""Span-tree Brent scheduler: execute a phase-labeled trace under ``P``
simulated processors.

``Cost.brent_time`` evaluates the closed-form bound ``ceil(W/P) + D`` on a
*flat* (work, depth) pair — it cannot say where the critical path lives, and
it silently assumes every unit of work is available whenever a processor is
idle.  The span tree recorded by :class:`repro.pram.trace.Tracer` knows
better: sequential children serialize, parallel children compete for
processor slots, and each leaf charge is a run of ``depth`` synchronous
rounds over ``work`` divisible operations.  This module *executes* that
structure with a greedy list scheduler (highest remaining critical path
first — Graham's HLF discipline) and reports a per-phase timeline.

Model
-----
Every span's direct charge ``(self_work, self_depth)`` becomes one
*task* of ``self_depth`` sequential rounds holding ``self_work`` operations
split as evenly as possible (round sizes differ by at most one, larger
rounds first).  Within a round the operations are divisible: a round of
``s`` operations on ``a`` dedicated processors takes ``ceil(s / a)`` steps;
rounds of one task never overlap.  Precedence follows the tree: a
sequential span runs its own charge, then each child subtree in order; a
parallel span runs its own charge, then all child subtrees concurrently.

At every scheduling event the ready tasks are ordered by static critical
path (own rounds plus the longest round-path to the end of the trace);
each receives one processor, then leftover slots top the most critical
tasks up to their current round's size (work conservation), then up to
their largest remaining round.  The classic greedy bounds hold and are
property-tested in ``tests/pram/test_schedule.py``::

    max(ceil(W / P), D)  <=  T_P  <=  ceil(W / P) + D        (Brent sandwich)
    T_1 == W                 (one processor executes exactly the work)
    T_P non-increasing in P

so the simulated makespan never exceeds the scalar ``Cost.brent_time``
bound, while imbalanced trees land measurably above the ``max(...)`` ideal
— the gap the scalar formula cannot see.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .cost import Cost
from .trace import PAR, Span

__all__ = [
    "ScheduledSpan",
    "Schedule",
    "simulate_schedule",
    "schedule_speedup_curve",
]


class _Task:
    """One schedulable unit: the direct charge of one span.

    Round structure is fixed at construction (even split of ``work`` over
    ``depth`` rounds); the mutable state is the current round's remaining
    operations plus how many full big/small rounds follow it.
    """

    __slots__ = (
        "index", "name", "path", "work", "depth",
        "big_size", "small_size", "n_big", "n_small", "cur",
        "succs", "npreds", "crit", "tail",
        "start", "finish", "started",
    )

    def __init__(
        self, index: int, name: str, path: str, work: int, depth: int
    ) -> None:
        self.index = index
        self.name = name
        self.path = path
        self.work = work
        self.depth = depth
        if work > 0:
            # r rounds of size q+1 first, then depth - r rounds of size q.
            q, r = divmod(work, depth)
            self.big_size = q + 1 if r else q
            self.small_size = q
            if r:
                self.n_big = r - 1
                self.n_small = depth - r
            else:
                self.n_big = 0
                self.n_small = depth - 1
            self.cur = self.big_size
        else:
            self.big_size = self.small_size = 0
            self.n_big = self.n_small = 0
            self.cur = 0
        self.succs: List["_Task"] = []
        self.npreds = 0
        self.crit = 0  # rounds on the longest path through this task
        self.tail = 0  # rounds on the longest path after this task
        self.start = 0
        self.finish = 0
        self.started = False

    # -- round arithmetic --------------------------------------------------

    @property
    def done(self) -> bool:
        return self.cur == 0 and self.n_big == 0 and self.n_small == 0

    def rounds_remaining(self) -> int:
        return (1 if self.cur else 0) + self.n_big + self.n_small

    def cap(self) -> int:
        """Most processors this task can use in any one step: the largest
        remaining round (extra slots beyond it necessarily idle)."""
        return max(
            self.cur,
            self.big_size if self.n_big else 0,
            self.small_size if self.n_small else 0,
        )

    def remaining_time(self, procs: int) -> int:
        """Steps to finish every remaining round on ``procs`` processors."""
        t = -(-self.cur // procs) if self.cur else 0
        if self.n_big:
            t += self.n_big * -(-self.big_size // procs)
        if self.n_small:
            t += self.n_small * -(-self.small_size // procs)
        return t

    def advance(self, procs: int, steps: int) -> None:
        """Run ``steps`` scheduler steps at a fixed ``procs`` allocation."""
        if self.cur:
            t_cur = -(-self.cur // procs)
            if steps < t_cur:
                self.cur -= procs * steps
                return
            steps -= t_cur
            self.cur = 0
        if self.n_big:
            per = -(-self.big_size // procs)
            k = min(self.n_big, steps // per)
            self.n_big -= k
            steps -= k * per
            if self.n_big:
                self.n_big -= 1
                self.cur = self.big_size - procs * steps
                return
        if self.n_small:
            per = -(-self.small_size // procs)
            k = min(self.n_small, steps // per)
            self.n_small -= k
            steps -= k * per
            if self.n_small:
                self.n_small -= 1
                self.cur = self.small_size - procs * steps


def _build_tasks(root: Span) -> List[_Task]:
    """Flatten the span tree into tasks plus precedence edges.

    Sequential units are chained through zero-work *barrier* tasks so a
    wide parallel region followed by another costs O(branches) edges, not
    a cross product.
    """
    tasks: List[_Task] = []

    def new_task(name: str, path: str, work: int, depth: int) -> _Task:
        t = _Task(len(tasks), name, path, work, depth)
        tasks.append(t)
        return t

    def link(frm: Sequence[_Task], to: Sequence[_Task]) -> None:
        for a in frm:
            for b in to:
                a.succs.append(b)
                b.npreds += 1

    def build(span: Span, prefix: str) -> Tuple[List[_Task], List[_Task]]:
        """Return (entry tasks, exit tasks) of the span's sub-DAG."""
        path = f"{prefix}/{span.name}" if prefix else span.name
        units: List[Tuple[List[_Task], List[_Task]]] = []
        if span.self_work > 0:
            t = new_task(span.name, path, span.self_work, max(span.self_depth, 1))
            units.append(([t], [t]))
        children = [build(c, path) for c in span.children]
        children = [u for u in children if u[0]]
        if span.mode == PAR:
            if children:
                entries: List[_Task] = []
                exits: List[_Task] = []
                for ce, cx in children:
                    entries.extend(ce)
                    exits.extend(cx)
                units.append((entries, exits))
        else:
            units.extend(children)
        if not units:
            return [], []
        # Chain sequential units, inserting barriers where a fan-out meets
        # a fan-in (both sides wider than one task).
        for (pe, px), (ne, nx) in zip(units, units[1:]):
            if len(px) > 1 and len(ne) > 1:
                barrier = new_task("(barrier)", path, 0, 0)
                link(px, [barrier])
                link([barrier], ne)
            else:
                link(px, ne)
        return units[0][0], units[-1][1]

    build(root, "")
    return tasks


@dataclass(frozen=True)
class ScheduledSpan:
    """One executed leaf charge on the simulated timeline.

    ``processors`` is the mean occupancy over the task's active window
    (``work / (finish - start)``); instantaneous allocation varies as the
    greedy scheduler rebalances.
    """

    name: str
    path: str
    start: int
    finish: int
    work: int
    depth: int

    @property
    def duration(self) -> int:
        return self.finish - self.start

    @property
    def processors(self) -> float:
        span = self.finish - self.start
        return self.work / span if span else float(self.work)


@dataclass(frozen=True)
class Schedule:
    """Outcome of :func:`simulate_schedule`: the per-phase timeline of one
    span tree executed under ``processors`` simulated processors."""

    processors: int
    makespan: int
    cost: Cost
    spans: Tuple[ScheduledSpan, ...]
    critical_path: Tuple[ScheduledSpan, ...]

    @property
    def utilization(self) -> float:
        """Fraction of processor-steps spent working: ``W / (P * T_P)``."""
        if self.makespan == 0:
            return 1.0
        return self.cost.work / (self.processors * self.makespan)

    @property
    def speedup(self) -> float:
        """Simulated speedup over one processor: ``T_1 / T_P = W / T_P``."""
        if self.makespan == 0:
            return 1.0
        return self.cost.work / self.makespan

    def brent_bound(self) -> int:
        """The scalar ``ceil(W/P) + D`` bound the makespan never exceeds."""
        return math.ceil(self.cost.work / self.processors) + self.cost.depth

    def ideal_time(self) -> int:
        """The unstructured lower bound ``max(ceil(W/P), D)`` — achieved
        only by perfectly balanced traces."""
        return max(math.ceil(self.cost.work / self.processors), self.cost.depth)


def simulate_schedule(root: Span, processors: int) -> Schedule:
    """Execute ``root`` greedily on ``processors`` simulated processors.

    Returns the exact simulated makespan ``T_P`` together with the
    start/finish window of every leaf charge and the scheduled critical
    path (the backward chain of tasks that gated the makespan).

    Deterministic: identical trees and processor counts yield identical
    schedules (ties break on task creation order).
    """
    if processors < 1:
        raise ValueError(f"need at least one processor, got {processors}")
    tasks = _build_tasks(root)
    # Static HLF priority: longest chain of rounds through each task.
    for t in reversed(tasks):
        t.tail = max((s.crit for s in t.succs), default=0)
        t.crit = t.depth + t.tail

    ready: List[Tuple[int, int]] = []  # (-crit, index) heap of runnable tasks
    pending = 0

    def release(task: _Task, now: int) -> None:
        """Mark ``task`` ready at ``now``; zero-work tasks finish at once."""
        nonlocal pending
        if task.work == 0:
            task.start = task.finish = now
            for s in task.succs:
                s.npreds -= 1
                if s.npreds == 0:
                    release(s, now)
        else:
            pending += 1
            heapq.heappush(ready, (-task.crit, task.index))

    now = 0
    for t in tasks:
        if t.npreds == 0:
            release(t, now)

    while pending:
        # Draw the P most critical ready tasks and give each one
        # processor.  Leftover slots (possible only when every ready task
        # was drawn) top the most critical tasks up to their *current*
        # round first — work conservation: a processor never idles while
        # an executable operation exists — then up to their largest
        # remaining round (the surplus would idle anyway).
        drawn: List[_Task] = []
        while ready and len(drawn) < processors:
            _, idx = heapq.heappop(ready)
            drawn.append(tasks[idx])
        alloc: Dict[int, int] = {t.index: 1 for t in drawn}
        spare = processors - len(drawn)
        if spare:
            for use_cap in (False, True):
                for t in drawn:
                    if spare == 0:
                        break
                    limit = t.cap() if use_cap else t.cur
                    extra = min(spare, limit - alloc[t.index])
                    if extra > 0:
                        alloc[t.index] += extra
                        spare -= extra
        # Window length: the longest stretch over which re-running the
        # per-step allocator would reproduce this exact assignment.  A
        # single running task or an everyone-maxed allocation (alloc >=
        # every remaining round) or unit allocation everywhere
        # (len(drawn) == P) stays valid until the first task completes;
        # otherwise the window ends after the last *full* step of the
        # nearest round (cur // alloc), so a round's trailing partial
        # step triggers reallocation instead of idling processors that
        # other tasks' operations could use (work conservation — this is
        # what makes the Brent upper bound hold).
        if len(drawn) == 1 or all(
            alloc[t.index] >= t.cap() for t in drawn
        ):
            delta = min(t.remaining_time(alloc[t.index]) for t in drawn)
        elif len(drawn) == processors:
            delta = min(t.remaining_time(1) for t in drawn)
        else:
            delta = min(
                max(1, t.cur // alloc[t.index]) for t in drawn
            )
        for t in drawn:
            if not t.started:
                t.started = True
                t.start = now
        now += delta
        for t in drawn:
            t.advance(alloc[t.index], delta)
            if t.done:
                pending -= 1
                t.finish = now
                for s in t.succs:
                    s.npreds -= 1
                    if s.npreds == 0:
                        release(s, now)
            else:
                heapq.heappush(ready, (-t.crit, t.index))

    real = [t for t in tasks if t.work > 0]
    spans = tuple(
        ScheduledSpan(t.name, t.path, t.start, t.finish, t.work, t.depth)
        for t in sorted(real, key=lambda t: (t.start, t.index))
    )
    makespan = max((t.finish for t in real), default=0)

    # Scheduled critical path: walk backward from the last finisher along
    # the predecessor that finished last (ties to the earliest-created).
    preds: Dict[int, List[_Task]] = {t.index: [] for t in tasks}
    for t in tasks:
        for s in t.succs:
            preds[s.index].append(t)
    chain: List[_Task] = []
    cur: Optional[_Task] = max(
        real, key=lambda t: (t.finish, -t.index), default=None
    )
    while cur is not None:
        if cur.work > 0:
            chain.append(cur)
        cur = max(
            preds[cur.index], key=lambda t: (t.finish, -t.index), default=None
        )
    chain.reverse()
    critical = tuple(
        ScheduledSpan(t.name, t.path, t.start, t.finish, t.work, t.depth)
        for t in chain
    )
    return Schedule(
        processors=processors,
        makespan=makespan,
        cost=Cost(root.work, root.depth),
        spans=spans,
        critical_path=critical,
    )


def schedule_speedup_curve(
    root: Span, processors: Sequence[int]
) -> Dict[int, float]:
    """Schedule-simulated speedup ``T_1 / T_P = W / T_P`` per processor
    count.  Zero-work traces speed up by definition 1.0, mirroring the
    scalar :func:`repro.pram.brent.speedup_curve`."""
    out: Dict[int, float] = {}
    for p in processors:
        sched = simulate_schedule(root, p)
        out[p] = sched.speedup
    return out
