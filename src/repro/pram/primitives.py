"""Data-parallel primitives with exact work--depth accounting.

Each primitive executes with NumPy (the fast single-threaded realization) and
returns ``(result, Cost)`` where the cost is what the textbook CREW PRAM
implementation would charge (Blelloch scans, balanced reductions, packing by
scan).  These are the building blocks used by the clustering, BFS, covering
and shortcut machinery of the paper.

Every primitive accepts an optional ``tracer``: when given, the primitive's
cost is additionally charged to the tracer as a labeled leaf span (the label
defaults to the primitive's name), so callers get phase attribution without
having to thread the returned cost by hand.

Sanitizer instrumentation: under an active write-race sanitizer
(``repro.pram.sanitize``) each primitive declares the cells of its *input*
arrays as reads of the enclosing branch (its outputs are freshly allocated
and therefore private).  Concurrent reads are legal on a CREW machine, so
this only bites under the stricter EREW flag; it charges nothing and the
declarations vanish entirely when no sanitizer is active.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .cost import Cost
from .trace import Tracer

from ..analysis.contracts import cost_contract

__all__ = [
    "prefix_sum",
    "exclusive_prefix_sum",
    "parallel_reduce",
    "pack",
    "pack_indices",
    "pointer_jump_roots",
]


@cost_contract(work="O(1)", depth="O(1)")
def _record(
    tracer: Optional[Tracer], cost: Cost, label: str, **counters: float
) -> Cost:
    """Charge ``cost`` as a labeled leaf on ``tracer`` (when present)."""
    if tracer is not None:
        tracer.charge(cost, label=label, **counters)
    return cost


@cost_contract(work="O(1)", depth="O(1)")
def _note_reads(tracer: Optional[Tracer], *arrays: np.ndarray) -> None:
    """Declare the primitive's input cells as branch reads (sanitizer)."""
    if tracer is not None and tracer._mem is not None:
        for array in arrays:
            tracer.record_reads(array)


@cost_contract(work="O(n)", depth="O(log n)")
def prefix_sum(
    values: np.ndarray,
    tracer: Optional[Tracer] = None,
    label: str = "prefix-sum",
) -> Tuple[np.ndarray, Cost]:
    """Inclusive prefix sum; ``O(n)`` work, ``O(log n)`` depth."""
    values = np.asarray(values)
    n = int(values.shape[0])
    _note_reads(tracer, values)
    return np.cumsum(values), _record(tracer, Cost.scan(n), label, items=n)


@cost_contract(work="O(n)", depth="O(log n)")
def exclusive_prefix_sum(
    values: np.ndarray,
    tracer: Optional[Tracer] = None,
    label: str = "prefix-sum",
) -> Tuple[np.ndarray, Cost]:
    """Exclusive prefix sum (``out[i] = sum(values[:i])``)."""
    values = np.asarray(values)
    n = int(values.shape[0])
    _note_reads(tracer, values)
    out = np.empty(n + 1, dtype=np.int64)
    out[0] = 0
    np.cumsum(values, out=out[1:])
    return out[:-1], _record(tracer, Cost.scan(n), label, items=n)


@cost_contract(work="O(n)", depth="O(log n)")
def parallel_reduce(
    values: np.ndarray,
    op: str = "sum",
    tracer: Optional[Tracer] = None,
    label: str = "reduce",
) -> Tuple[Union[int, float], Cost]:
    """Balanced binary reduction; ``op`` is one of sum/max/min.

    Returns a plain Python scalar (``int`` for integer/boolean inputs,
    ``float`` for floating inputs) — never a NumPy scalar.
    """
    values = np.asarray(values)
    n = int(values.shape[0])
    if n == 0:
        raise ValueError("cannot reduce an empty array")
    _note_reads(tracer, values)
    if op == "sum":
        result = values.sum()
    elif op == "max":
        result = values.max()
    elif op == "min":
        result = values.min()
    else:
        raise ValueError(f"unknown reduction op {op!r}")
    return result.item(), _record(
        tracer, Cost.reduction(n), label, items=n
    )


@cost_contract(work="O(n)", depth="O(log n)")
def pack(
    values: np.ndarray,
    mask: np.ndarray,
    tracer: Optional[Tracer] = None,
    label: str = "pack",
) -> Tuple[np.ndarray, Cost]:
    """Keep ``values[i]`` where ``mask[i]``; scan-based compaction.

    Work ``O(n)``, depth ``O(log n)`` — the canonical PRAM filter.  An
    empty input compacts for free (``Cost.zero()``): there is nothing to
    scan and nothing to scatter.
    """
    values = np.asarray(values)
    mask = np.asarray(mask, dtype=bool)
    if values.shape[0] != mask.shape[0]:
        raise ValueError("values and mask must have equal length")
    n = int(values.shape[0])
    _note_reads(tracer, values, mask)
    # Scan to compute target offsets + one scatter round.
    cost = Cost.scan(n) + Cost.step(n)
    return values[mask], _record(tracer, cost, label, items=n)


@cost_contract(work="O(n)", depth="O(log n)")
def pack_indices(
    mask: np.ndarray,
    tracer: Optional[Tracer] = None,
    label: str = "pack",
) -> Tuple[np.ndarray, Cost]:
    """Indices ``i`` with ``mask[i]`` true, via scan-based compaction.

    Empty masks cost zero, as for :func:`pack`.
    """
    mask = np.asarray(mask, dtype=bool)
    n = int(mask.shape[0])
    _note_reads(tracer, mask)
    cost = Cost.scan(n) + Cost.step(n)
    return np.flatnonzero(mask), _record(tracer, cost, label, items=n)


@cost_contract(work="O(n log n)", depth="O(log n)")
def pointer_jump_roots(
    parent: np.ndarray,
    tracer: Optional[Tracer] = None,
    label: str = "pointer-jump",
) -> Tuple[np.ndarray, Cost]:
    """Resolve every node of a forest to its root by pointer doubling.

    ``parent[i]`` is the parent of ``i`` (roots satisfy ``parent[i] == i``).
    Executes the actual ``O(log h)`` jumping rounds (``h`` = tallest tree),
    charging ``n`` work per round — exactly the PRAM pointer-jumping loop used
    by the shortcut construction in Section 3.3.3.
    """
    source = np.asarray(parent, dtype=np.int64)
    _note_reads(tracer, source)
    parent = source.copy()
    n = int(parent.shape[0])
    if n == 0:
        return parent, _record(tracer, Cost.zero(), label, items=0)
    if parent.min() < 0 or parent.max() >= n:
        raise ValueError("parent pointers out of range")
    cost = Cost.zero()
    rounds = 0
    while True:
        grand = parent[parent]
        cost = cost + Cost.step(2 * n)  # read parent-of-parent + write back
        rounds += 1
        if np.array_equal(grand, parent):
            break
        parent = grand
    return parent, _record(tracer, cost, label, items=n, rounds=rounds)
