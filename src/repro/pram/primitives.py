"""Data-parallel primitives with exact work--depth accounting.

Each primitive executes with NumPy (the fast single-threaded realization) and
returns ``(result, Cost)`` where the cost is what the textbook CREW PRAM
implementation would charge (Blelloch scans, balanced reductions, packing by
scan).  These are the building blocks used by the clustering, BFS, covering
and shortcut machinery of the paper.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .cost import Cost, log2_ceil

__all__ = [
    "prefix_sum",
    "exclusive_prefix_sum",
    "parallel_reduce",
    "pack",
    "pack_indices",
    "pointer_jump_roots",
]


def prefix_sum(values: np.ndarray) -> Tuple[np.ndarray, Cost]:
    """Inclusive prefix sum; ``O(n)`` work, ``O(log n)`` depth."""
    values = np.asarray(values)
    n = int(values.shape[0])
    return np.cumsum(values), Cost.scan(n)


def exclusive_prefix_sum(values: np.ndarray) -> Tuple[np.ndarray, Cost]:
    """Exclusive prefix sum (``out[i] = sum(values[:i])``)."""
    values = np.asarray(values)
    n = int(values.shape[0])
    out = np.empty(n + 1, dtype=np.int64)
    out[0] = 0
    np.cumsum(values, out=out[1:])
    return out[:-1], Cost.scan(n)


def parallel_reduce(values: np.ndarray, op: str = "sum") -> Tuple[float, Cost]:
    """Balanced binary reduction; ``op`` is one of sum/max/min."""
    values = np.asarray(values)
    n = int(values.shape[0])
    if n == 0:
        raise ValueError("cannot reduce an empty array")
    if op == "sum":
        result = values.sum()
    elif op == "max":
        result = values.max()
    elif op == "min":
        result = values.min()
    else:
        raise ValueError(f"unknown reduction op {op!r}")
    return result, Cost.reduction(n)


def pack(values: np.ndarray, mask: np.ndarray) -> Tuple[np.ndarray, Cost]:
    """Keep ``values[i]`` where ``mask[i]``; scan-based compaction.

    Work ``O(n)``, depth ``O(log n)`` — the canonical PRAM filter.
    """
    values = np.asarray(values)
    mask = np.asarray(mask, dtype=bool)
    if values.shape[0] != mask.shape[0]:
        raise ValueError("values and mask must have equal length")
    n = int(values.shape[0])
    # Scan to compute target offsets + one scatter round.
    cost = Cost.scan(n) + Cost.step(max(n, 1))
    return values[mask], cost

def pack_indices(mask: np.ndarray) -> Tuple[np.ndarray, Cost]:
    """Indices ``i`` with ``mask[i]`` true, via scan-based compaction."""
    mask = np.asarray(mask, dtype=bool)
    n = int(mask.shape[0])
    cost = Cost.scan(n) + Cost.step(max(n, 1))
    return np.flatnonzero(mask), cost


def pointer_jump_roots(parent: np.ndarray) -> Tuple[np.ndarray, Cost]:
    """Resolve every node of a forest to its root by pointer doubling.

    ``parent[i]`` is the parent of ``i`` (roots satisfy ``parent[i] == i``).
    Executes the actual ``O(log h)`` jumping rounds (``h`` = tallest tree),
    charging ``n`` work per round — exactly the PRAM pointer-jumping loop used
    by the shortcut construction in Section 3.3.3.
    """
    parent = np.asarray(parent, dtype=np.int64).copy()
    n = int(parent.shape[0])
    if n == 0:
        return parent, Cost.zero()
    if parent.min() < 0 or parent.max() >= n:
        raise ValueError("parent pointers out of range")
    cost = Cost.zero()
    while True:
        grand = parent[parent]
        cost = cost + Cost.step(2 * n)  # read parent-of-parent + write back
        if np.array_equal(grand, parent):
            break
        parent = grand
    return parent, cost
