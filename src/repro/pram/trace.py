"""Hierarchical work--depth tracing: a phase-labeled span tree over the
:class:`Cost` algebra.

The paper's bounds are *per phase* — clustering (Lemma 2.3), the treewidth
cover (Theorem 2.4), the shortcut DP solve (Section 3.3) — but a flat
``(work, depth)`` total cannot say which phase dominates a run, nor let a
benchmark check one lemma's bound in isolation.  This module refactors the
old flat ``Tracker`` into a **trace substrate**:

:class:`Span`
    One node of the phase tree.  A span has a name, a composition ``mode``
    (``"seq"`` — children and direct charges compose sequentially; ``"par"``
    — children are concurrent branches composing as (sum work, max depth)),
    running work/depth totals, optional numeric ``counters`` (rounds, items,
    pieces, ...) and its child spans.

:class:`Tracer`
    A drop-in replacement for the old ``Tracker`` (``charge`` / ``step`` /
    ``parallel`` keep their exact semantics — the cost arithmetic is
    unchanged, property-tested against the ``Cost.seq``/``Cost.par``
    algebra) that additionally records *where* every unit of work went:

    >>> t = Tracer("decide-si")
    >>> with t.span("clustering"):
    ...     t.charge(Cost(100, 4))
    >>> with t.parallel("pieces") as region:
    ...     with region.branch("dp-solve") as b:
    ...         b.step(10)
    >>> t.cost
    Cost(work=110, depth=5)
    >>> t.root.children[0].name
    'clustering'

Every composition is exception-safe: costs charged before an exception
propagates out of a ``span`` / ``parallel`` / ``branch`` block are folded
into the parent (``try/finally``), so a failed run still yields an honest
partial trace.

Serialization and rendering: :meth:`Span.to_dict` / :func:`span_from_dict`
round-trip through JSON (the CLI's ``--trace-json``), :func:`format_trace`
renders the indented per-phase table (the CLI's ``--trace``), and
:func:`aggregate_phases` sums work per phase name for benchmark breakdowns.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from . import sanitize
from .cost import Cost
from .sanitize import Target

__all__ = [
    "Span",
    "Tracer",
    "ParallelRegion",
    "format_trace",
    "aggregate_phases",
    "span_from_dict",
]

SEQ = "seq"
PAR = "par"


class Span:
    """One node of the phase tree; see the module docstring.

    ``work``/``depth`` are running totals folded per ``mode``; they are
    final once the span's ``with`` block has exited.  ``self_work`` /
    ``self_depth`` hold direct (unlabeled) charges, so that the span's
    total always equals the fold of its direct charges and children — the
    invariant property-tested in ``tests/pram/test_trace.py``.
    """

    __slots__ = (
        "name",
        "mode",
        "work",
        "depth",
        "self_work",
        "self_depth",
        "counters",
        "children",
    )

    def __init__(
        self,
        name: str,
        mode: str = SEQ,
        counters: Optional[Dict[str, float]] = None,
    ) -> None:
        if mode not in (SEQ, PAR):
            raise ValueError(f"unknown span mode {mode!r}")
        self.name = name
        self.mode = mode
        self.work = 0
        self.depth = 0
        self.self_work = 0
        self.self_depth = 0
        self.counters: Dict[str, float] = dict(counters or {})
        self.children: List["Span"] = []

    # -- accounting (package-internal; used by Tracer/ParallelRegion) -----

    def _charge(self, cost: Cost) -> None:
        """Sequentially fold a direct charge (seq spans only)."""
        self.self_work += cost.work
        self.self_depth += cost.depth
        self.work += cost.work
        self.depth += cost.depth

    def _attach(self, child: "Span") -> None:
        """Fold a finished child span into this span's totals."""
        self.children.append(child)
        self.work += child.work
        if self.mode == PAR:
            if child.depth > self.depth:
                self.depth = child.depth
        else:
            self.depth += child.depth

    def _count(self, counters: Dict[str, float]) -> None:
        for key, value in counters.items():
            self.counters[key] = self.counters.get(key, 0) + value

    # -- reading -----------------------------------------------------------

    @property
    def cost(self) -> Cost:
        """This span's total cost (final once the span is closed)."""
        return Cost(self.work, self.depth)

    def folded(self) -> Cost:
        """Recompute the cost from scratch by folding the tree.

        Equal to :attr:`cost` by construction; exists so the property tests
        can check the running totals against the declarative algebra.
        """
        own = Cost(self.self_work, self.self_depth)
        kids = (c.folded() for c in self.children)
        if self.mode == PAR:
            return own + Cost.par(kids)
        return own + Cost.seq(kids)

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in preorder (self included)."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def find_all(self, name: str) -> List["Span"]:
        """Every span named ``name`` in preorder (self included)."""
        out: List["Span"] = []
        stack = [self]
        while stack:
            s = stack.pop()
            if s.name == name:
                out.append(s)
            stack.extend(reversed(s.children))
        return out

    def walk(self) -> Iterator["Span"]:
        """Preorder iteration over the subtree."""
        stack = [self]
        while stack:
            s = stack.pop()
            yield s
            stack.extend(reversed(s.children))

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable tree (round-trips via :func:`span_from_dict`)."""
        out: dict = {
            "name": self.name,
            "mode": self.mode,
            "work": self.work,
            "depth": self.depth,
        }
        if self.self_work or self.self_depth:
            out["self_work"] = self.self_work
            out["self_depth"] = self.self_depth
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.mode}, work={self.work}, "
            f"depth={self.depth}, children={len(self.children)})"
        )


def span_from_dict(data: dict) -> Span:
    """Inverse of :meth:`Span.to_dict`."""
    span = Span(data["name"], data.get("mode", SEQ), data.get("counters"))
    span.work = int(data["work"])
    span.depth = int(data["depth"])
    span.self_work = int(data.get("self_work", 0))
    span.self_depth = int(data.get("self_depth", 0))
    span.children = [span_from_dict(c) for c in data.get("children", [])]
    return span


class Tracer:
    """Backward-compatible successor of the flat ``Tracker``.

    The old API (``charge``, ``step``, ``parallel``, ``cost``) behaves
    identically; on top of it, :meth:`span` opens a named sequential phase,
    ``charge(cost, label=...)`` records a labeled leaf, and :meth:`count`
    bumps counters on the current phase.  The recorded tree is :attr:`root`.
    """

    def __init__(self, name: str = "run") -> None:
        root = Span(name, SEQ)
        self._root = root
        self._stack: List[Span] = [root]
        # Sanitizer scope: set on branch tracers when a write-race
        # sanitizer is active (repro.pram.sanitize); None otherwise.
        self._mem: Optional[sanitize.BranchScope] = None

    @property
    def root(self) -> Span:
        """The root span (totals are final once all phases are closed)."""
        return self._root

    @property
    def current(self) -> Span:
        """The innermost open span."""
        return self._stack[-1]

    @property
    def cost(self) -> Cost:
        """The total cost charged so far (correct even mid-phase)."""
        work = 0
        depth = 0
        for span in self._stack:
            work += span.work
            depth += span.depth
        return Cost(work, depth)

    def charge(
        self,
        cost: Cost,
        label: Optional[str] = None,
        **counters: float,
    ) -> None:
        """Sequentially compose ``cost`` onto the current phase.

        With ``label``, the charge is recorded as a named leaf span (with
        optional counters) instead of anonymous self-cost — same total,
        richer attribution.
        """
        if label is None:
            self._stack[-1]._charge(cost)
        else:
            leaf = Span(label, SEQ, counters or None)
            leaf._charge(cost)
            self._stack[-1]._attach(leaf)

    def step(self, work: int = 1) -> None:
        """Charge one synchronous round of ``work`` operations."""
        if work > 0:
            self.charge(Cost(work, 1))

    def count(self, **counters: float) -> None:
        """Accumulate numeric counters onto the current phase."""
        self._stack[-1]._count(counters)

    def attach(self, span: Span) -> None:
        """Sequentially fold an already-recorded subtree (e.g. the trace of
        a helper that built its own :class:`Tracer`) into the current phase."""
        self._stack[-1]._attach(span)

    # -- sanitizer effect declarations (observational; charge nothing) -----

    def record_writes(self, target: Target, indices: object = None) -> None:
        """Declare that this branch wrote ``indices`` of ``target``.

        No-op unless this tracer is a ``branch()`` arm of a sanitized
        parallel region (``repro.pram.sanitize``); never charges cost.
        Raises :class:`~repro.pram.sanitize.CREWViolation` when a
        concurrent sibling branch already wrote (or, under EREW, read)
        one of the cells.
        """
        if self._mem is not None:
            self._mem.record(target, indices, write=True)

    def record_reads(self, target: Target, indices: object = None) -> None:
        """Declare that this branch read ``indices`` of ``target``.

        Tracked only under the stricter EREW mode (CREW permits concurrent
        reads); see :meth:`record_writes`.
        """
        if self._mem is not None:
            self._mem.record(target, indices, write=False)

    @contextmanager
    def span(self, name: str, **counters: float) -> Iterator[Span]:
        """Open a named sequential phase; closes (and folds into the parent)
        even when the body raises."""
        child = Span(name, SEQ, counters or None)
        self._stack.append(child)
        try:
            yield child
        finally:
            popped = self._stack.pop()
            assert popped is child, "span stack corrupted"
            self._stack[-1]._attach(child)

    @contextmanager
    def parallel(self, name: str = "parallel") -> Iterator["ParallelRegion"]:
        """Open a parallel region; its branches compose as (sum work, max
        depth).  Exception-safe: branches recorded before a raise are kept.

        When the write-race sanitizer is active (``REPRO_SANITIZE`` or
        :func:`repro.pram.sanitize.sanitized`), the region additionally
        tracks per-branch write-sets and raises
        :class:`~repro.pram.sanitize.CREWViolation` on concurrent
        conflicting accesses; accounting is unchanged either way.
        """
        mode = sanitize.active_mode()
        sentry = None
        if mode != sanitize.OFF:
            path = "/".join(s.name for s in self._stack) + "/" + name
            sentry = sanitize.RegionSentry(mode, path, self._mem)
        region = ParallelRegion(Span(name, PAR), sentry)
        try:
            yield region
        finally:
            self._stack[-1]._attach(region._span)


# Backward-compatible alias: the old flat accumulator's name.  Everything
# constructed as ``Tracker()`` now records a span tree for free.
Tracker = Tracer


class ParallelRegion:
    """Collects concurrent branches; total = (sum of work, max of depth)."""

    def __init__(
        self,
        span: Span,
        sentry: Optional[sanitize.RegionSentry] = None,
    ) -> None:
        self._span = span
        self._sentry = sentry
        self._named_arms: Optional[Dict[str, int]] = None

    @property
    def span(self) -> Span:
        return self._span

    @property
    def cost(self) -> Cost:
        return self._span.cost

    @property
    def sanitizing(self) -> bool:
        """True when this region tracks write-sets (sanitizer active).

        Lets instrumentation skip building index lists that only feed
        ``record_*`` declarations (which would be discarded anyway).
        """
        return self._sentry is not None

    def add(
        self,
        cost: Cost,
        label: str = "branch",
        **counters: float,
    ) -> None:
        """Add a branch with a precomputed cost (a labeled leaf span)."""
        leaf = Span(label, SEQ, counters or None)
        leaf._charge(cost)
        self._span._attach(leaf)

    @contextmanager
    def branch(self, name: str = "branch") -> Iterator[Tracer]:
        """Open one concurrent branch; costs charged to the yielded tracer
        join the region as one parallel arm.  Exception-safe."""
        sub = Tracer(name)
        if self._sentry is not None:
            sub._mem = sanitize.BranchScope(self._sentry, name)
        try:
            yield sub
        finally:
            self._span._attach(sub.root)

    def attach(self, span: Span) -> None:
        """Fold an already-recorded span tree into the region as one arm.

        The span must be *finished* (its totals final): attachment folds
        ``(sum work, max depth)`` once, so later mutation of ``span`` would
        not propagate.  This is how the execution backends
        (``repro.exec``) merge worker-recorded branch subtrees back into
        the parent region — equivalent to having recorded the same charges
        inside a :meth:`branch` block.
        """
        self._span._attach(span)

    # -- sanitizer effect declarations for add()-style arms ----------------

    def _arm(self, arm: Optional[str]) -> sanitize.BranchScope:
        assert self._sentry is not None
        if arm is None:
            return sanitize.BranchScope(self._sentry, "arm")
        if self._named_arms is None:
            self._named_arms = {}
        slot = self._named_arms.get(arm)
        if slot is None:
            scope = sanitize.BranchScope(self._sentry, arm)
            self._named_arms[arm] = scope.arm
            return scope
        return sanitize.BranchScope(self._sentry, arm, arm=slot)

    def record_writes(
        self,
        target: Target,
        indices: object = None,
        arm: Optional[str] = None,
    ) -> None:
        """Declare a write-set for one concurrent arm of this region.

        For ``add()``-style regions that never open ``branch()`` blocks
        (e.g. the DP layer loop).  Each call is its own arm unless ``arm``
        names one — repeat the same ``arm`` string to accumulate several
        declarations (writes and reads) onto a single conceptual branch.
        No-op when the sanitizer is inactive; charges nothing.
        """
        if self._sentry is not None:
            self._arm(arm).record(target, indices, write=True)

    def record_reads(
        self,
        target: Target,
        indices: object = None,
        arm: Optional[str] = None,
    ) -> None:
        """EREW-mode read-set declaration for one arm; see
        :meth:`record_writes`."""
        if self._sentry is not None:
            self._arm(arm).record(target, indices, write=False)


# -- rendering and aggregation --------------------------------------------


class _Row:
    __slots__ = ("name", "mode", "work", "depth", "count", "counters", "kids")

    def __init__(self, name, mode, work, depth, count, counters, kids):
        self.name = name
        self.mode = mode
        self.work = work
        self.depth = depth
        self.count = count
        self.counters = counters
        self.kids = kids


def _merge_rows(spans: List[Span], parent_mode: str) -> List[_Row]:
    """Group sibling spans by (name, mode) for compact rendering.

    Merged work always sums; merged depth sums under a sequential parent
    and takes the max under a parallel parent (the branches ran
    concurrently).
    """
    order: List[tuple] = []
    groups: Dict[tuple, List[Span]] = {}
    for s in spans:
        key = (s.name, s.mode)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(s)
    rows = []
    for name, mode in order:
        members = groups[(name, mode)]
        work = sum(m.work for m in members)
        depths = [m.depth for m in members]
        depth = max(depths) if parent_mode == PAR else sum(depths)
        counters: Dict[str, float] = {}
        self_work = 0
        self_depth = 0
        kids: List[Span] = []
        for m in members:
            for k, v in m.counters.items():
                counters[k] = counters.get(k, 0) + v
            self_work += m.self_work
            self_depth += m.self_depth
            kids.extend(m.children)
        if kids and self_work:
            own = Span("(self)", SEQ)
            own._charge(Cost(self_work, self_depth))
            kids = [own] + kids
        rows.append(
            _Row(name, mode, work, depth, len(members), counters, kids)
        )
    return rows


def _format_counters(counters: Dict[str, float]) -> str:
    if not counters:
        return ""
    parts = []
    for key in sorted(counters):
        value = counters[key]
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        parts.append(f"{key}={value:,}")
    return " ".join(parts)


def format_trace(
    span: Span,
    max_depth: Optional[int] = None,
    min_work_fraction: float = 0.0,
    merge_siblings: bool = True,
) -> str:
    """Render a span tree as an indented per-phase work/depth table.

    Parameters
    ----------
    max_depth:
        Deepest tree level to print (``None`` = unlimited).
    min_work_fraction:
        Hide subtrees whose work is below this fraction of the root's
        (elided rows are summarized, never silently dropped).
    merge_siblings:
        Collapse same-named siblings into one row with a ``xN`` multiplier
        (depth of merged parallel branches is their max).
    """
    total_work = max(span.work, 1)
    lines: List[str] = []
    name_width = 44

    def emit(row: _Row, indent: int) -> None:
        label = row.name + (f" x{row.count}" if row.count > 1 else "")
        if row.mode == PAR:
            label += " ||"
        pad = "  " * indent
        name_col = f"{pad}{label}"
        if len(name_col) > name_width:
            name_col = name_col[: name_width - 1] + "…"
        pct = 100.0 * row.work / total_work
        line = (
            f"{name_col:<{name_width}} {row.work:>14,} {row.depth:>9,}"
            f" {pct:>6.1f}%"
        )
        extra = _format_counters(row.counters)
        if extra:
            line += f"  {extra}"
        lines.append(line)
        if max_depth is not None and indent + 1 > max_depth:
            return
        kids = (
            _merge_rows(row.kids, row.mode)
            if merge_siblings
            else [
                _Row(
                    c.name, c.mode, c.work, c.depth, 1, dict(c.counters),
                    list(c.children),
                )
                for c in row.kids
            ]
        )
        hidden_work = 0
        hidden_count = 0
        for kid in kids:
            if kid.work < min_work_fraction * total_work:
                hidden_work += kid.work
                hidden_count += kid.count
                continue
            emit(kid, indent + 1)
        if hidden_count:
            pad2 = "  " * (indent + 1)
            lines.append(
                f"{pad2}({hidden_count} phase(s) below threshold, "
                f"work={hidden_work:,})"
            )

    header = (
        f"{'phase':<{name_width}} {'work':>14} {'depth':>9} {'share':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    root_rows = _merge_rows([span], SEQ)
    emit(root_rows[0], 0)
    return "\n".join(lines)


def aggregate_phases(span: Span) -> Dict[str, Dict[str, float]]:
    """Total work per phase name across the whole tree.

    Returns ``{name: {"work": summed total work of every span with that
    name (descendants included), "count": occurrences, "max_depth":
    largest single-span depth}}``.  Because a span's total includes its
    sub-phases, entries for nested phase names overlap — the dict answers
    "how much work ran under phase X", not a disjoint partition.
    """
    out: Dict[str, Dict[str, float]] = {}
    for s in span.walk():
        entry = out.setdefault(
            s.name, {"work": 0, "count": 0, "max_depth": 0}
        )
        entry["work"] += s.work
        entry["count"] += 1
        entry["max_depth"] = max(entry["max_depth"], s.depth)
    return out
