"""Simulated CREW PRAM substrate: cost algebra, tracker, parallel primitives.

See ``DESIGN.md`` ("Substitutions") for why the paper's machine model is
reproduced by exact work--depth accounting rather than OS threads.
"""

from .cost import Cost, log2_ceil
from .sanitize import CREWViolation, ShadowArray, sanitized
from .trace import (
    ParallelRegion,
    Span,
    Tracer,
    Tracker,
    aggregate_phases,
    format_trace,
    span_from_dict,
)
from .brent import brent_schedule, scalability_limit, speedup_curve
from .schedule import (
    Schedule,
    ScheduledSpan,
    schedule_speedup_curve,
    simulate_schedule,
)
from .measured import (
    MeasuredPoint,
    compare_measured,
    format_measured,
    measured_as_dicts,
)
from .export import (
    chrome_trace,
    prometheus_metrics,
    write_chrome_trace,
    write_prometheus,
)
from .primitives import (
    exclusive_prefix_sum,
    pack,
    pack_indices,
    parallel_reduce,
    pointer_jump_roots,
    prefix_sum,
)
from .list_ranking import list_rank, list_rank_optimal
from .tree_contraction import (
    Algebra,
    BinaryExpressionTree,
    evaluate_expression_tree,
)

__all__ = [
    "Cost",
    "log2_ceil",
    "CREWViolation",
    "ShadowArray",
    "sanitized",
    "Tracker",
    "Tracer",
    "Span",
    "ParallelRegion",
    "format_trace",
    "aggregate_phases",
    "span_from_dict",
    "brent_schedule",
    "speedup_curve",
    "scalability_limit",
    "Schedule",
    "ScheduledSpan",
    "simulate_schedule",
    "schedule_speedup_curve",
    "MeasuredPoint",
    "compare_measured",
    "format_measured",
    "measured_as_dicts",
    "chrome_trace",
    "prometheus_metrics",
    "write_chrome_trace",
    "write_prometheus",
    "prefix_sum",
    "exclusive_prefix_sum",
    "parallel_reduce",
    "pack",
    "pack_indices",
    "pointer_jump_roots",
    "list_rank",
    "list_rank_optimal",
    "Algebra",
    "BinaryExpressionTree",
    "evaluate_expression_tree",
]
