"""Measured-vs-predicted scaling: real wall-clock against the simulator.

The cost model charges exact (work, depth) and :func:`simulate_schedule`
turns a span tree into a predicted ``T_P`` under greedy HLF scheduling.
The ``processes`` execution backend (:mod:`repro.exec`) makes the same
piece-parallel phases run on real cores — so the two can be laid side by
side: for each worker count ``P``, the measured wall-clock speedup versus
the simulated schedule's speedup and the Brent sandwich

    max(ceil(W/P), D)  <=  T_P  <=  ceil(W/P) + D.

The shapes should agree (both saturate at ``W/D``); absolute ratios differ
because a simulated "operation" is not a machine instruction.  ``python -m
repro profile --measure`` and ``benchmarks/bench_multicore.py`` emit these
rows (EXPERIMENTS.md, BENCH_PR6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from .schedule import simulate_schedule
from .trace import Span

__all__ = [
    "MeasuredPoint",
    "compare_measured",
    "format_measured",
    "measured_as_dicts",
]


@dataclass(frozen=True)
class MeasuredPoint:
    """One processor count's measured and predicted scaling figures.

    ``measured_speedup`` is relative to the smallest measured worker
    count (pass a ``P = 1`` measurement to anchor it at true serial).
    Predicted figures come from the exact HLF simulation of the recorded
    span tree; ``brent_lower``/``brent_upper`` are the sandwich bounds
    the simulated makespan always respects.
    """

    processors: int
    wall_s: float
    measured_speedup: float
    predicted_makespan: int
    predicted_speedup: float
    brent_lower: int
    brent_upper: int

    def as_dict(self) -> dict:
        return {
            "processors": self.processors,
            "wall_s": self.wall_s,
            "measured_speedup": self.measured_speedup,
            "predicted_makespan": self.predicted_makespan,
            "predicted_speedup": self.predicted_speedup,
            "brent_lower": self.brent_lower,
            "brent_upper": self.brent_upper,
        }


def compare_measured(
    root: Span, measurements: Mapping[int, float]
) -> List[MeasuredPoint]:
    """Join measured wall-clock times with the simulated schedule.

    ``measurements`` maps worker count -> wall seconds for the *same*
    query whose charged trace is ``root`` (results and traces are
    backend-independent, so any backend's trace serves).  Rows come back
    sorted by processor count; speedups are relative to the smallest
    measured count.
    """
    if not measurements:
        return []
    counts = sorted(measurements)
    base_wall = float(measurements[counts[0]])
    work, depth = root.work, root.depth
    points: List[MeasuredPoint] = []
    for p in counts:
        wall = float(measurements[p])
        schedule = simulate_schedule(root, p)
        points.append(
            MeasuredPoint(
                processors=p,
                wall_s=wall,
                measured_speedup=(base_wall / wall) if wall else 1.0,
                predicted_makespan=schedule.makespan,
                predicted_speedup=schedule.speedup,
                brent_lower=max(math.ceil(work / p), depth),
                brent_upper=math.ceil(work / p) + depth,
            )
        )
    return points


def format_measured(
    points: List[MeasuredPoint], title: Optional[str] = None
) -> str:
    """Render measured-vs-predicted rows as an aligned text table."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"{'P':>4}  {'wall[s]':>10}  {'meas.SU':>8}  "
        f"{'sim T_P':>12}  {'sim SU':>8}  {'Brent lo':>12}  {'Brent hi':>12}"
    )
    for pt in points:
        lines.append(
            f"{pt.processors:>4}  {pt.wall_s:>10.4f}  "
            f"{pt.measured_speedup:>8.2f}  {pt.predicted_makespan:>12}  "
            f"{pt.predicted_speedup:>8.2f}  {pt.brent_lower:>12}  "
            f"{pt.brent_upper:>12}"
        )
    return "\n".join(lines)


def measured_as_dicts(points: List[MeasuredPoint]) -> List[Dict]:
    """JSON-ready rows (the BENCH_PR6 artifact schema)."""
    return [pt.as_dict() for pt in points]
