"""Parallel expression-tree evaluation by tree contraction (rake/SHUNT).

Lemma A.1 of the paper: if a family of O(1)-computable unary functions is
closed under composition and under projection with respect to the operations
of an expression tree, the tree can be evaluated in ``O(n)`` work and
``O(log n)`` depth.  This module implements the classic Miller--Reif SHUNT
contraction for *full binary* expression trees, generic over such a function
family (an :class:`Algebra`), and computes the value of **every** node via the
standard contract-then-reexpand scheme.

Cost model: leaves are numbered once (Euler-tour charge, ``O(n)`` work
``O(log n)`` depth) and every contraction round shunts roughly half of the
remaining leaves, so the executed rounds realize the ``O(n)`` work /
``O(log n)`` depth bound, which we charge per round.  Execution applies the
shunts of a round sequentially (each SHUNT is a semantics-preserving local
rewrite, so any order yields the same values); the charged cost is that of
the concurrent PRAM schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, List, Optional, Tuple, TypeVar

import numpy as np

from .cost import Cost
from .trace import Tracer

from ..analysis.contracts import cost_contract

__all__ = ["Algebra", "BinaryExpressionTree", "evaluate_expression_tree"]

F = TypeVar("F")  # unary-function representation
NIL = -1


@dataclass(frozen=True)
class Algebra(Generic[F]):
    """A unary-function family satisfying the hypotheses of Lemma A.1.

    Attributes
    ----------
    identity:
        The identity function of the family.
    compose:
        ``compose(outer, inner)`` = the family member ``outer ∘ inner``.
    apply:
        Evaluate a family member at an integer.
    project:
        ``project(a)`` = the unary function ``x -> op(a, x)`` as a family
        member (closure under projection).
    op:
        The binary node operation of the expression tree.
    """

    identity: F
    compose: Callable[[F, F], F]
    apply: Callable[[F, int], int]
    project: Callable[[int], F]
    op: Callable[[int, int], int]


@dataclass
class BinaryExpressionTree:
    """A full binary expression tree over ``n`` nodes.

    ``left[v] == right[v] == -1`` marks a leaf; internal nodes have both
    children.  ``leaf_value[v]`` is consulted only at leaves.
    """

    left: np.ndarray
    right: np.ndarray
    root: int
    leaf_value: np.ndarray

    def __post_init__(self) -> None:
        self.left = np.asarray(self.left, dtype=np.int64)
        self.right = np.asarray(self.right, dtype=np.int64)
        self.leaf_value = np.asarray(self.leaf_value, dtype=np.int64)
        n = self.n
        if not (0 <= self.root < n):
            raise ValueError("root out of range")
        leaf = (self.left == NIL) & (self.right == NIL)
        internal = (self.left != NIL) & (self.right != NIL)
        if not np.all(leaf | internal):
            raise ValueError("tree must be full binary (0 or 2 children)")

    @property
    def n(self) -> int:
        return int(self.left.shape[0])

    def parent_array(self) -> np.ndarray:
        parent = np.full(self.n, NIL, dtype=np.int64)
        for v in range(self.n):
            for c in (int(self.left[v]), int(self.right[v])):
                if c != NIL:
                    parent[c] = v
        return parent

    def leaves_in_order(self) -> List[int]:
        """Leaves left-to-right (iterative DFS from the root)."""
        order: List[int] = []
        stack = [self.root]
        while stack:
            v = stack.pop()
            if self.left[v] == NIL:
                order.append(v)
            else:
                stack.append(int(self.right[v]))
                stack.append(int(self.left[v]))
        return order


@cost_contract(work="O(n)", depth="O(log n)")
def evaluate_expression_tree(
    tree: BinaryExpressionTree,
    algebra: Algebra[F],
    tracer: Optional[Tracer] = None,
    label: str = "tree-contraction",
) -> Tuple[np.ndarray, Cost]:
    """Evaluate every node of ``tree`` under ``algebra``.

    Returns ``(values, cost)`` where ``values[v]`` is the expression value of
    the subtree rooted at ``v``.
    """
    n = tree.n
    values = np.full(n, NIL, dtype=np.int64)
    if n == 1:
        values[tree.root] = int(tree.leaf_value[tree.root])
        if tracer is not None:
            tracer.charge(Cost.step(1), label=label, nodes=1)
        return values, Cost.step(1)

    parent = tree.parent_array()
    left = tree.left.copy()
    right = tree.right.copy()
    funcs: List[F] = [algebra.identity] * n

    leaves = tree.leaves_in_order()
    for u in leaves:
        values[u] = int(tree.leaf_value[u])
    cost = Cost(2 * n, max(1, (n - 1).bit_length()))  # Euler-tour numbering

    # Shunt events for reexpansion: (removed internal p, contribution a from
    # the raked leaf, surviving sibling s, s's function before the shunt).
    events: List[Tuple[int, int, int, F]] = []

    alive = len(leaves)
    while alive > 1:
        # One contraction round: shunt leaves at odd positions, left children
        # first, then right children (two PRAM subrounds).
        for want_left in (True, False):
            snapshot = list(leaves)
            for idx in range(1, len(snapshot), 2):
                u = snapshot[idx]
                if u == NIL:
                    continue
                p = int(parent[u])
                if p == NIL:
                    continue  # u became the root
                is_left = int(left[p]) == u
                if is_left != want_left:
                    continue
                s = int(right[p]) if is_left else int(left[p])
                # Contribution of u's (fully evaluated) subtree through its
                # accumulated function.
                a = algebra.apply(funcs[u], int(values[u]))
                events.append((p, a, s, funcs[s]))
                funcs[s] = algebra.compose(
                    algebra.compose(funcs[p], algebra.project(a)), funcs[s]
                )
                g = int(parent[p])
                parent[s] = g
                if g != NIL:
                    if int(left[g]) == p:
                        left[g] = s
                    else:
                        right[g] = s
                parent[u] = NIL
                snapshot[idx] = NIL
                leaves[idx] = NIL
                alive -= 1
        cost = cost + Cost.step(max(1, 4 * alive))
        leaves = [u for u in leaves if u != NIL]

    # A single leaf remains; its subtree value is already in ``values``.
    # Reexpansion: replay shunts in reverse, filling removed internal nodes.
    for p, a, s, old_func_s in reversed(events):
        values[p] = algebra.op(a, algebra.apply(old_func_s, int(values[s])))
    # Reexpansion mirrors the contraction schedule round for round.
    expand_work = max(1, 2 * len(events))
    cost = cost + Cost(expand_work, min(max(1, cost.depth), expand_work))

    if tracer is not None:
        tracer.charge(cost, label=label, nodes=n)
    return values, cost
