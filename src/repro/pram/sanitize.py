"""Dynamic CREW write-race sanitizer for the simulated PRAM.

The cost algebra charges ``parallel()`` regions as concurrent — sum of
work, max of depth — which is only sound on a CREW PRAM if the branches
never write the same memory cell (Gianinazzi & Hoefler state their bounds
on a CREW machine: concurrent reads allowed, writes exclusive).  The
simulation executes branches sequentially, so an overlapping write does not
crash; it silently mis-prices the region.  This module makes that invariant
*checked*: in sanitized runs every parallel region tracks per-branch
write-sets on shadow memory and raises :class:`CREWViolation` the moment
two concurrent branches write the same cell.

Activation
----------
The sanitizer is off by default and purely observational when on — it
charges nothing and records nothing on the span tree, so traces and cost
totals are byte-identical either way.  Enable it with the environment
variable ``REPRO_SANITIZE``::

    REPRO_SANITIZE=crew python -m pytest -q        # write/write races
    REPRO_SANITIZE=erew python -m repro decide ... # + read/write conflicts

or programmatically (overrides the environment)::

    from repro.pram import sanitize
    with sanitize.sanitized("crew"):
        decide_subgraph_isomorphism(...)

Modes: ``"crew"`` checks write-write conflicts between concurrent branches
(the paper's model); ``"erew"`` additionally flags a cell written by one
branch and read by a concurrent sibling (exclusive-read machines, e.g. when
comparing against EREW bounds from the literature).  Concurrent reads alone
never conflict in CREW mode.

What is tracked
---------------
Branches declare their memory effects through
:meth:`repro.pram.trace.Tracer.record_writes` /
:meth:`~repro.pram.trace.Tracer.record_reads` (and the region-level
equivalents for ``ParallelRegion.add``-style arms).  Targets are either

* real :class:`numpy.ndarray` objects — cells are resolved to *absolute
  byte addresses*, so overlapping views of one buffer conflict correctly
  no matter how they are sliced; or
* :class:`ShadowArray` handles — named conceptual cell ranges for outputs
  that exist per-branch in the simulation (e.g. "the result slot of cover
  piece i") but would be one shared output array on a real PRAM.

The PRAM primitives (:mod:`repro.pram.primitives`) auto-record reads of
their inputs, and the covers / DP layers / drivers declare the per-branch
writes of their real parallel structure, so sanitized runs check the
genuine disjointness arguments of the paper (cluster vertex-sets partition,
layer paths are node-disjoint, piece result slots are distinct).

Caveat: ndarray cells are identified by live byte address; an array freed
and reallocated *within one region* could alias a sibling's addresses.
Branch-local scratch should therefore not be recorded (it is private by
construction) — record shared inputs and outputs only.
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "OFF",
    "CREW",
    "EREW",
    "CREWViolation",
    "ShadowArray",
    "WriteObservation",
    "active_mode",
    "observing_writes",
    "sanitized",
]

OFF = "off"
CREW = "crew"
EREW = "erew"

_ENV_VAR = "REPRO_SANITIZE"
_ENV_OFF = frozenset({"", "0", "off", "none", "false"})
_ENV_CREW = frozenset({"crew", "1", "on", "true"})

_override: Optional[str] = None


def active_mode() -> str:
    """The sanitizer mode in effect: ``"off"``, ``"crew"`` or ``"erew"``.

    A :func:`sanitized` override wins; otherwise the ``REPRO_SANITIZE``
    environment variable decides.  Unknown values raise ``ValueError``
    rather than silently disabling the check.
    """
    if _override is not None:
        return _override
    raw = os.environ.get(_ENV_VAR, "").strip().lower()
    if raw in _ENV_OFF:
        return OFF
    if raw in _ENV_CREW:
        return CREW
    if raw == EREW:
        return EREW
    raise ValueError(
        f"{_ENV_VAR}={raw!r} is not a sanitizer mode "
        f"(expected off/crew/erew)"
    )


@contextmanager
def sanitized(mode: str = CREW) -> Iterator[None]:
    """Force the sanitizer ``mode`` for the duration of the block."""
    if mode not in (OFF, CREW, EREW):
        raise ValueError(f"unknown sanitizer mode {mode!r}")
    global _override
    previous = _override
    _override = mode
    try:
        yield
    finally:
        _override = previous


class ShadowArray:
    """A named conceptual cell range ``0..size-1`` for effect declarations.

    Use for per-branch outputs that the single-threaded simulation stores
    in branch-local objects (piece lists, table slots) but that a real
    PRAM execution would write into one shared output array.  Creation is
    allocation-free; the handle only gives the cells an identity and a
    label for violation messages.
    """

    __slots__ = ("label", "size")

    def __init__(self, label: str, size: int) -> None:
        if size < 0:
            raise ValueError("shadow array size must be non-negative")
        self.label = label
        self.size = size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShadowArray({self.label!r}, size={self.size})"


Target = Union[np.ndarray, ShadowArray]


class CREWViolation(RuntimeError):
    """Two concurrent branches touched the same memory cell.

    Attributes name the conflicting cell and *both* branch span paths, so
    the offending ``parallel()`` region can be located in the trace.
    """

    def __init__(
        self,
        kind: str,
        mode: str,
        label: str,
        cell: int,
        first_path: str,
        second_path: str,
    ) -> None:
        self.kind = kind
        self.mode = mode
        self.label = label
        self.cell = cell
        self.first_path = first_path
        self.second_path = second_path
        super().__init__(
            f"{mode.upper()} {kind} conflict on {label!r} cell {cell}: "
            f"concurrent branches {first_path!r} and {second_path!r}"
        )


def _cells(target: Target, indices: object) -> Tuple[np.ndarray, np.ndarray]:
    """Resolve ``indices`` of ``target`` to canonical int64 cell ids.

    For :class:`ShadowArray` targets the ids are the indices themselves;
    for ndarrays they are absolute byte addresses of the elements (views
    into one buffer therefore resolve to the same cells).  ``indices`` may
    be ``None`` (every cell), a boolean mask over the flattened target, or
    an array/sequence/scalar of flat indices (negative indices count from
    the end, as in NumPy).

    Returns ``(cells, display)``: sorted unique cell ids plus, aligned
    with them, the flat index each cell has *in this target* — used to
    report a human-readable cell in violation messages.
    """
    if isinstance(target, ShadowArray):
        size = target.size
    elif isinstance(target, np.ndarray):
        size = int(target.size)
    else:
        raise TypeError(
            f"sanitizer target must be an ndarray or ShadowArray, "
            f"got {type(target).__name__}"
        )
    if indices is None:
        flat = np.arange(size, dtype=np.int64)
    else:
        idx = np.asarray(indices)
        if idx.dtype == np.bool_:
            if idx.size != size:
                raise ValueError("boolean mask does not match target size")
            flat = np.flatnonzero(idx).astype(np.int64)
        else:
            flat = idx.astype(np.int64).reshape(-1)
            flat = np.where(flat < 0, flat + size, flat)
            if flat.size and (
                int(flat.min()) < 0 or int(flat.max()) >= size
            ):
                raise IndexError(
                    f"cell index out of range for {_label(target)!r} "
                    f"(size {size})"
                )
    if flat.size == 0:
        return flat, flat
    if isinstance(target, ShadowArray):
        unique = np.unique(flat)
        return unique, unique
    base_ptr = int(target.__array_interface__["data"][0])
    coords = np.unravel_index(flat, target.shape) if target.ndim else ()
    offsets = np.zeros(flat.size, dtype=np.int64)
    for coord, stride in zip(coords, target.strides):
        offsets += coord.astype(np.int64) * stride
    cells, first = np.unique(base_ptr + offsets, return_index=True)
    return cells, flat[first]


def _label(target: Target) -> str:
    if isinstance(target, ShadowArray):
        return target.label
    return f"ndarray<{getattr(target, 'dtype', '?')}>"


@dataclass(frozen=True)
class WriteObservation:
    """One dynamically-observed write declaration, with its call site.

    ``path``/``function``/``line`` identify the *declaring* frame — the
    first caller outside ``repro.pram`` — so observations can be joined
    against the static CREW pass's per-function write sets (the
    static/dynamic cross-validation test in ``tests/analysis``).
    """

    path: str
    function: str
    line: int
    label: str
    shadow: bool


_observer: Optional[List[WriteObservation]] = None


@contextmanager
def observing_writes() -> Iterator[List[WriteObservation]]:
    """Collect every sanitizer write declaration made inside the block.

    Purely observational (requires an active sanitizer mode to see any
    traffic, since declarations are skipped entirely when the sanitizer
    is off).  Nested use restores the previous collector on exit.
    """
    global _observer
    previous = _observer
    collected: List[WriteObservation] = []
    _observer = collected
    try:
        yield collected
    finally:
        _observer = previous


_PRAM_DIR = os.path.dirname(os.path.abspath(__file__))


def _observe_write(target: Target) -> None:
    if _observer is None:
        return
    frame = sys._getframe(1)
    path, function, line = "<unknown>", "<unknown>", 0
    while frame is not None:
        filename = frame.f_code.co_filename
        if os.path.dirname(os.path.abspath(filename)) != _PRAM_DIR:
            path, function, line = (
                filename, frame.f_code.co_name, frame.f_lineno
            )
            break
        frame = frame.f_back
    _observer.append(
        WriteObservation(
            path=path,
            function=function,
            line=line,
            label=_label(target),
            shadow=isinstance(target, ShadowArray),
        )
    )


class _EffectStore:
    """Sorted (cells, owner) sets per target key, with conflict lookup."""

    __slots__ = ("_cells", "_owners")

    def __init__(self) -> None:
        self._cells: Dict[object, np.ndarray] = {}
        self._owners: Dict[object, np.ndarray] = {}

    def conflict(
        self, key: object, arm: int, cells: np.ndarray
    ) -> Optional[Tuple[int, int]]:
        """First (cell, other_arm) of ``cells`` held by an arm != ``arm``."""
        have = self._cells.get(key)
        if have is None or have.size == 0 or cells.size == 0:
            return None
        pos = np.searchsorted(have, cells)
        pos_ok = pos < have.size
        hit = np.zeros(cells.size, dtype=bool)
        hit[pos_ok] = have[pos[pos_ok]] == cells[pos_ok]
        if not hit.any():
            return None
        owners = self._owners[key]
        foreign = hit.copy()
        foreign[hit] = owners[pos[hit]] != arm
        if not foreign.any():
            return None
        first = int(np.flatnonzero(foreign)[0])
        return int(cells[first]), int(owners[pos[first]])

    def add(self, key: object, arm: int, cells: np.ndarray) -> None:
        if cells.size == 0:
            return
        have = self._cells.get(key)
        owners = np.full(cells.size, arm, dtype=np.int64)
        if have is None:
            self._cells[key] = cells
            self._owners[key] = owners
            return
        merged = np.concatenate([have, cells])
        merged_owners = np.concatenate([self._owners[key], owners])
        order = np.argsort(merged, kind="stable")
        self._cells[key] = merged[order]
        self._owners[key] = merged_owners[order]


class RegionSentry:
    """Per-``parallel()`` shadow state: arm registry + effect stores.

    Created by :meth:`repro.pram.trace.Tracer.parallel` when the sanitizer
    is active.  Every concurrent arm of the region (a ``branch()`` block,
    one ``record_writes`` call, or a named ``arm=``) registers here;
    conflicts are raised at the exact ``record_*`` call that completes
    them.  A ``parent`` scope chains nested regions: effects of an inner
    region also belong to the enclosing branch, so they propagate up and
    are checked against the outer region's sibling arms too.
    """

    __slots__ = ("mode", "path", "parent", "_writes", "_reads", "_arms")

    def __init__(
        self, mode: str, path: str, parent: Optional["BranchScope"]
    ) -> None:
        self.mode = mode
        self.path = path
        self.parent = parent
        self._writes = _EffectStore()
        self._reads = _EffectStore()
        self._arms: List[str] = []

    def new_arm(self, name: str) -> int:
        self._arms.append(f"{self.path}/{name}#{len(self._arms)}")
        return len(self._arms) - 1

    def arm_path(self, arm: int) -> str:
        return self._arms[arm]

    def record(
        self,
        arm: int,
        target: Target,
        indices: object,
        write: bool,
    ) -> None:
        if write:
            _observe_write(target)
        if not write and self.mode != EREW:
            return  # CREW: concurrent reads are always legal; skip resolving.
        cells, display = _cells(target, indices)
        if cells.size == 0:
            return
        key: object = (
            target if isinstance(target, ShadowArray) else "mem"
        )
        label = _label(target)

        def _raise(kind: str, clash: Tuple[int, int]) -> None:
            shown = int(
                display[int(np.searchsorted(cells, clash[0]))]
            )
            raise CREWViolation(
                kind, self.mode, label, shown,
                self.arm_path(clash[1]), self.arm_path(arm),
            )

        if write:
            clash = self._writes.conflict(key, arm, cells)
            if clash is not None:
                _raise("write/write", clash)
            if self.mode == EREW:
                clash = self._reads.conflict(key, arm, cells)
                if clash is not None:
                    _raise("read/write", clash)
            self._writes.add(key, arm, cells)
        else:
            # Only reached in EREW mode (early return above): exclusive
            # read means both writers *and* other readers conflict.
            clash = self._writes.conflict(key, arm, cells)
            if clash is not None:
                _raise("read/write", clash)
            clash = self._reads.conflict(key, arm, cells)
            if clash is not None:
                _raise("read/read", clash)
            self._reads.add(key, arm, cells)
        # The enclosing branch (if any) performed this access too.
        if self.parent is not None:
            self.parent.record(target, indices, write)


class BranchScope:
    """One concurrent arm's handle onto its region's sentry.

    Pass ``arm`` to rebind an already-registered arm id (named arms of
    ``ParallelRegion.record_writes``); otherwise a fresh arm is created.
    """

    __slots__ = ("sentry", "arm")

    def __init__(
        self,
        sentry: RegionSentry,
        name: str = "branch",
        arm: Optional[int] = None,
    ) -> None:
        self.sentry = sentry
        self.arm = sentry.new_arm(name) if arm is None else arm

    @property
    def path(self) -> str:
        return self.sentry.arm_path(self.arm)

    def record(self, target: Target, indices: object, write: bool) -> None:
        self.sentry.record(self.arm, target, indices, write)
