"""Parallel list ranking (Wyllie's pointer-jumping algorithm).

Appendix A of the paper orders the per-layer paths of the tree→path
decomposition with list ranking.  Wyllie's algorithm performs ``O(log n)``
pointer-doubling rounds with ``O(n)`` work each (``O(n log n)`` work total,
``O(log n)`` depth) — that is the bound we charge, and the rounds we actually
execute.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .cost import Cost
from .trace import Tracer

from ..analysis.contracts import cost_contract

__all__ = ["list_rank", "list_rank_optimal"]

NIL = -1


@cost_contract(work="O(n log n)", depth="O(log n)")
def list_rank(
    successor: np.ndarray,
    tracer: Optional[Tracer] = None,
    label: str = "list-rank",
) -> Tuple[np.ndarray, Cost]:
    """Rank every element of a (collection of) linked list(s).

    Parameters
    ----------
    successor:
        ``successor[i]`` is the next element after ``i`` or ``-1`` at a list
        tail.  The structure may contain many disjoint lists (a forest of
        chains); each is ranked independently.

    Returns
    -------
    ranks, cost:
        ``ranks[i]`` = number of hops from ``i`` to its list tail (tails get
        rank 0), plus the PRAM cost of Wyllie's algorithm.
    """
    succ = np.asarray(successor, dtype=np.int64).copy()
    n = int(succ.shape[0])
    if n == 0:
        return succ.copy(), Cost.zero()
    if succ.max() >= n or succ.min() < NIL:
        raise ValueError("successor pointers out of range")
    if np.any(succ == np.arange(n)):
        raise ValueError("successor may not contain self-loops")

    ranks = np.where(succ == NIL, 0, 1).astype(np.int64)
    cost = Cost.step(n)  # initialization round
    rounds = 0
    live = succ != NIL
    while live.any():
        # rank[i] += rank[succ[i]]; succ[i] = succ[succ[i]]  (for live i)
        idx = np.flatnonzero(live)
        nxt = succ[idx]
        ranks[idx] += ranks[nxt]
        succ[idx] = succ[nxt]
        cost = cost + Cost.step(3 * n)
        rounds += 1
        live = succ != NIL
    if tracer is not None:
        tracer.charge(cost, label=label, items=n, rounds=rounds)
    return ranks, cost


@cost_contract(work="O(n)", depth="O(log n)")
def list_rank_optimal(
    successor: np.ndarray,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    label: str = "list-rank-optimal",
) -> Tuple[np.ndarray, Cost]:
    """Work-optimal list ranking by random splitter contraction.

    The Anderson--Miller scheme: sample an independent set of "splitters"
    (a random coin per element; an element contracts into its successor
    when it flips heads and the successor flips tails), splice contracted
    elements out while accumulating their weights, recurse on the
    geometrically-shrinking remainder, then reinsert in reverse.  Expected
    O(n) work and O(log n) depth — removing Wyllie's log-factor, matching
    the bound the paper's Lemma 3.2 machinery assumes.

    Returns the same ranks as :func:`list_rank`.
    """
    succ = np.asarray(successor, dtype=np.int64).copy()
    n = int(succ.shape[0])
    if n == 0:
        return succ.copy(), Cost.zero()
    if succ.max() >= n or succ.min() < NIL:
        raise ValueError("successor pointers out of range")
    if np.any(succ == np.arange(n)):
        raise ValueError("successor may not contain self-loops")

    rng = np.random.default_rng(seed)
    weight = np.where(succ == NIL, 0, 1).astype(np.int64)
    cost = Cost.step(n)
    # Each splice event: (removed element, its predecessor at the time).
    events = []
    alive = np.ones(n, dtype=bool)
    alive_count = n

    pred = np.full(n, NIL, dtype=np.int64)
    valid = succ != NIL
    pred[succ[valid]] = np.flatnonzero(valid)

    # Contract until no alive element has a successor left (tails of the
    # chains never contract themselves; everything else eventually does).
    while bool(np.any(alive & (succ != NIL))):
        heads = rng.random(n) < 0.5
        # Contract element i when i flips heads, succ(i) exists, and the
        # successor flips tails (guaranteeing an independent set).
        idx = np.flatnonzero(alive & heads & (succ != NIL))
        idx = idx[~heads[succ[idx]]]
        if idx.size == 0:
            cost = cost + Cost.step(alive_count)
            continue
        for i in idx:
            i = int(i)
            s = int(succ[i])
            p = int(pred[i])
            events.append((i, s))
            # Splice i out: predecessor inherits i's link and weight.
            if p != NIL:
                succ[p] = s
                weight[p] += weight[i]
            pred[s] = p
            alive[i] = False
        alive_count -= int(idx.size)
        cost = cost + Cost.step(3 * alive_count + 3 * int(idx.size))

    # Base case: the survivors are exactly the chain tails (rank 0).
    ranks = np.zeros(n, dtype=np.int64)
    cost = cost + Cost.step(max(1, int(alive.sum())))

    # Reinsertion in reverse order: rank(i) = weight(i) + rank(succ_orig).
    for i, s in reversed(events):
        ranks[i] = int(weight[i]) + int(ranks[s])
    cost = cost + Cost(max(1, 2 * len(events)),
                       min(max(1, 2 * len(events)), max(1, cost.depth)))
    if tracer is not None:
        tracer.charge(cost, label=label, items=n)
    return ranks, cost
