"""Work--depth cost algebra for the simulated CREW PRAM.

The paper (Section 1.1, *Model of Computation*) states its bounds in the
work--depth model: *work* is the total number of elementary operations
performed by all processors, *depth* is the length of the critical path.
Because the bounds are properties of the algorithm rather than of the host
machine, we reproduce them by *accounting*: every parallel algorithm in this
library executes its computation (single-threaded) while composing a
:class:`Cost` that records exactly the work it performed and the depth of the
parallel structure it prescribes.

Composition laws
----------------
Sequential composition adds both coordinates::

    (w1, d1) ; (w2, d2)  =  (w1 + w2, d1 + d2)

Parallel composition adds work and takes the maximum depth::

    (w1, d1) || (w2, d2)  =  (w1 + w2, max(d1, d2))

Both operations are associative with identity ``Cost.zero()``; parallel
composition is additionally commutative.  These laws are property-tested in
``tests/pram/test_cost.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

__all__ = ["Cost", "log2_ceil"]


def log2_ceil(n: int) -> int:
    """Return ``ceil(log2(n))`` for ``n >= 1`` (0 for ``n <= 1``).

    Used throughout for the depth of tree-shaped reductions over ``n`` items.
    """
    if n <= 1:
        return 0
    return (n - 1).bit_length()


@dataclass(frozen=True, slots=True)
class Cost:
    """An immutable (work, depth) pair with PRAM composition operators.

    Attributes
    ----------
    work:
        Total number of elementary operations executed.
    depth:
        Length of the critical path (number of synchronous PRAM rounds).

    Invariants: ``0 <= depth <= work`` unless both are zero.  (A round that
    exists must perform at least one operation.)  The invariant is checked at
    construction time; algorithms that would violate it have a bug in their
    accounting.
    """

    work: int
    depth: int

    def __post_init__(self) -> None:
        if self.work < 0 or self.depth < 0:
            raise ValueError(f"negative cost: {self!r}")
        if self.depth > self.work:
            raise ValueError(f"depth exceeds work: {self!r}")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def zero() -> "Cost":
        """The identity of both compositions."""
        return _ZERO

    @staticmethod
    def step(work: int = 1) -> "Cost":
        """A single synchronous round performing ``work`` operations.

        ``Cost.step(0)`` is the zero cost (an empty round takes no time).
        """
        if work == 0:
            return _ZERO
        return Cost(work, 1)

    @staticmethod
    def sequential_loop(iterations: int, work_per_iteration: int = 1) -> "Cost":
        """A purely sequential loop: work and depth both scale."""
        total = iterations * work_per_iteration
        return Cost(total, total)

    @staticmethod
    def reduction(n: int, op_work: int = 1) -> "Cost":
        """Cost of a balanced binary reduction over ``n`` items."""
        if n <= 1:
            return Cost.step(op_work if n == 1 else 0)
        return Cost((n - 1) * op_work, log2_ceil(n))

    @staticmethod
    def scan(n: int, op_work: int = 1) -> "Cost":
        """Cost of a Blelloch-style exclusive/inclusive prefix scan.

        Up-sweep plus down-sweep: ``2n`` applications of ``op``, depth
        ``2 ceil(log2 n)``.
        """
        if n <= 1:
            return Cost.step(op_work if n == 1 else 0)
        return Cost(2 * n * op_work, 2 * log2_ceil(n))

    # -- composition -------------------------------------------------------

    def __add__(self, other: "Cost") -> "Cost":
        """Sequential composition (``;`` in the module docstring)."""
        if not isinstance(other, Cost):
            return NotImplemented
        return Cost(self.work + other.work, self.depth + other.depth)

    def __or__(self, other: "Cost") -> "Cost":
        """Parallel composition (``||`` in the module docstring)."""
        if not isinstance(other, Cost):
            return NotImplemented
        return Cost(self.work + other.work, max(self.depth, other.depth))

    @staticmethod
    def par(costs: Iterable["Cost"]) -> "Cost":
        """Parallel composition of an iterable of costs."""
        work = 0
        depth = 0
        for c in costs:
            work += c.work
            if c.depth > depth:
                depth = c.depth
        return Cost(work, depth)

    @staticmethod
    def seq(costs: Iterable["Cost"]) -> "Cost":
        """Sequential composition of an iterable of costs."""
        work = 0
        depth = 0
        for c in costs:
            work += c.work
            depth += c.depth
        return Cost(work, depth)

    def repeated(self, times: int) -> "Cost":
        """``times`` sequential repetitions of this cost."""
        if times < 0:
            raise ValueError("times must be non-negative")
        return Cost(self.work * times, self.depth * times)

    # -- scheduling --------------------------------------------------------

    def brent_time(self, processors: int) -> int:
        """Simulated execution time on ``processors`` CREW PRAM processors.

        Brent's scheduling principle (Section 1.1): an algorithm with work
        ``W`` and depth ``D`` runs in ``O(W/P + D)`` time on ``P``
        processors.  We return the standard concrete bound
        ``ceil(W / P) + D``.
        """
        if processors < 1:
            raise ValueError("need at least one processor")
        return math.ceil(self.work / processors) + self.depth

    def speedup(self, processors: int) -> float:
        """Speedup of ``processors``-way execution over 1 processor."""
        t1 = self.brent_time(1)
        tp = self.brent_time(processors)
        return t1 / tp if tp else 1.0

    def parallelism(self) -> float:
        """The algorithm's available parallelism ``W / D``."""
        return self.work / self.depth if self.depth else float(self.work)


_ZERO = Cost(0, 0)
