"""Telemetry exporters: Chrome trace-event JSON and Prometheus text format.

Two observability surfaces over the tracing/scheduling substrate:

:func:`chrome_trace`
    Serialize a :class:`~repro.pram.schedule.Schedule` (the simulated
    P-processor timeline) or a raw :class:`~repro.pram.trace.Span` tree to
    the Chrome trace-event JSON format — loadable in ``chrome://tracing``
    and Perfetto.  Schedules lay leaf charges out on greedily assigned
    lanes over the simulated step clock; raw span trees use the *depth*
    clock (each span occupies ``depth`` virtual steps; parallel branches
    get their own lanes).

:func:`prometheus_metrics`
    Flatten a trace, a session's :class:`~repro.engine.session.CacheStats`
    and any number of schedules into Prometheus text-format gauges:
    per-phase work/depth, summed trace counters (including
    ``packed_overflow_fallbacks`` and the ``*-cached`` leaves' saved-cost
    counters), per-kind cache hit/miss/eviction counts, and per-processor
    makespan/utilization/speedup.

Both formats are plain dict/str producers plus tiny ``write_*`` wrappers,
so the CLI (``python -m repro profile``) and tests share one code path.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List, Optional, Tuple, Union

from .schedule import Schedule, ScheduledSpan
from .trace import PAR, Span, aggregate_phases

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "MetricsWriter",
    "prometheus_metrics",
    "write_prometheus",
]


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------


def _lane_assignment(spans: Iterable[ScheduledSpan]) -> List[Tuple[ScheduledSpan, int]]:
    """Greedy interval coloring: first lane whose last event has ended."""
    lanes_free_at: List[int] = []
    out: List[Tuple[ScheduledSpan, int]] = []
    for span in sorted(spans, key=lambda s: (s.start, s.finish)):
        for lane, free_at in enumerate(lanes_free_at):
            if free_at <= span.start:
                lanes_free_at[lane] = span.finish
                out.append((span, lane))
                break
        else:
            lanes_free_at.append(span.finish)
            out.append((span, len(lanes_free_at) - 1))
    return out


def _schedule_events(schedule: Schedule) -> List[dict]:
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {
                "name": f"repro schedule (P={schedule.processors}, "
                f"T={schedule.makespan})"
            },
        }
    ]
    assigned = _lane_assignment(schedule.spans)
    critical = {(s.path, s.start, s.finish) for s in schedule.critical_path}
    lanes = {lane for _, lane in assigned}
    for lane in sorted(lanes):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": lane,
                "args": {"name": f"lane {lane}"},
            }
        )
    for span, lane in assigned:
        events.append(
            {
                "name": span.name,
                "cat": "critical-path"
                if (span.path, span.start, span.finish) in critical
                else "phase",
                "ph": "X",
                "ts": span.start,
                "dur": span.duration,
                "pid": 0,
                "tid": lane,
                "args": {
                    "path": span.path,
                    "work": span.work,
                    "depth": span.depth,
                    "mean_processors": round(span.processors, 3),
                },
            }
        )
    return events


def _span_events(root: Span) -> List[dict]:
    """Lay a raw span tree out on the depth clock (no scheduler): every
    span covers ``depth`` virtual steps; concurrent branches of a parallel
    region open fresh lanes."""
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": f"repro trace ({root.name}, depth clock)"},
        }
    ]
    next_lane = 1

    def emit(span: Span, t0: int, lane: int) -> None:
        nonlocal next_lane
        args: dict = {"work": span.work, "depth": span.depth, "mode": span.mode}
        if span.counters:
            args["counters"] = dict(span.counters)
        events.append(
            {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "ts": t0,
                "dur": span.depth,
                "pid": 0,
                "tid": lane,
                "args": args,
            }
        )
        cursor = t0 + span.self_depth
        if span.mode == PAR:
            for i, child in enumerate(span.children):
                if i == 0:
                    child_lane = lane
                else:
                    child_lane = next_lane
                    next_lane += 1
                emit(child, cursor, child_lane)
        else:
            for child in span.children:
                emit(child, cursor, lane)
                cursor += child.depth

    emit(root, 0, 0)
    return events


def chrome_trace(obj: Union[Schedule, Span]) -> dict:
    """Chrome trace-event JSON (the ``{"traceEvents": [...]}`` object form)
    for a simulated :class:`Schedule` or a raw :class:`Span` tree.

    Timestamps are the simulated step clock (schedules) or the depth clock
    (raw spans), exposed through ``displayTimeUnit`` as milliseconds —
    simulated PRAM steps, not host time.
    """
    if isinstance(obj, Schedule):
        events = _schedule_events(obj)
    elif isinstance(obj, Span):
        events = _span_events(obj)
    else:
        raise TypeError(
            f"chrome_trace wants a Schedule or Span, got {type(obj).__name__}"
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.pram.export"},
    }


def write_chrome_trace(path: str, obj: Union[Schedule, Span]) -> None:
    """Serialize :func:`chrome_trace` to ``path`` (pretty-printed JSON)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(obj), fh, indent=2, sort_keys=True)
        fh.write("\n")


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class MetricsWriter:
    """Accumulates samples grouped per metric family.

    The Prometheus text format allows each family's ``# HELP`` / ``# TYPE``
    header **once per exposition**, with every label-set sample of that
    family grouped under it — real scrapers reject duplicate headers.  One
    writer must therefore span the whole exposition: callers with several
    telemetry sources contributing to the same family (e.g. ``/metrics``
    rendering one ``CacheStats`` per resident session) feed them all into
    a single writer instead of concatenating per-source renders, and
    :meth:`render` emits each family header exactly once.
    """

    def __init__(self, namespace: str) -> None:
        self.namespace = namespace
        self._families: List[Tuple[str, str, List[str]]] = []
        self._index: Dict[str, int] = {}

    def sample(
        self,
        name: str,
        help_text: str,
        value: float,
        labels: Optional[Dict[str, object]] = None,
    ) -> None:
        full = f"{self.namespace}_{name}"
        if full not in self._index:
            self._index[full] = len(self._families)
            self._families.append((full, help_text, []))
        label_str = ""
        if labels:
            inner = ",".join(
                f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
            )
            label_str = "{" + inner + "}"
        self._families[self._index[full]][2].append(
            f"{full}{label_str} {_format_value(value)}"
        )

    def render(self) -> str:
        lines: List[str] = []
        for full, help_text, samples in self._families:
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} gauge")
            lines.extend(samples)
        return "\n".join(lines) + "\n"


def _trace_metrics(writer: MetricsWriter, trace: Span) -> None:
    writer.sample("trace_work", "Total charged work of the trace.", trace.work)
    writer.sample(
        "trace_depth", "Critical-path depth of the trace.", trace.depth
    )
    phases = aggregate_phases(trace)
    for name in sorted(phases):
        entry = phases[name]
        labels = {"phase": name}
        writer.sample(
            "phase_work_total",
            "Work charged under spans of each phase name "
            "(descendants included; nested phases overlap).",
            entry["work"],
            labels,
        )
        writer.sample(
            "phase_max_depth",
            "Largest single-span depth per phase name.",
            entry["max_depth"],
            labels,
        )
        writer.sample(
            "phase_count_total",
            "Number of spans recorded per phase name.",
            entry["count"],
            labels,
        )
    counters: Dict[str, float] = {}
    for span in trace.walk():
        for key, value in span.counters.items():
            counters[key] = counters.get(key, 0) + value
    for key in sorted(counters):
        writer.sample(
            "trace_counter_total",
            "Trace counters summed over the whole span tree "
            "(packed_overflow_fallbacks, saved_work of *-cached leaves, ...).",
            counters[key],
            {"counter": key},
        )


def cache_metrics(
    writer: MetricsWriter,
    stats: object,
    labels: Optional[Dict[str, object]] = None,
) -> None:
    """Feed one session's cache counters into ``writer``.

    ``labels`` (e.g. ``{"session": fingerprint}``) are merged into every
    sample, so several sessions' stats can share one exposition — one
    family header, one sample line per (session, kind) — instead of the
    duplicate-header text a per-session render-and-concatenate produces.
    """
    # Accept a CacheStats or its as_dict() snapshot; normalize to the dict.
    data = stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)  # type: ignore[call-overload]
    extra = dict(labels) if labels else {}
    for kind in sorted(data.get("hits", {})):
        writer.sample(
            "cache_hits_total",
            "Session cache hits per artifact kind.",
            data["hits"][kind],
            {"kind": kind, **extra},
        )
    for kind in sorted(data.get("misses", {})):
        writer.sample(
            "cache_misses_total",
            "Session cache misses (builds) per artifact kind.",
            data["misses"][kind],
            {"kind": kind, **extra},
        )
    for kind in sorted(data.get("evictions", {})):
        writer.sample(
            "cache_evictions_total",
            "Artifacts dropped by TargetSession.invalidate() per kind.",
            data["evictions"][kind],
            {"kind": kind, **extra},
        )
    for field, help_text in (
        ("saved_work", "Work the cold drivers would have charged for hits."),
        ("saved_depth", "Depth re-added sequentially for cache hits."),
        ("built_work", "Work charged building cache misses."),
        ("built_depth", "Depth charged building cache misses."),
    ):
        if field in data:
            writer.sample(
                f"cache_{field}", help_text, data[field], extra or None
            )


def _schedule_metrics(writer: MetricsWriter, schedule: Schedule) -> None:
    labels = {"processors": schedule.processors}
    writer.sample(
        "schedule_makespan",
        "Simulated makespan T_P of the span-tree list schedule.",
        schedule.makespan,
        labels,
    )
    writer.sample(
        "schedule_brent_bound",
        "Scalar ceil(W/P) + D bound the makespan never exceeds.",
        schedule.brent_bound(),
        labels,
    )
    writer.sample(
        "schedule_utilization",
        "Busy fraction W / (P * T_P) of the simulated processors.",
        round(schedule.utilization, 6),
        labels,
    )
    writer.sample(
        "schedule_speedup",
        "Schedule-simulated speedup T_1 / T_P = W / T_P.",
        round(schedule.speedup, 6),
        labels,
    )


def prometheus_metrics(
    trace: Optional[Span] = None,
    cache_stats: Optional[object] = None,
    schedules: Union[Schedule, Iterable[Schedule], None] = None,
    namespace: str = "repro",
) -> str:
    """Prometheus text-format gauges for any mix of telemetry sources.

    Parameters
    ----------
    trace:
        A span tree — exported as per-phase work/depth/count gauges plus
        the summed trace counters.
    cache_stats:
        A :class:`~repro.engine.session.CacheStats` (or its ``as_dict()``
        snapshot) — per-kind hit/miss/eviction counts and cost totals.
        A ``{name: stats}`` mapping renders *several* sessions into one
        exposition, each sample labeled ``session="name"`` — the family
        headers still appear exactly once (scrapers reject duplicates;
        see :class:`MetricsWriter`).
    schedules:
        One or more :class:`~repro.pram.schedule.Schedule` — makespan,
        Brent bound, utilization and speedup labeled by processor count.
    """
    writer = MetricsWriter(namespace)
    if trace is not None:
        _trace_metrics(writer, trace)
    if cache_stats is not None:
        if isinstance(cache_stats, dict) and not (
            "hits" in cache_stats or "misses" in cache_stats
        ):
            for name in sorted(cache_stats):
                cache_metrics(
                    writer, cache_stats[name], labels={"session": name}
                )
        else:
            cache_metrics(writer, cache_stats)
    if schedules is not None:
        if isinstance(schedules, Schedule):
            schedules = [schedules]
        for schedule in schedules:
            _schedule_metrics(writer, schedule)
    return writer.render()


def write_prometheus(
    path: str,
    trace: Optional[Span] = None,
    cache_stats: Optional[object] = None,
    schedules: Union[Schedule, Iterable[Schedule], None] = None,
    namespace: str = "repro",
) -> None:
    """Write :func:`prometheus_metrics` to ``path``."""
    text = prometheus_metrics(
        trace=trace, cache_stats=cache_stats, schedules=schedules,
        namespace=namespace,
    )
    fh: IO[str]
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
