"""Multi-tenant session pool: one warm :class:`TargetSession` per target.

The daemon's whole value is amortization — a query against a target the
pool has seen pays cover/clustering/decomposition costs only once.  The
pool keys resident sessions by the *target fingerprint*
(:func:`repro.engine.keys.target_fingerprint`), not the spec string, so
``grid:8x8`` and any other spec producing the same graph+embedding share
one session, and a mutated target can never alias a stale one.

Residency is byte-budgeted: after each query the served session's
estimated resident size is refreshed, and least-recently-used sessions
are invalidated and dropped until the pool fits the budget (the session
in use is never evicted; a single oversized session may therefore exceed
the budget alone rather than thrash).  Eviction goes through
:meth:`TargetSession.invalidate`, so every dropped artifact lands in the
session's ``CacheStats.evictions`` — the pool folds those counters into
its lifetime totals, which ``/metrics`` exposes as
``repro_pool_evicted_artifacts_total``.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["PooledSession", "SessionPool"]

#: Default residency budget: 256 MiB of estimated artifact bytes.
DEFAULT_BUDGET = 256 * 1024 * 1024


def estimate_nbytes(obj: object, _seen: Optional[set] = None) -> int:
    """Recursive resident-size estimate of one cached artifact.

    numpy arrays report their buffer size exactly; containers and plain
    objects recurse over their contents with ``sys.getsizeof`` for the
    shells.  Shared sub-objects are counted once (identity-deduplicated),
    matching what eviction would actually free.
    """
    if _seen is None:
        _seen = set()
    if id(obj) in _seen:
        return 0
    _seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + sys.getsizeof(obj, 0)
    size = sys.getsizeof(obj, 64)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += estimate_nbytes(key, _seen)
            size += estimate_nbytes(value, _seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for value in obj:
            size += estimate_nbytes(value, _seen)
    else:
        attrs = getattr(obj, "__dict__", None)
        if attrs is not None:
            size += estimate_nbytes(attrs, _seen)
        for slot in getattr(type(obj), "__slots__", ()):
            if hasattr(obj, slot):
                size += estimate_nbytes(getattr(obj, slot), _seen)
    return size


class PooledSession:
    """One resident target session plus its pool bookkeeping."""

    def __init__(self, fingerprint: str, spec: str, session) -> None:
        self.fingerprint = fingerprint
        self.spec = spec
        self.session = session
        self.nbytes = 0
        self.queries = 0
        #: Serializes queries against this session: TargetSession is not
        #: thread-safe, and the server answers different targets'
        #: queries concurrently on executor threads.
        self.lock = threading.Lock()

    def refresh_nbytes(self) -> int:
        """Re-estimate the session's resident artifact bytes."""
        total = 0
        for entry in self.session._cache.values():
            total += estimate_nbytes(entry.value)
        for child in self.session._children.values():
            for entry in child._cache.values():
                total += estimate_nbytes(entry.value)
        self.nbytes = total
        return total


class SessionPool:
    """LRU pool of :class:`TargetSession` keyed by target fingerprint."""

    def __init__(self, max_bytes: int = DEFAULT_BUDGET) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self._sessions: "OrderedDict[str, PooledSession]" = OrderedDict()
        self._spec_fingerprints: Dict[str, str] = {}
        self._lock = threading.Lock()
        # Lifetime counters (survive eviction; /metrics exposes them).
        self.session_builds = 0
        self.session_hits = 0
        self.sessions_evicted = 0
        self.artifacts_evicted = 0

    # -- residency ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._sessions

    def bytes_resident(self) -> int:
        return sum(p.nbytes for p in self._sessions.values())

    def resident(self) -> List[PooledSession]:
        """Resident sessions, least-recently-used first."""
        return list(self._sessions.values())

    def iter_stats(self) -> Iterator[Tuple[str, object]]:
        """(fingerprint, CacheStats) per resident session, LRU first."""
        for pooled in self._sessions.values():
            yield pooled.fingerprint, pooled.session.stats

    # -- acquisition -------------------------------------------------------

    def acquire(self, target_spec: str) -> PooledSession:
        """The resident session for ``target_spec``, building on miss.

        Marks the session most-recently-used.  The build happens outside
        the pool lock (graph construction and embedding are real work);
        a concurrent build of the same fingerprint is resolved by
        last-writer-loses — the first registered session wins.
        """
        from ..engine.keys import target_fingerprint
        from ..engine.session import TargetSession

        with self._lock:
            fingerprint = self._spec_fingerprints.get(target_spec)
            if fingerprint is not None:
                pooled = self._sessions.get(fingerprint)
                if pooled is not None:
                    self._sessions.move_to_end(fingerprint)
                    self.session_hits += 1
                    return pooled
        from .. import cli

        graph, embedding = cli.parse_target(target_spec)
        fingerprint = target_fingerprint(graph, embedding)
        with self._lock:
            self._spec_fingerprints[target_spec] = fingerprint
            pooled = self._sessions.get(fingerprint)
            if pooled is not None:
                self._sessions.move_to_end(fingerprint)
                self.session_hits += 1
                return pooled
            pooled = PooledSession(
                fingerprint, target_spec, TargetSession(graph, embedding)
            )
            self._sessions[fingerprint] = pooled
            self.session_builds += 1
            return pooled

    def touch(self, pooled: PooledSession) -> None:
        """Refresh ``pooled``'s size and evict LRU sessions over budget."""
        pooled.refresh_nbytes()
        pooled.queries += 1
        with self._lock:
            if pooled.fingerprint in self._sessions:
                self._sessions.move_to_end(pooled.fingerprint)
            self._evict_over_budget(keep=pooled.fingerprint)

    def _evict_over_budget(self, keep: Optional[str] = None) -> None:
        """Drop LRU sessions until the pool fits ``max_bytes``.

        Caller holds ``self._lock``.  Sessions currently answering a
        query (lock held) and the ``keep`` session are skipped.
        """
        while self.bytes_resident() > self.max_bytes:
            victim = None
            for fingerprint, pooled in self._sessions.items():
                if fingerprint == keep or pooled.lock.locked():
                    continue
                victim = fingerprint
                break
            if victim is None:
                return
            self._drop(victim)

    def _drop(self, fingerprint: str) -> None:
        pooled = self._sessions.pop(fingerprint)
        before = pooled.session.stats.eviction_count
        pooled.session.invalidate()
        self.artifacts_evicted += (
            pooled.session.stats.eviction_count - before
        )
        self.sessions_evicted += 1
        self._spec_fingerprints = {
            spec: fp
            for spec, fp in self._spec_fingerprints.items()
            if fp != fingerprint
        }

    def evict(self, fingerprint: str) -> bool:
        """Explicitly drop one session (e.g. an admin/testing hook)."""
        with self._lock:
            if fingerprint not in self._sessions:
                return False
            self._drop(fingerprint)
            return True

    def close(self) -> None:
        """Invalidate and drop every resident session."""
        with self._lock:
            for fingerprint in list(self._sessions):
                self._drop(fingerprint)
