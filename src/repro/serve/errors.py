"""Error taxonomy of the query service.

Every failure the daemon can surface to a client is a :class:`ServeError`
carrying an HTTP status and a stable machine-readable ``code``; the
server renders them as ``{"error": {"code": ..., "message": ...}}``
bodies so clients never have to parse prose.  Anything else escaping a
handler is a bug and maps to a 500 with the exception type as its code.
"""

from __future__ import annotations

__all__ = [
    "ServeError",
    "BadRequest",
    "NotFound",
    "MethodNotAllowed",
    "PayloadTooLarge",
    "ShuttingDown",
]


class ServeError(Exception):
    """A client-visible failure with an HTTP status and stable code."""

    status = 500
    code = "internal"

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def as_dict(self) -> dict:
        return {"error": {"code": self.code, "message": self.message}}


class BadRequest(ServeError):
    status = 400
    code = "bad-request"


class NotFound(ServeError):
    status = 404
    code = "not-found"


class MethodNotAllowed(ServeError):
    status = 405
    code = "method-not-allowed"


class PayloadTooLarge(ServeError):
    status = 413
    code = "payload-too-large"


class ShuttingDown(ServeError):
    """New work refused while the daemon drains in-flight requests."""

    status = 503
    code = "shutting-down"
