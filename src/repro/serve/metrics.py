"""The daemon's ``/metrics`` exposition and a strict text-format parser.

Rendering reuses :class:`repro.pram.export.MetricsWriter` so the whole
exposition shares one writer: every resident session's ``CacheStats``
lands under the same ``repro_cache_*`` families (labeled
``session="<fingerprint prefix>"``), followed by the pool and server
gauges.  One writer per exposition is what guarantees each ``# HELP`` /
``# TYPE`` header appears exactly once — scrapers reject duplicates.

:func:`parse_prometheus_text` is the strict consumer used by the e2e
tests and the CI smoke job: it enforces the text-format grammar (header
pairs before samples, one header pair per family, contiguous family
blocks, well-formed labels, no duplicate label sets) rather than just
grepping, so a malformed exposition fails loudly.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

__all__ = ["render_metrics", "parse_prometheus_text"]

#: Label-set prefix length of the session fingerprint (full sha256 hex
#: fingerprints would bloat every sample line; 12 hex chars keep the
#: collision odds negligible at pool scale).
FINGERPRINT_LABEL_LEN = 12

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(.*)\})?"
    r" (-?(?:[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|Inf)|NaN|\+Inf)$"
)
_LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"'
)


def render_metrics(pool, server=None, namespace: str = "repro") -> str:
    """One Prometheus exposition for the pool (and optionally server)."""
    from ..pram.export import MetricsWriter, cache_metrics

    writer = MetricsWriter(namespace)
    for fingerprint, stats in pool.iter_stats():
        cache_metrics(
            writer,
            stats,
            labels={"session": fingerprint[:FINGERPRINT_LABEL_LEN]},
        )
    writer.sample(
        "pool_sessions_resident",
        "Target sessions currently resident in the pool.",
        len(pool),
    )
    writer.sample(
        "pool_bytes_resident",
        "Estimated resident bytes of all cached artifacts.",
        pool.bytes_resident(),
    )
    writer.sample(
        "pool_byte_budget",
        "Configured residency budget the LRU eviction enforces.",
        pool.max_bytes,
    )
    writer.sample(
        "pool_session_builds_total",
        "Sessions built because no resident session matched.",
        pool.session_builds,
    )
    writer.sample(
        "pool_session_hits_total",
        "Requests served by an already-resident session.",
        pool.session_hits,
    )
    writer.sample(
        "pool_sessions_evicted_total",
        "Sessions dropped by the byte-budget LRU.",
        pool.sessions_evicted,
    )
    writer.sample(
        "pool_evicted_artifacts_total",
        "Cached artifacts invalidated by session eviction "
        "(sum of the evicted sessions' CacheStats.evictions).",
        pool.artifacts_evicted,
    )
    if server is not None:
        for route, count in sorted(server.requests_total.items()):
            writer.sample(
                "server_requests_total",
                "HTTP requests answered, by route.",
                count,
                {"route": route},
            )
        writer.sample(
            "server_inflight",
            "Query requests currently executing.",
            server.inflight,
        )
        writer.sample(
            "server_coalesced_total",
            "Requests that attached to an identical in-flight query "
            "instead of executing.",
            server.coalesced_total,
        )
        writer.sample(
            "server_draining",
            "1 while the daemon refuses new work and drains in-flight.",
            int(server.draining),
        )
    return writer.render()


def parse_prometheus_text(
    text: str,
) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Strictly parse a Prometheus text exposition.

    Returns ``{family: [(labels, value), ...]}``.  Raises ``ValueError``
    on any grammar violation: missing/duplicate/ill-ordered ``# HELP`` /
    ``# TYPE`` headers, samples before their headers, non-contiguous
    family blocks, malformed label syntax, duplicate label sets, or a
    missing trailing newline.
    """
    if not text:
        raise ValueError("empty exposition")
    if not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    families: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    typed: Dict[str, str] = {}
    closed: set = set()
    current = None
    pending_help = None
    for lineno, line in enumerate(text.split("\n")[:-1], 1):
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3]:
                raise ValueError(f"line {lineno}: HELP without text")
            name = parts[2]
            if name in families:
                raise ValueError(f"line {lineno}: duplicate HELP for {name}")
            if current is not None:
                closed.add(current)
            families[name] = []
            pending_help = name
            current = None
        elif line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE")
            name, kind = parts[2], parts[3]
            if kind not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            if pending_help != name:
                raise ValueError(
                    f"line {lineno}: TYPE for {name} must directly follow "
                    f"its HELP"
                )
            if name in typed:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
            typed[name] = kind
            current = name
            pending_help = None
        elif line.startswith("#"):
            raise ValueError(f"line {lineno}: stray comment {line!r}")
        else:
            match = _SAMPLE_RE.match(line)
            if match is None:
                raise ValueError(f"line {lineno}: malformed sample {line!r}")
            name, raw_labels, raw_value = match.groups()
            if name not in typed:
                raise ValueError(
                    f"line {lineno}: sample for {name} before its headers"
                )
            if name != current:
                if name in closed or current is None:
                    raise ValueError(
                        f"line {lineno}: sample for {name} outside its "
                        f"family block"
                    )
                raise ValueError(
                    f"line {lineno}: sample for {name} inside the "
                    f"{current} block"
                )
            labels: Dict[str, str] = {}
            if raw_labels is not None:
                pos = 0
                while pos < len(raw_labels):
                    label = _LABEL_RE.match(raw_labels, pos)
                    if label is None:
                        raise ValueError(
                            f"line {lineno}: malformed labels "
                            f"{raw_labels!r}"
                        )
                    key, value = label.group(1), label.group(2)
                    if key in labels:
                        raise ValueError(
                            f"line {lineno}: duplicate label {key!r}"
                        )
                    labels[key] = value
                    pos = label.end()
                    if pos < len(raw_labels):
                        if raw_labels[pos] != ",":
                            raise ValueError(
                                f"line {lineno}: malformed labels "
                                f"{raw_labels!r}"
                            )
                        pos += 1  # trailing comma is legal
            key_set = tuple(sorted(labels.items()))
            if any(existing == key_set for existing, _ in (
                (tuple(sorted(ls.items())), v) for ls, v in families[name]
            )):
                raise ValueError(
                    f"line {lineno}: duplicate label set for {name}"
                )
            families[name].append((labels, float(raw_value)))
    for name in families:
        if name not in typed:
            raise ValueError(f"family {name} has HELP but no TYPE")
    return families
