"""The query daemon: a hand-rolled asyncio HTTP/1.1 JSON service.

``python -m repro serve`` starts one process that owns a
:class:`~repro.serve.pool.SessionPool` and answers:

* ``POST /v1/decide`` — find an occurrence (Theorem 2.1)
* ``POST /v1/count`` — deterministic exact counting
* ``POST /v1/list`` — list all occurrences (Theorem 4.2)
* ``POST /v1/connectivity`` — planar vertex connectivity (Lemma 5.2)
* ``POST /v1/batch`` — many patterns over one warm session
* ``GET /healthz`` / ``GET /metrics`` — liveness and Prometheus text

Stdlib only — the HTTP/1.1 framing (request line, headers,
Content-Length bodies, keep-alive) is parsed by hand over asyncio
streams, so the daemon adds no runtime dependency.

Three behaviors carry the design:

* **Planning by default** — every query runs ``plan="auto"`` unless the
  request opts out, so the daemon's engine/kernel/backend choices come
  from the cost model, which keeps calibrating across the whole served
  workload (one :class:`CostModel` per resident session).
* **Request coalescing** — identical in-flight queries (same canonical
  form, see :meth:`QueryRequest.canonical`) share one execution: the
  first request computes, the rest await the same task and serialize
  the shared result with their own ``explain`` flag.
* **Graceful shutdown** — SIGTERM/SIGINT flip the daemon into draining
  (new queries get 503, ``/healthz`` reports it), in-flight work
  completes, then the pool, the executor, the optional piece backend
  and any still-registered shared-memory segments are torn down.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from .errors import (
    BadRequest,
    MethodNotAllowed,
    NotFound,
    PayloadTooLarge,
    ServeError,
    ShuttingDown,
)
from .pool import DEFAULT_BUDGET, SessionPool
from .protocol import (
    QueryRequest,
    batch_to_dict,
    parse_body,
    parse_query,
    result_to_dict,
)

__all__ = ["QueryServer", "serve_main"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Request bodies above this are refused with 413 before being read.
MAX_BODY_BYTES = 1 << 20

_QUERY_ROUTES = {
    "/v1/decide": "decide",
    "/v1/count": "count",
    "/v1/list": "list",
    "/v1/connectivity": "connectivity",
    "/v1/batch": "batch",
}


class QueryServer:
    """One daemon instance: listener, pool, executor, in-flight registry."""

    def __init__(
        self,
        pool: Optional[SessionPool] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        backend=None,
        workers: int = 4,
    ) -> None:
        self.pool = pool if pool is not None else SessionPool()
        self.host = host
        self.port = port  # 0 = ephemeral; updated by start()
        self.backend = backend
        self.draining = False
        self.inflight = 0
        self.coalesced_total = 0
        self.requests_total: Dict[str, int] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-serve"
        )
        self._inflight_queries: Dict[str, asyncio.Task] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._shutdown_task: Optional[asyncio.Task] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener; ``self.port`` reflects the bound port."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until :meth:`request_shutdown` completes the drain."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    def request_shutdown(self) -> None:
        """Signal-handler entry: begin the graceful drain (idempotent)."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.ensure_future(self.shutdown())

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight queries, release resources."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._idle.wait()
        self._executor.shutdown(wait=True)
        if self.backend is not None:
            self.backend.close()
        self.pool.close()
        from ..exec.shm import cleanup_segments

        cleanup_segments()
        self._stopped.set()

    # -- HTTP framing ------------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request_line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._respond(
                        writer, 400,
                        {"error": {"code": "bad-request",
                                   "message": "request line too long"}},
                        keep_alive=False,
                    )
                    return
                if not request_line:
                    return
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
                    await self._respond(
                        writer, 400,
                        {"error": {"code": "bad-request",
                                   "message": "malformed request line"}},
                        keep_alive=False,
                    )
                    return
                method, path = parts[0].upper(), parts[1]
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                    and not self.draining
                )
                try:
                    length = int(headers.get("content-length") or 0)
                except ValueError:
                    length = -1
                if length < 0:
                    await self._respond(
                        writer, 400,
                        {"error": {"code": "bad-request",
                                   "message": "bad Content-Length"}},
                        keep_alive=False,
                    )
                    return
                if length > MAX_BODY_BYTES:
                    await self._respond(
                        writer, 413,
                        PayloadTooLarge(
                            f"body of {length} bytes exceeds the "
                            f"{MAX_BODY_BYTES} byte limit"
                        ).as_dict(),
                        keep_alive=False,
                    )
                    return
                body = await reader.readexactly(length) if length else b""
                status, payload, text = await self._route(method, path, body)
                keep_alive = keep_alive and not self.draining
                await self._respond(
                    writer, status, payload, keep_alive=keep_alive, text=text
                )
                if not keep_alive:
                    return
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(
        self, writer, status: int, payload, keep_alive: bool,
        text: Optional[str] = None,
    ) -> None:
        if text is not None:
            body = text.encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
            ctype = "application/json"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routing -----------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, object, Optional[str]]:
        """(status, json_payload, text_payload) for one request."""
        route = _QUERY_ROUTES.get(path, path)
        self.requests_total[route] = self.requests_total.get(route, 0) + 1
        try:
            if path == "/healthz":
                if method != "GET":
                    raise MethodNotAllowed("/healthz is GET-only")
                return 200, {
                    "status": "draining" if self.draining else "ok",
                    "sessions": len(self.pool),
                    "inflight": self.inflight,
                }, None
            if path == "/metrics":
                if method != "GET":
                    raise MethodNotAllowed("/metrics is GET-only")
                from .metrics import render_metrics

                return 200, None, render_metrics(self.pool, self)
            mode = _QUERY_ROUTES.get(path)
            if mode is None:
                raise NotFound(f"no route {path!r}")
            if method != "POST":
                raise MethodNotAllowed(f"{path} is POST-only")
            if self.draining:
                raise ShuttingDown("daemon is draining; retry elsewhere")
            request = parse_query(
                mode, parse_body(body), batch=(mode == "batch")
            )
            payload = await self._answer(request)
            return 200, payload, None
        except ServeError as exc:
            return exc.status, exc.as_dict(), None
        except Exception as exc:  # noqa: BLE001 - last-resort boundary
            return 500, {
                "error": {
                    "code": type(exc).__name__,
                    "message": str(exc),
                }
            }, None

    # -- query execution ---------------------------------------------------

    async def _answer(self, request: QueryRequest) -> dict:
        """Execute (or coalesce onto) one query; serialize per-request."""
        self.inflight += 1
        self._idle.clear()
        try:
            key = request.canonical()
            task = self._inflight_queries.get(key)
            if task is None:
                task = asyncio.ensure_future(self._execute(request))
                self._inflight_queries[key] = task
                task.add_done_callback(
                    lambda _t: self._inflight_queries.pop(key, None)
                )
            else:
                self.coalesced_total += 1
            result = await asyncio.shield(task)
        finally:
            self.inflight -= 1
            if self.inflight == 0:
                self._idle.set()
        if request.mode == "batch":
            return batch_to_dict(
                result, request.patterns, explain=request.explain
            )
        return result_to_dict(request.mode, result, explain=request.explain)

    async def _execute(self, request: QueryRequest):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self._run_blocking, request
        )

    def _run_blocking(self, request: QueryRequest):
        """Executor-thread body: acquire the session, run the driver."""
        pooled = self.pool.acquire(request.target)
        with pooled.lock:
            result = self._dispatch_query(pooled.session, request)
        self.pool.touch(pooled)
        return result

    def _dispatch_query(self, session, request: QueryRequest):
        from .. import cli

        kwargs: Dict[str, object] = {"plan": request.plan}
        if request.engine is not None:
            kwargs["engine"] = request.engine
        if request.rounds is not None:
            kwargs["rounds"] = request.rounds
        if self.backend is not None:
            kwargs["backend"] = self.backend
        if request.mode == "batch":
            patterns = [cli.parse_pattern(s) for s in request.patterns]
            return session.decide_batch(
                patterns, seed=request.seed, **kwargs
            )
        if request.mode == "connectivity":
            return session.vertex_connectivity(seed=request.seed, **kwargs)
        pattern = cli.parse_pattern(request.patterns[0])
        if request.mode == "decide":
            return session.find_occurrence(
                pattern, seed=request.seed, **kwargs
            )
        if request.mode == "list":
            return session.list_occurrences(
                pattern, seed=request.seed, **kwargs
            )
        # count: the deterministic window DP takes no seed or rounds.
        kwargs.pop("rounds", None)
        return session.count_exact(pattern, **kwargs)


def serve_main(args) -> int:
    """CLI entry for ``python -m repro serve``."""
    backend = None
    if args.backend is not None:
        from ..exec import resolve_backend

        backend = resolve_backend(args.backend, max_workers=args.processors)
    pool = SessionPool(
        max_bytes=int(args.cache_budget_mb * 1024 * 1024)
    )
    server = QueryServer(
        pool=pool,
        host=args.host,
        port=args.port,
        backend=backend,
        workers=args.workers,
    )

    async def _run() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        print(
            f"repro serve: listening on {server.host}:{server.port} "
            f"(budget {pool.max_bytes // (1024 * 1024)} MiB, "
            f"workers {server._executor._max_workers})",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        pass
    print("repro serve: drained and stopped", file=sys.stderr)
    return 0
