"""The query service: a multi-tenant daemon over warm target sessions.

``python -m repro serve`` exposes the library's six query drivers as an
HTTP/JSON service (stdlib-only; see :mod:`repro.serve.server`) backed by
a byte-budgeted LRU :class:`~repro.serve.pool.SessionPool` of
:class:`~repro.engine.session.TargetSession` instances, so repeated and
related queries against the same targets are amortized across clients —
the server-shaped version of what ``repro batch`` does for one process.
"""

from .errors import ServeError
from .metrics import parse_prometheus_text, render_metrics
from .pool import PooledSession, SessionPool
from .protocol import QueryRequest, parse_query, result_to_dict
from .server import QueryServer, serve_main

__all__ = [
    "ServeError",
    "parse_prometheus_text",
    "render_metrics",
    "PooledSession",
    "SessionPool",
    "QueryRequest",
    "parse_query",
    "result_to_dict",
    "QueryServer",
    "serve_main",
]
