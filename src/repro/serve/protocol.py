"""Request/response protocol of the query service.

One JSON object in, one JSON object out.  Requests name the target and
pattern by the same spec strings the CLI takes (``grid:16x16``,
``cycle:4`` — see :func:`repro.cli.parse_target`), so a curl transcript
and a CLI invocation read the same.  :func:`parse_query` validates and
normalizes a request into a :class:`QueryRequest` whose
:meth:`~QueryRequest.canonical` form keys request coalescing: two
requests coalesce exactly when their normalized fields agree.

Responses serialize the driver result dataclasses field-by-field —
verdict/witness/count/connectivity plus the charged ``cost``, the
``cold_equivalent_cost`` and ``amortized`` amortization surface, and
(under ``explain``) the executed :class:`~repro.engine.planner.QueryPlan`
via its own ``as_dict``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Tuple

from .errors import BadRequest

__all__ = [
    "QueryRequest",
    "MODES",
    "parse_query",
    "parse_body",
    "result_to_dict",
    "batch_to_dict",
]

#: Query modes the service exposes, with the session method they call.
MODES = ("decide", "count", "list", "connectivity")

_ENGINES = (None, "parallel", "sequential")
_PLANS = ("auto", "manual")

#: Fields a request may carry, beyond the per-mode required ones.
_KNOWN_FIELDS = frozenset(
    {
        "target", "pattern", "patterns", "seed", "rounds", "engine",
        "plan", "explain",
    }
)


@dataclass(frozen=True)
class QueryRequest:
    """A validated, normalized query (hashable: coalescing keys on it)."""

    mode: str
    target: str
    patterns: Tuple[str, ...]  # empty for connectivity
    seed: int
    rounds: Optional[int]
    engine: Optional[str]
    plan: str
    explain: bool

    def canonical(self) -> str:
        """Canonical JSON string identifying this query for coalescing.

        ``explain`` is excluded: it only changes the response envelope,
        not the computation, so an explain and a non-explain request for
        the same query still share one execution.
        """
        return json.dumps(
            {
                "mode": self.mode,
                "target": self.target,
                "patterns": list(self.patterns),
                "seed": self.seed,
                "rounds": self.rounds,
                "engine": self.engine,
                "plan": self.plan,
            },
            sort_keys=True,
        )


def parse_body(raw: bytes) -> dict:
    """Decode a request body as a JSON object."""
    if not raw:
        raise BadRequest("empty body: send a JSON object")
    try:
        payload = json.loads(raw)
    except (ValueError, UnicodeDecodeError) as exc:
        raise BadRequest(f"body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise BadRequest("body must be a JSON object")
    return payload


def _parse_spec(kind: str, spec: object, parser) -> str:
    """Validate one target/pattern spec string by building it once.

    The CLI parsers raise ``SystemExit`` on bad specs (their argparse
    contract); the service maps that to a 400 instead of dying.
    """
    if not isinstance(spec, str) or not spec:
        raise BadRequest(f"{kind!r} must be a non-empty spec string")
    try:
        parser(spec)
    except SystemExit as exc:
        raise BadRequest(str(exc)) from exc
    return spec


def parse_query(mode: str, payload: dict, batch: bool = False) -> QueryRequest:
    """Validate ``payload`` for ``mode`` and normalize defaults.

    ``plan`` defaults to ``"auto"``: the daemon answers every query
    through the cost-based planner unless the client opts out.
    """
    from .. import cli

    unknown = sorted(set(payload) - _KNOWN_FIELDS)
    if unknown:
        raise BadRequest(f"unknown fields: {', '.join(unknown)}")

    if "target" not in payload:
        raise BadRequest("missing required field 'target'")
    target = _parse_spec("target", payload["target"], cli.parse_target)

    patterns: Tuple[str, ...] = ()
    if batch:
        raw = payload.get("patterns")
        if not isinstance(raw, list) or not raw:
            raise BadRequest(
                "'patterns' must be a non-empty list of spec strings"
            )
        patterns = tuple(
            _parse_spec("pattern", spec, cli.parse_pattern) for spec in raw
        )
    elif mode == "connectivity":
        if "pattern" in payload or "patterns" in payload:
            raise BadRequest("connectivity takes no pattern")
    else:
        if "pattern" not in payload:
            raise BadRequest("missing required field 'pattern'")
        patterns = (
            _parse_spec("pattern", payload["pattern"], cli.parse_pattern),
        )

    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise BadRequest("'seed' must be an integer")
    rounds = payload.get("rounds")
    if rounds is not None and (
        not isinstance(rounds, int) or isinstance(rounds, bool) or rounds < 1
    ):
        raise BadRequest("'rounds' must be a positive integer")
    engine = payload.get("engine")
    if engine not in _ENGINES:
        raise BadRequest(
            f"'engine' must be one of {[e for e in _ENGINES if e]}"
        )
    plan = payload.get("plan", "auto")
    if plan not in _PLANS:
        raise BadRequest(f"'plan' must be one of {list(_PLANS)}")
    explain = payload.get("explain", False)
    if not isinstance(explain, bool):
        raise BadRequest("'explain' must be a boolean")
    return QueryRequest(
        mode=mode,
        target=target,
        patterns=patterns,
        seed=seed,
        rounds=rounds,
        engine=engine,
        plan=plan,
        explain=explain,
    )


def _cost_dict(cost) -> Optional[dict]:
    if cost is None:
        return None
    return {"work": int(cost.work), "depth": int(cost.depth)}


def _common_fields(result, explain: bool) -> dict:
    out = {
        "cost": _cost_dict(result.cost),
        "amortized": bool(getattr(result, "amortized", False)),
        "cold_equivalent_cost": _cost_dict(
            getattr(result, "cold_equivalent_cost", None)
        ),
    }
    plan = getattr(result, "plan", None)
    if explain and plan is not None:
        out["plan"] = plan.as_dict()
        out["explain"] = plan.explain()
    return out


def result_to_dict(mode: str, result, explain: bool = False) -> dict:
    """Serialize one driver result for the wire, keyed by query mode."""
    if mode == "decide":
        witness = result.witness
        out = {
            "found": bool(result.found),
            "witness": (
                {str(k): int(v) for k, v in sorted(witness.items())}
                if witness else None
            ),
            "rounds_used": int(result.rounds_used),
            "pieces_examined": int(result.pieces_examined),
        }
    elif mode == "count":
        out = {
            "isomorphisms": int(result.isomorphisms),
            "windows_examined": int(result.windows_examined),
        }
    elif mode == "list":
        occurrences = sorted(
            sorted(int(v) for v in occ) for occ in result.occurrences
        )
        out = {
            "occurrences": occurrences,
            "isomorphisms": len(result.witnesses),
            "iterations": int(result.iterations),
        }
    elif mode == "connectivity":
        cut = result.certificate_cut
        out = {
            "connectivity": int(result.connectivity),
            "certificate_cut": (
                sorted(int(v) for v in cut) if cut is not None else None
            ),
        }
    else:  # pragma: no cover - guarded by parse_query
        raise ValueError(f"unknown mode {mode!r}")
    out.update(_common_fields(result, explain))
    return out


def batch_to_dict(batch, patterns, explain: bool = False) -> dict:
    """Serialize a :class:`~repro.engine.session.BatchResult`."""
    return {
        "results": [
            dict(
                result_to_dict("decide", result, explain=explain),
                pattern=spec,
            )
            for spec, result in zip(patterns, batch.results)
        ],
        "queries": len(batch.results),
        "amortized_queries": int(batch.amortized_queries),
        "deduped_queries": int(batch.deduped_queries),
        "shared": bool(batch.shared),
        "cost": _cost_dict(batch.cost),
        "cold_equivalent_cost": _cost_dict(batch.cold_equivalent_cost),
        "cache_stats": dict(batch.cache_stats),
    }
