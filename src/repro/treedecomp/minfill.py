"""Min-fill/min-degree heuristic tree decomposition (validated width).

This is the library's substitute for Lagergren's parallel tree decomposition
[34], which the paper invokes only for the apex-minor-free generalization
(Section 4.3.2).  The DP of Section 3 needs a *valid* decomposition of
reasonable width; the heuristic delivers one for arbitrary graphs, and the
E11 benchmark reports the widths achieved so the substitution stays visible
(DESIGN.md, Substitutions).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from ..graphs.csr import Graph
from ..pram import Cost, Tracer
from .decomposition import TreeDecomposition

__all__ = ["minfill_decomposition"]

NIL = -1


def minfill_decomposition(
    graph: Graph,
    strategy: str = "min_fill",
    tracer: Optional[Tracer] = None,
    label: str = "minfill",
) -> Tuple[TreeDecomposition, Cost]:
    """Tree decomposition by greedy elimination.

    ``strategy`` is ``"min_fill"`` (fewest fill edges) or ``"min_degree"``.
    The elimination ordering yields a chordal completion; bag ``i`` is the
    eliminated vertex plus its then-neighborhood, attached under the bag of
    its earliest-eliminated later neighbor.
    """
    if strategy not in ("min_fill", "min_degree"):
        raise ValueError(f"unknown strategy {strategy!r}")
    n = graph.n
    if n == 0:
        raise ValueError("empty graph has no decomposition")

    adj: List[Set[int]] = [set(graph.neighbors(v).tolist()) for v in range(n)]
    eliminated = np.zeros(n, dtype=bool)
    elim_order: List[int] = []
    elim_position = np.full(n, NIL, dtype=np.int64)
    bags: List[np.ndarray] = []
    work = 0

    def fill_cost(v: int) -> int:
        nbrs = list(adj[v])
        missing = 0
        for i in range(len(nbrs)):
            for j in range(i + 1, len(nbrs)):
                if nbrs[j] not in adj[nbrs[i]]:
                    missing += 1
        return missing

    for step in range(n):
        # Pick the next vertex greedily.
        best, best_key = -1, None
        for v in range(n):
            if eliminated[v]:
                continue
            work += 1
            if strategy == "min_degree":
                key = (len(adj[v]), v)
            else:
                key = (fill_cost(v), len(adj[v]), v)
                work += len(adj[v]) ** 2
            if best_key is None or key < best_key:
                best, best_key = v, key
        v = best
        nbrs = sorted(adj[v])
        bags.append(np.asarray([v] + nbrs, dtype=np.int64))
        # Turn the neighborhood into a clique, then remove v.
        for i in range(len(nbrs)):
            for j in range(i + 1, len(nbrs)):
                a, b = nbrs[i], nbrs[j]
                if b not in adj[a]:
                    adj[a].add(b)
                    adj[b].add(a)
                    work += 1
        for w in nbrs:
            adj[w].discard(v)
        adj[v].clear()
        eliminated[v] = True
        elim_position[v] = step
        elim_order.append(v)

    # Tree structure: bag of v attaches under the bag of v's earliest-
    # eliminated later neighbor (the standard clique-tree construction).
    parent = np.full(n, NIL, dtype=np.int64)
    roots: List[int] = []
    for step, v in enumerate(elim_order):
        later = [int(elim_position[w]) for w in bags[step][1:]]
        later = [p for p in later if p > step]
        if later:
            parent[step] = min(later)
        else:
            roots.append(step)
    # Multiple components produce multiple roots: chain them under the last.
    root = roots[-1]
    for r in roots[:-1]:
        parent[r] = root

    decomposition = TreeDecomposition(bags=bags, parent=parent, root=root)
    cost = Cost(max(work, 1), max(work, 1))  # sequential heuristic
    if tracer is not None:
        tracer.charge(cost, label=label, n=n, width=decomposition.width())
    return decomposition, cost
