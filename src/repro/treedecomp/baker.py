"""Baker/Eppstein tree decomposition of width O(diameter) for embedded
planar graphs (Section 2: "a planar graph of diameter d has treewidth at
most 3d").

Construction (on a *connected* embedded multigraph H with a BFS tree T of
depth D from a chosen root):

1. Stellate every face (``repro.planar.triangulate``) so all faces are
   triangles; extend T by hanging each stellation vertex under one of its
   face's corners.  The extended tree T' has depth <= D + 1.
2. Interdigitating-tree step: the dual graph on the triangles, with an edge
   where two triangles share a *non-tree* primal edge, is a spanning tree of
   the dual (genus 0).  That dual tree is the decomposition tree.
3. The bag of a triangle is the union of the three T'-paths from its corners
   to the root, minus the stellation vertices.

Width: each path contributes <= D + 2 vertices (corner may be a stellation
vertex at depth D + 1), at most D + 1 of them original, so the bag has at
most 3(D + 1) vertices — width <= 3D + 2, matching the paper's 3d bound up
to the small additive constant the stellation costs (DESIGN.md).

The result is a valid decomposition of the *simple* graph underlying H
(``validate`` is exercised over every family in the tests).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..pram import Cost, Tracer, log2_ceil
from ..planar.embedding import NIL, PlanarEmbedding
from ..planar.triangulate import stellate
from .decomposition import TreeDecomposition

__all__ = ["baker_decomposition", "bfs_tree_darts"]


def bfs_tree_darts(
    embedding: PlanarEmbedding, root: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Cost]:
    """Multigraph BFS from ``root`` over the embedding's darts.

    Returns ``(level, parent_vertex, parent_dart, cost)`` where
    ``parent_dart[v]`` is the specific dart (u -> v) that discovered v —
    needed to mark exactly one parallel copy as the tree edge.
    """
    n = embedding.n
    level = np.full(n, NIL, dtype=np.int64)
    parent = np.full(n, NIL, dtype=np.int64)
    parent_dart = np.full(n, NIL, dtype=np.int64)
    level[root] = 0
    frontier = [root]
    work = 1
    rounds = 1
    while frontier:
        nxt: List[int] = []
        for u in frontier:
            for d in embedding.darts_from(u):
                work += 1
                w = embedding.head[d]
                if level[w] == NIL:
                    level[w] = level[u] + 1
                    parent[w] = u
                    parent_dart[w] = d
                    nxt.append(w)
        frontier = nxt
        rounds += 1
    return level, parent, parent_dart, Cost(max(work, rounds), rounds)


def baker_decomposition(
    embedding: PlanarEmbedding,
    root: int,
    tracer: Optional[Tracer] = None,
    label: str = "baker",
) -> Tuple[TreeDecomposition, Cost]:
    """Width <= 3D + 2 tree decomposition of a connected embedded graph,
    where D is the BFS depth from ``root``.

    Raises ``ValueError`` if the embedding is not connected or not genus 0.
    """
    n = embedding.n
    if n == 0:
        raise ValueError("empty embedding")
    if embedding.num_edges() == 0:
        if n > 1:
            raise ValueError("embedding is not connected")
        if tracer is not None:
            tracer.charge(Cost.step(1), label=label, n=1)
        return (
            TreeDecomposition(
                bags=[np.array([root])],
                parent=np.array([NIL]),
                root=0,
            ),
            Cost.step(1),
        )

    stell, cost = stellate(embedding)
    emb = stell.embedding
    num_original = stell.num_original

    level, parent, parent_dart, bfs_cost = bfs_tree_darts(emb, root)
    cost = cost + bfs_cost
    if np.any(level == NIL):
        raise ValueError("embedding is not connected")

    tree_dart = np.zeros(len(emb.head), dtype=bool)
    for v in range(emb.n):
        d = parent_dart[v]
        if d != NIL:
            tree_dart[d] = True
            tree_dart[d ^ 1] = True

    face_of_dart, num_faces = emb.face_of_darts()
    if num_faces == 0:
        raise ValueError("no faces")

    # Dual tree over non-tree primal edges.
    dual_adj: List[List[int]] = [[] for _ in range(num_faces)]
    for d in range(0, len(emb.head), 2):
        if not emb.alive[d] or tree_dart[d]:
            continue
        f1 = int(face_of_dart[d])
        f2 = int(face_of_dart[d ^ 1])
        dual_adj[f1].append(f2)
        dual_adj[f2].append(f1)

    # Root the dual tree at face 0 by BFS; verify it spans and is acyclic.
    dual_parent = np.full(num_faces, NIL, dtype=np.int64)
    seen = np.zeros(num_faces, dtype=bool)
    seen[0] = True
    frontier = [0]
    edge_uses = 0
    while frontier:
        nxt: List[int] = []
        for f in frontier:
            for g in dual_adj[f]:
                edge_uses += 1
                if not seen[g]:
                    seen[g] = True
                    dual_parent[g] = f
                    nxt.append(g)
        frontier = nxt
    if not seen.all():
        raise ValueError("interdigitating dual graph is not connected "
                         "(is the embedding genus 0?)")
    if edge_uses != 2 * (num_faces - 1):
        raise ValueError("interdigitating dual graph has a cycle "
                         "(is the embedding genus 0?)")

    # Bags: per-face union of corner-to-root paths (original vertices only).
    faces = emb.faces()
    bags: List[np.ndarray] = []
    for f_walk in faces:
        bag: List[int] = []
        for d in f_walk:
            v = emb.tail(d)
            while v != NIL:
                if v < num_original:
                    bag.append(v)
                v = int(parent[v])
        bags.append(np.unique(np.asarray(bag, dtype=np.int64)))
    cost = cost + Cost(
        max(sum(b.size for b in bags) + num_faces, 1),
        max(1, 2 * log2_ceil(max(emb.n, 2))),
    )

    decomposition = TreeDecomposition(
        bags=bags, parent=dual_parent, root=0
    )
    if tracer is not None:
        tracer.charge(cost, label=label, n=n, bags=len(bags))
    return decomposition, cost
