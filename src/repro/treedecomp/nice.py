"""Nice tree decompositions: introduce / forget / join normal form.

The dynamic program of Section 3 extends partial matches between a child and
a parent bag.  A *nice* decomposition factors every bag change into single-
vertex steps, which keeps the sparse state-generation transitions cheap while
preserving the paper's (phi, C, U) state semantics:

* ``leaf``      — empty bag;
* ``introduce`` — bag = child bag + one vertex;
* ``forget``    — bag = child bag - one vertex;
* ``join``      — two children with identical bags.

The root has an empty bag (everything forgotten), so acceptance is simply
"the root reaches the state with every pattern vertex matched in a child".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..pram import Cost, Tracer
from .decomposition import TreeDecomposition

__all__ = ["NiceDecomposition", "make_nice"]

NIL = -1

LEAF = "leaf"
INTRODUCE = "introduce"
FORGET = "forget"
JOIN = "join"


@dataclass
class NiceDecomposition:
    """A nice tree decomposition (see module docstring).

    ``vertex[i]`` is the vertex introduced/forgotten at node ``i`` (NIL for
    leaf/join).  ``children[i]`` lists ``i``'s children; unary chains have
    exactly one, joins exactly two.
    """

    kinds: List[str]
    vertex: np.ndarray
    bags: List[np.ndarray]
    parent: np.ndarray
    root: int

    @property
    def num_nodes(self) -> int:
        return len(self.kinds)

    def children(self) -> List[List[int]]:
        # Cached: the engines ask for the children lists once per path solve
        # and the tree never changes after construction.
        cached = self.__dict__.get("_children")
        if cached is None:
            out: List[List[int]] = [[] for _ in range(self.num_nodes)]
            for i, p in enumerate(self.parent):
                if p != NIL:
                    out[int(p)].append(i)
            self.__dict__["_children"] = cached = out
        return cached

    def width(self) -> int:
        return max(int(b.size) for b in self.bags) - 1

    def topological_order(self) -> List[int]:
        kids = self.children()
        order = [self.root]
        head = 0
        while head < len(order):
            order.extend(kids[order[head]])
            head += 1
        return order

    def as_tree_decomposition(self) -> TreeDecomposition:
        """View as a plain tree decomposition (for validation)."""
        return TreeDecomposition(
            bags=[b.copy() for b in self.bags],
            parent=self.parent.copy(),
            root=self.root,
        )

    def validate_structure(self) -> None:
        """Check the nice-form invariants node by node."""
        kids = self.children()
        for i, kind in enumerate(self.kinds):
            bag = set(self.bags[i].tolist())
            cs = kids[i]
            if kind == LEAF:
                assert not cs and not bag, f"bad leaf {i}"
            elif kind == INTRODUCE:
                assert len(cs) == 1, f"introduce {i} needs one child"
                child_bag = set(self.bags[cs[0]].tolist())
                v = int(self.vertex[i])
                assert v not in child_bag and bag == child_bag | {v}
            elif kind == FORGET:
                assert len(cs) == 1, f"forget {i} needs one child"
                child_bag = set(self.bags[cs[0]].tolist())
                v = int(self.vertex[i])
                assert v in child_bag and bag == child_bag - {v}
            elif kind == JOIN:
                assert len(cs) == 2, f"join {i} needs two children"
                for c in cs:
                    assert set(self.bags[c].tolist()) == bag
            else:
                raise AssertionError(f"unknown node kind {kind!r}")


def make_nice(
    decomposition: TreeDecomposition,
    tracer: Optional[Tracer] = None,
    label: str = "nice",
) -> Tuple[NiceDecomposition, Cost]:
    """Convert any tree decomposition into nice form.

    The node count grows to O(t * width); the width is unchanged.  The
    conversion is a local rewrite per decomposition edge, O(t * width) work
    and O(log n) depth on the PRAM (each chain is built independently); we
    charge that bound.
    """
    kinds: List[str] = []
    vertex: List[int] = []
    bags: List[np.ndarray] = []
    parent: List[int] = []

    def add(kind: str, v: int, bag) -> int:
        kinds.append(kind)
        vertex.append(v)
        bags.append(np.asarray(sorted(bag), dtype=np.int64))
        parent.append(NIL)
        return len(kinds) - 1

    def link(child: int, par: int) -> None:
        parent[child] = par

    def chain_up(node_id: int, from_bag, to_bag) -> int:
        """Stack forget/introduce nodes on top of ``node_id`` (whose bag is
        ``from_bag``) until the bag equals ``to_bag``; returns the top id."""
        cur = set(from_bag)
        nid = node_id
        for v in sorted(cur - set(to_bag)):
            cur.discard(v)
            new = add(FORGET, v, cur)
            link(nid, new)
            nid = new
        for v in sorted(set(to_bag) - cur):
            cur.add(v)
            new = add(INTRODUCE, v, cur)
            link(nid, new)
            nid = new
        return nid

    kids = decomposition.children()
    # Iterative post-order: build children before parents.
    built: dict = {}
    stack: List[Tuple[int, bool]] = [(decomposition.root, False)]
    while stack:
        dnode, expanded = stack.pop()
        cs = kids[dnode]
        if not expanded:
            stack.append((dnode, True))
            for c in cs:
                stack.append((c, False))
            continue
        bag = set(decomposition.bags[dnode].tolist())
        if not cs:
            leaf = add(LEAF, NIL, ())
            built[dnode] = chain_up(leaf, (), bag)
            continue
        arms = [
            chain_up(built[c], decomposition.bags[c].tolist(), bag)
            for c in cs
        ]
        while len(arms) > 1:
            a = arms.pop()
            b = arms.pop()
            j = add(JOIN, NIL, bag)
            link(a, j)
            link(b, j)
            arms.append(j)
        built[dnode] = arms[0]

    top = built[decomposition.root]
    nice_root = chain_up(
        top, decomposition.bags[decomposition.root].tolist(), ()
    )

    nd = NiceDecomposition(
        kinds=kinds,
        vertex=np.asarray(vertex, dtype=np.int64),
        bags=bags,
        parent=np.asarray(parent, dtype=np.int64),
        root=nice_root,
    )
    from ..pram import log2_ceil

    t = nd.num_nodes
    cost = Cost(max(2 * t, 1), max(1, 2 * log2_ceil(max(t, 2))))
    if tracer is not None:
        tracer.charge(cost, label=label, nodes=t)
    return nd, cost
