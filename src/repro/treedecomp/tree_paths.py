"""Tree -> layered path decomposition (Lemma 3.2 / Appendix A).

Layer numbers follow the recursion ``L`` of Appendix A: a leaf has layer 0;
a parent whose children's maximum layer is unique inherits it (it extends
that child's path), otherwise it starts a new path one layer up.  The number
of layers is O(log n) because a layer increase requires two children of equal
maximal layer (the node count at least halves per layer).

Within a layer, the nodes induce a forest of *paths* (each node has at most
one same-layer child — the unique maximum); vertices in layer ``i`` have no
children in a layer larger than ``i``.

Implementations:

* :func:`tree_layers_sequential` — direct post-order evaluation (reference).
* :func:`tree_layers_parallel` — expression-tree evaluation via tree
  contraction with the corrected Appendix A function family (O(n) work,
  O(log n) depth; full binary trees).
* :func:`layered_paths` — extracts and orders the paths (list ranking gives
  within-path positions in O(log n) depth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..pram import Cost, Tracer
from ..pram.layer_algebra import (
    IDENTITY,
    apply_fn,
    compose,
    layer_op,
    project_layer_op,
)
from ..pram.list_ranking import list_rank
from ..pram.tree_contraction import (
    Algebra,
    BinaryExpressionTree,
    evaluate_expression_tree,
)

__all__ = [
    "tree_layers_sequential",
    "tree_layers_parallel",
    "layered_paths",
    "PathDecomposition",
]

NIL = -1

_LAYER_ALGEBRA = Algebra(
    identity=IDENTITY,
    compose=compose,
    apply=apply_fn,
    project=project_layer_op,
    op=layer_op,
)


def _children_arrays(parent: np.ndarray, root: int) -> List[List[int]]:
    out: List[List[int]] = [[] for _ in range(parent.shape[0])]
    for v, p in enumerate(parent):
        if p != NIL:
            out[int(p)].append(v)
    return out


def tree_layers_sequential(
    parent: np.ndarray, root: Optional[int] = None
) -> np.ndarray:
    """Layer numbers by direct bottom-up evaluation (rooted tree or forest;
    pass ``root=None`` to treat every parentless node as a root)."""
    parent = np.asarray(parent, dtype=np.int64)
    n = parent.shape[0]
    kids = _children_arrays(parent, root)
    layers = np.zeros(n, dtype=np.int64)
    # Post-order via reversed BFS order (children before parents).
    roots = (
        [root]
        if root is not None
        else [v for v in range(n) if parent[v] == NIL]
    )
    order = list(roots)
    head = 0
    while head < len(order):
        order.extend(kids[order[head]])
        head += 1
    for v in reversed(order):
        cs = kids[v]
        if not cs:
            layers[v] = 0
            continue
        vals = sorted((int(layers[c]) for c in cs), reverse=True)
        if len(vals) == 1:
            # Unary node: the maximum is trivially unique.
            layers[v] = vals[0]
        elif vals[0] == vals[1]:
            layers[v] = vals[0] + 1
        else:
            layers[v] = vals[0]
    return layers


def tree_layers_parallel(
    parent: np.ndarray, root: int
) -> Tuple[np.ndarray, Cost]:
    """Layer numbers via tree contraction (full binary trees; Lemma A.1)."""
    parent = np.asarray(parent, dtype=np.int64)
    n = parent.shape[0]
    kids = _children_arrays(parent, root)
    left = np.full(n, NIL, dtype=np.int64)
    right = np.full(n, NIL, dtype=np.int64)
    for v, cs in enumerate(kids):
        if len(cs) == 2:
            left[v], right[v] = cs
        elif len(cs) != 0:
            raise ValueError("tree_layers_parallel needs a full binary tree")
    tree = BinaryExpressionTree(
        left=left, right=right, root=root, leaf_value=np.zeros(n, dtype=np.int64)
    )
    return evaluate_expression_tree(tree, _LAYER_ALGEBRA)


@dataclass(frozen=True)
class PathDecomposition:
    """The layered path decomposition of a rooted tree.

    ``layers[i]`` is the list of paths in layer ``i``; each path lists its
    nodes bottom-to-top (the last node's parent, if any, lies in a higher
    layer or is the tree root boundary).  ``layer_of[v]`` and ``path_of[v]``
    give each node's coordinates.
    """

    layers: List[List[List[int]]]
    layer_of: np.ndarray
    path_of: np.ndarray

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def all_paths_bottom_up(self) -> List[List[int]]:
        return [p for layer in self.layers for p in layer]


def layered_paths(
    parent: np.ndarray,
    root: Optional[int] = None,
    use_parallel_layers: bool = False,
    tracer: Optional[Tracer] = None,
    label: str = "layered-paths",
) -> Tuple[PathDecomposition, Cost]:
    """Decompose a rooted tree or forest into O(log n) layers of disjoint
    paths (Lemma 3.2): nodes in layer i have no children in layers > i."""
    parent = np.asarray(parent, dtype=np.int64)
    n = parent.shape[0]
    if use_parallel_layers:
        layer_of, cost = tree_layers_parallel(parent, root)
    else:
        layer_of = tree_layers_sequential(parent, root)
        cost = Cost(max(2 * n, 1), max(2 * n, 1))

    # Same-layer parent pointers form the path successor relation.
    succ = np.full(n, NIL, dtype=np.int64)
    for v in range(n):
        p = int(parent[v])
        if p != NIL and layer_of[p] == layer_of[v]:
            succ[v] = p
    ranks, rank_cost = list_rank(succ)
    cost = cost + rank_cost

    # Path identification: top node of each path (succ == NIL) anchors it.
    num_layers = int(layer_of.max(initial=0)) + 1
    path_of = np.full(n, NIL, dtype=np.int64)
    layers: List[List[List[int]]] = [[] for _ in range(num_layers)]
    tops = [v for v in range(n) if succ[v] == NIL]
    path_nodes: List[List[int]] = [[] for _ in tops]
    # Every node's path top, by pointer jumping (tops are the roots of the
    # successor forest).
    from ..pram.primitives import pointer_jump_roots

    succ_self = np.where(succ == NIL, np.arange(n, dtype=np.int64), succ)
    top_of, jump_cost = pointer_jump_roots(succ_self)
    cost = cost + jump_cost
    top_index = {int(v): i for i, v in enumerate(tops)}
    lengths = np.zeros(len(tops), dtype=np.int64)
    for v in range(n):
        lengths[top_index[int(top_of[v])]] += 1
    for i, v in enumerate(tops):
        path_nodes[i] = [NIL] * int(lengths[i])
    for v in range(n):
        pi = top_index[int(top_of[v])]
        # rank counts hops to the top; bottom-to-top ordering:
        position = int(lengths[pi]) - 1 - int(ranks[v])
        path_nodes[pi][position] = v
        path_of[v] = pi
    for i, v in enumerate(tops):
        layers[int(layer_of[v])].append(path_nodes[i])

    cost = cost + Cost.scan(max(n, 1)) + Cost.step(max(n, 1))
    if tracer is not None:
        tracer.charge(
            cost, label=label, layers=num_layers, paths=len(tops)
        )
    return (
        PathDecomposition(layers=layers, layer_of=layer_of, path_of=path_of),
        cost,
    )
