"""Tree decompositions: core class, Baker/Eppstein, min-fill, nice form,
layered path decomposition."""

from .decomposition import TreeDecomposition
from .baker import baker_decomposition, bfs_tree_darts
from .minfill import minfill_decomposition
from .nice import FORGET, INTRODUCE, JOIN, LEAF, NiceDecomposition, make_nice
from .tree_paths import (
    PathDecomposition,
    layered_paths,
    tree_layers_parallel,
    tree_layers_sequential,
)

__all__ = [
    "TreeDecomposition",
    "baker_decomposition",
    "bfs_tree_darts",
    "minfill_decomposition",
    "NiceDecomposition",
    "make_nice",
    "LEAF",
    "INTRODUCE",
    "FORGET",
    "JOIN",
    "PathDecomposition",
    "layered_paths",
    "tree_layers_parallel",
    "tree_layers_sequential",
]
