"""Tree decompositions: representation, validation, binarization.

Section 1.1 of the paper defines a tree decomposition by two axioms (every
vertex's bags form a contiguous nonempty subtree; every edge has a bag
containing both endpoints) and notes that interior nodes can be assumed to
have exactly two children "as we can split high-degree nodes and add empty
leaf nodes without changing the width".  :meth:`TreeDecomposition.binarize`
implements exactly that normalization, which the path-decomposition machinery
of Section 3.3 requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..graphs.csr import Graph

__all__ = ["TreeDecomposition"]

NIL = -1


@dataclass
class TreeDecomposition:
    """A rooted tree decomposition.

    Attributes
    ----------
    bags:
        ``bags[i]`` is the sorted vertex array of node ``i``.
    parent:
        ``parent[i]`` is the tree parent of node ``i`` (root: ``-1``).
    root:
        Index of the root node.
    """

    bags: List[np.ndarray]
    parent: np.ndarray
    root: int

    def __post_init__(self) -> None:
        self.parent = np.asarray(self.parent, dtype=np.int64)
        self.bags = [
            np.unique(np.asarray(b, dtype=np.int64)) for b in self.bags
        ]
        t = len(self.bags)
        if self.parent.shape != (t,):
            raise ValueError("parent array must cover every node")
        if t == 0:
            raise ValueError("a tree decomposition is nonempty")
        if not 0 <= self.root < t or self.parent[self.root] != NIL:
            raise ValueError("invalid root")
        if int(np.sum(self.parent == NIL)) != 1:
            raise ValueError("exactly one root expected")

    # -- shape -------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.bags)

    def width(self) -> int:
        """max |bag| - 1."""
        return max(int(b.size) for b in self.bags) - 1

    def children(self) -> List[List[int]]:
        out: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for i, p in enumerate(self.parent):
            if p != NIL:
                out[int(p)].append(i)
        return out

    def height(self) -> int:
        """Edge-height of the decomposition tree."""
        depth = np.zeros(self.num_nodes, dtype=np.int64)
        order = self.topological_order()
        for i in order[1:]:
            depth[i] = depth[self.parent[i]] + 1
        return int(depth.max(initial=0))

    def topological_order(self) -> List[int]:
        """Root-first order (parents before children)."""
        kids = self.children()
        order = [self.root]
        head = 0
        while head < len(order):
            order.extend(kids[order[head]])
            head += 1
        if len(order) != self.num_nodes:
            raise ValueError("decomposition tree is not connected")
        return order

    # -- validation --------------------------------------------------------

    def validate(self, graph: Graph) -> None:
        """Check the tree decomposition axioms for ``graph``.

        Raises ``ValueError`` with a description of the first violated axiom.
        """
        # Vertex coverage + subtree contiguity: for every vertex, the nodes
        # whose bags contain it must form one connected subtree.
        appears: List[List[int]] = [[] for _ in range(graph.n)]
        for i, bag in enumerate(self.bags):
            for v in bag:
                appears[int(v)].append(i)
        for v in range(graph.n):
            nodes = appears[v]
            if not nodes:
                raise ValueError(f"vertex {v} is in no bag")
            node_set = set(nodes)
            # Connected iff all nodes but one have their parent in the set
            # (restricted to the set, the parent relation has one root).
            roots = sum(
                1 for i in nodes if int(self.parent[i]) not in node_set
            )
            if roots != 1:
                raise ValueError(
                    f"bags containing vertex {v} are not contiguous"
                )
        # Edge coverage (check only the bags that contain one endpoint).
        bag_sets = [set(b.tolist()) for b in self.bags]
        for u, v in graph.iter_edges():
            if not any(v in bag_sets[i] for i in appears[u]):
                raise ValueError(f"edge ({u}, {v}) is covered by no bag")

    # -- normalization -----------------------------------------------------

    def binarize(self) -> "TreeDecomposition":
        """Equivalent decomposition where every interior node has exactly two
        children (split high-degree nodes, pad single children with empty
        leaves), without increasing the width."""
        bags: List[np.ndarray] = []
        parent: List[int] = []

        def add(bag: np.ndarray, par: int) -> int:
            bags.append(bag)
            parent.append(par)
            return len(bags) - 1

        kids = self.children()

        # Iterative structure copy (children attached under chains of
        # duplicated bags when a node has more than two of them).
        stack: List[Tuple[int, int]] = [(self.root, NIL)]
        while stack:
            node, par = stack.pop()
            new_id = add(self.bags[node], par)
            cs = kids[node]
            if len(cs) == 0:
                continue
            if len(cs) == 1:
                # Pad with an empty leaf to keep the node binary.
                stack.append((cs[0], new_id))
                add(np.empty(0, dtype=np.int64), new_id)
                continue
            # More than one child: build a chain of duplicate bags; each
            # chain node takes one child plus the rest of the chain.
            anchor = new_id
            for extra in cs[:-2]:
                stack.append((extra, anchor))
                anchor = add(self.bags[node], anchor)
            stack.append((cs[-2], anchor))
            stack.append((cs[-1], anchor))

        return TreeDecomposition(
            bags=bags, parent=np.asarray(parent, dtype=np.int64), root=0
        )

    def is_binary(self) -> bool:
        return all(len(c) in (0, 2) for c in self.children())
