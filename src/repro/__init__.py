"""repro — Parallel Planar Subgraph Isomorphism and Vertex Connectivity.

A production-quality reproduction of Gianinazzi & Hoefler (SPAA 2020).  The
public API lives at this top level; subpackages expose the substrates:

- :mod:`repro.pram` — simulated CREW PRAM (work--depth accounting).
- :mod:`repro.graphs` — CSR graphs, generators, BFS, connectivity.
- :mod:`repro.planar` — rotation-system embeddings, faces, surgery.
- :mod:`repro.cluster` — exponential start time clustering.
- :mod:`repro.treedecomp` — tree decompositions (Baker, min-fill, nice form).
- :mod:`repro.isomorphism` — the paper's core subgraph isomorphism engines.
- :mod:`repro.separating` — S-separating subgraph isomorphism.
- :mod:`repro.connectivity` — planar vertex connectivity.
- :mod:`repro.baselines` — comparators from Table 1.
"""

from .pram import Cost, Tracker

__version__ = "1.0.0"

__all__ = ["Cost", "Tracker", "__version__"]
