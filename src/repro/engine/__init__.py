"""Target-session engine: cached derived artifacts for batched queries.

See :mod:`repro.engine.session` for the caching :class:`TargetSession`,
:mod:`repro.engine.artifacts` for the provider protocol the drivers
consume, and :mod:`repro.engine.keys` for the content-addressed key scheme.

This package init is lazy (PEP 562) so that the drivers can import
``repro.engine.artifacts`` at module load without pulling the session
module (which imports the drivers back) into the import cycle.
"""

from typing import TYPE_CHECKING

__all__ = [
    "TargetSession",
    "CacheStats",
    "BatchResult",
    "ColdArtifacts",
    "target_fingerprint",
    "graph_fingerprint",
]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .artifacts import ColdArtifacts
    from .keys import graph_fingerprint, target_fingerprint
    from .session import BatchResult, CacheStats, TargetSession


def __getattr__(name):
    if name in ("TargetSession", "CacheStats", "BatchResult"):
        from . import session

        return getattr(session, name)
    if name == "ColdArtifacts":
        from .artifacts import ColdArtifacts

        return ColdArtifacts
    if name in ("target_fingerprint", "graph_fingerprint"):
        from . import keys

        return getattr(keys, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
