"""The artifact-provider protocol the end-to-end drivers consume.

Every driver (decide / find / list / exact count / separating / vertex
connectivity) spends most of its work on artifacts that depend only on the
*target* graph and the pattern's ``(k, d)`` — never on the pattern's edge
structure: EST clusterings, treewidth k-d covers, per-piece Baker/nice
decompositions, window decompositions, the face--vertex graph.  The drivers
therefore request these through a small provider object instead of building
them inline:

:class:`ColdArtifacts`
    The default, allocation-free provider — builds every artifact fresh and
    charges its construction to the caller's tracer exactly as the inline
    code used to.  One-shot driver calls are byte-for-byte unchanged.

:class:`~repro.engine.session.TargetSession`
    The caching provider — memoizes artifacts behind content-addressed
    keys, charges ``Cost(0, 0)`` on hits and reports the skipped
    construction cost so results can state an honest
    ``cold_equivalent_cost`` (see DESIGN.md, *Session engine & caching*).

Both implement the same artifact methods (including the per-piece DP
solve, which is itself a deterministic derived artifact) plus the two
amortization
hooks (:meth:`ColdArtifacts.amortization_mark` /
:meth:`ColdArtifacts.amortization_since`) the drivers use to mark results
``amortized`` and compute their cold-equivalent cost.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..pram import Cost, Tracer

__all__ = ["ColdArtifacts"]


class ColdArtifacts:
    """Build-everything-fresh provider (the one-shot drivers' default).

    Charges each construction to the caller's tracer through the same code
    paths the drivers used before the provider refactor, so cold results —
    verdicts, witnesses, counts, charged costs and trace totals — are
    identical to the pre-session library.
    """

    caching = False

    def __init__(self, graph, embedding) -> None:
        self.graph = graph
        self.embedding = embedding
        # Once-per-kind PackedOverflowWarning dedup scope: owned by the
        # provider so its lifetime matches the driver invocation (cold)
        # or the whole session (TargetSession) — never process-global.
        self.overflow_warned: set = set()
        # The planner's calibrating cost model (repro.engine.planner) —
        # provider-owned for the same lifetime reason: a cold provider
        # calibrates within one driver call, a session across its whole
        # query stream, and nothing leaks between sessions.
        from .planner import CostModel

        self.cost_model = CostModel()

    # -- artifacts ---------------------------------------------------------

    def charge_embedding(self, tracer: Tracer) -> None:
        """Charge the analytic Klein--Reif rotation-system embedding cost
        (a session charges it once and amortizes repeats)."""
        from ..planar.geometric import embedding_cost

        tracer.charge(embedding_cost(self.graph.n), label="embed")

    def cover(self, k: int, d: int, seed: int, tracer: Tracer):
        """A Parallel Treewidth k-d Cover (Theorem 2.4), built fresh."""
        from ..isomorphism.cover import treewidth_cover

        return treewidth_cover(
            self.graph, self.embedding, k, d, seed=seed, tracer=tracer
        )

    def separating_cover(
        self, marked: np.ndarray, k: int, d: int, seed: int, tracer: Tracer
    ):
        """A separating k-d cover (Section 5.2), built fresh."""
        from ..separating.cover import separating_cover

        return separating_cover(
            self.graph, self.embedding, marked, k, d, seed=seed,
            tracer=tracer,
        )

    def nice(self, decomposition, tracer: Optional[Tracer]):
        """Binarize + nice form of one piece's tree decomposition."""
        from ..treedecomp.nice import make_nice

        nice, _ = make_nice(decomposition.binarize(), tracer=tracer)
        return nice

    def window_decomposition(self, subgraph, tracer: Tracer):
        """Min-fill + nice decomposition of one deterministic-count window
        (``repro.isomorphism.counting``)."""
        from ..treedecomp.minfill import minfill_decomposition
        from ..treedecomp.nice import make_nice

        td, _ = minfill_decomposition(subgraph, tracer=tracer)
        nice, _ = make_nice(td.binarize(), tracer=tracer)
        return nice

    def solve_piece(
        self, piece, pattern, engine: str, tracer: Tracer,
        want_witness: bool, kernel: str = "packed",
    ):
        """Solve one cover piece of the Monte Carlo SI driver: nice
        decomposition + bounded-treewidth DP (+ witness recovery).

        The outcome is a deterministic function of (piece, pattern, engine
        flags), so a session caches it like any other derived artifact —
        repeated patterns across a batch skip the DP entirely.
        """
        from ..isomorphism.planar_si import _solve_piece

        return _solve_piece(
            piece, pattern, engine, tracer, want_witness, kernel, self
        )

    # -- piece-solve cache surface (the dispatch path's split view of
    # solve_piece: lookup at dispatch time, store at collect time) ---------

    def piece_solution_cached(
        self, piece, pattern, engine: str, tracer: Tracer,
        want_witness: bool, kernel: str = "packed",
    ) -> Tuple[bool, object]:
        """``(hit, value)`` for a cached piece solve; always a miss when
        cold.  On a hit the zero-cost cached leaf is charged to ``tracer``
        (what :meth:`solve_piece` would have done)."""
        return (False, None)

    def store_piece_solution(
        self, piece, pattern, engine: str, want_witness: bool,
        kernel: str, value, cold_cost: Cost,
    ) -> None:
        """Record a worker-computed piece solution; no-op when cold."""

    def subpattern_cached(
        self, piece, canon: Tuple[int, int], tracer: Tracer
    ) -> Tuple[bool, object]:
        """``(hit, table)`` for a shared-subpattern occurrence table
        (``repro.engine.shared``); always a miss when cold."""
        return (False, None)

    def store_subpattern(
        self, piece, canon: Tuple[int, int], table, cold_cost: Cost
    ) -> None:
        """Publish a per-piece subpattern table; no-op when cold."""

    def face_vertex(self, tracer: Tracer):
        """The bipartite face--vertex graph G' (Section 5.1)."""
        from ..planar.face_vertex import build_face_vertex_graph

        fv, fcost = build_face_vertex_graph(self.embedding)
        tracer.charge(fcost, label="face-vertex")
        return fv

    def sub_provider(self, graph, embedding) -> "ColdArtifacts":
        """Provider for a derived target (vertex connectivity's G')."""
        child = ColdArtifacts(graph, embedding)
        # One driver invocation = one warning scope, even across the
        # derived-target recursion.
        child.overflow_warned = self.overflow_warned
        return child

    # -- amortization hooks ------------------------------------------------

    def amortization_mark(self) -> Tuple[int, Cost]:
        """Snapshot of (cache hits, saved cost) — always zero when cold."""
        return (0, Cost.zero())

    def amortization_since(self, mark: Tuple[int, Cost]) -> Tuple[int, Cost]:
        """Hits and saved cost since ``mark`` — always zero when cold."""
        return (0, Cost.zero())
