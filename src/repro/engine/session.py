"""The target-session engine: one target graph, memoized derived artifacts.

Every per-query driver spends the bulk of its charged work on artifacts
determined by the *target* and the pattern's ``(k, d)`` alone — the
rotation-system embedding charge, EST clusterings, Theorem 2.4 k-d covers,
per-piece Baker/nice decompositions, the deterministic-count window
decompositions and the face--vertex graph G' — plus, one level up, the
per-piece DP solutions themselves, which are deterministic functions of
(piece, pattern, engine) and therefore cacheable like any artifact.  A :class:`TargetSession`
owns one target and memoizes those artifacts behind content-addressed keys
(see ``repro.engine.keys``), so an N-pattern workload pays one cover sweep
plus N cheap DP passes instead of N cold solves — the amortization
Eppstein's diameter-based approach exploits and the repeated-probe loop of
Theorem 4.2 performs internally.

Charged-cost policy (paper-faithful; see DESIGN.md, *Session engine &
caching*):

* construction cost is charged **once**, on first build, exactly as the
  cold driver would charge it;
* a cache hit charges ``Cost(0, 0)`` and records a zero-cost labeled leaf
  (with ``saved_work`` / ``saved_depth`` counters) in the caller's trace,
  so ``trace.cost == result.cost`` always holds;
* every result built over a session reports ``amortized=True`` whenever a
  hit occurred and a ``cold_equivalent_cost`` whose **work** equals the
  one-shot driver's charge exactly (work is additive, so where a skipped
  construction would have run does not matter) and whose **depth** is a
  conservative upper bound (skipped depth is re-added sequentially, while
  a cold run would absorb some of it under parallel-region maxima) —
  Table-1 comparisons against cold numbers stay honest.

Invalidation is explicit (:meth:`TargetSession.invalidate`); because every
key embeds the target fingerprint, a mutated target can never be served a
stale artifact even without invalidation — a new session over the mutated
graph addresses a disjoint key space (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.csr import Graph
from ..planar.embedding import PlanarEmbedding
from ..planar.geometric import embedding_cost
from ..pram import Cost, Tracer
from .artifacts import ColdArtifacts
from .keys import (
    decomposition_fingerprint,
    graph_fingerprint,
    mask_fingerprint,
    piece_fingerprint,
    target_fingerprint,
)

__all__ = ["CacheStats", "TargetSession", "BatchResult"]


@dataclass
class _Entry:
    """One cached artifact: its value plus the cold construction cost a
    one-shot driver would charge for it (used for saved-cost accounting)."""

    value: object
    cold_cost: Cost


class _Amortization:
    """Mutable (hits, saved cost) accumulator shared by a session and its
    derived sub-sessions (vertex connectivity's G' session), so a driver's
    ``amortization_since`` sees hits that happened anywhere downstream."""

    __slots__ = ("hits", "saved")

    def __init__(self) -> None:
        self.hits = 0
        self.saved = Cost.zero()

    def record(self, saved: Cost) -> None:
        self.hits += 1
        self.saved = self.saved + saved


class CacheStats:
    """Counter surface of a session's cache: per-kind hits/misses plus the
    charged (built) and skipped (saved) cost totals.

    ``saved`` is the cost the cold drivers would have charged for the
    artifacts served from cache — the amortization a Table-1 style
    comparison must add back (``cold_equivalent_cost = cost + saved``).
    """

    def __init__(self) -> None:
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.evictions: Dict[str, int] = {}
        self.saved = Cost.zero()
        self.built = Cost.zero()

    def record_hit(self, kind: str, saved: Cost) -> None:
        self.hits[kind] = self.hits.get(kind, 0) + 1
        self.saved = self.saved + saved

    def record_miss(self, kind: str, built: Cost) -> None:
        self.misses[kind] = self.misses.get(kind, 0) + 1
        self.built = self.built + built

    def record_eviction(self, kind: str, count: int = 1) -> None:
        self.evictions[kind] = self.evictions.get(kind, 0) + count

    @property
    def hit_count(self) -> int:
        return sum(self.hits.values())

    @property
    def miss_count(self) -> int:
        return sum(self.misses.values())

    @property
    def eviction_count(self) -> int:
        return sum(self.evictions.values())

    def as_dict(self) -> dict:
        """JSON-serializable snapshot (the CLI's ``--session-stats``)."""
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "evictions": dict(self.evictions),
            "hit_count": self.hit_count,
            "miss_count": self.miss_count,
            "eviction_count": self.eviction_count,
            "saved_work": self.saved.work,
            "saved_depth": self.saved.depth,
            "built_work": self.built.work,
            "built_depth": self.built.depth,
        }

    def format(self) -> str:
        """Render the per-kind hit/miss table."""
        kinds = sorted(set(self.hits) | set(self.misses) | set(self.evictions))
        lines = [f"{'artifact':<16} {'hits':>8} {'misses':>8} {'evicted':>8}"]
        lines.append("-" * len(lines[0]))
        for kind in kinds:
            lines.append(
                f"{kind:<16} {self.hits.get(kind, 0):>8,}"
                f" {self.misses.get(kind, 0):>8,}"
                f" {self.evictions.get(kind, 0):>8,}"
            )
        lines.append(
            f"saved work={self.saved.work:,} depth={self.saved.depth:,}"
            f"  (built work={self.built.work:,})"
        )
        return "\n".join(lines)


@dataclass
class BatchResult:
    """Outcome of :meth:`TargetSession.decide_batch`.

    ``results[i]`` is the full per-query result for ``patterns[i]``, each
    byte-identical (verdict, witness, rounds) to the one-shot driver with
    the same seed.  ``cost`` sequentially composes the actually charged
    per-query costs; ``cold_equivalent_cost`` what N independent cold
    solves would have charged.
    """

    results: List
    cost: Cost
    cold_equivalent_cost: Cost
    amortized_queries: int
    cache_stats: dict = field(default_factory=dict)
    deduped_queries: int = 0
    shared: bool = False
    trace: Optional[object] = None

    @property
    def amortized(self) -> bool:
        return self.amortized_queries > 0


class TargetSession(ColdArtifacts):
    """A caching artifact provider bound to one target graph.

    Implements the same provider protocol as :class:`ColdArtifacts` (the
    drivers cannot tell them apart except through the amortization hooks)
    plus per-query wrapper methods (:meth:`decide`, :meth:`find_occurrence`,
    :meth:`list_occurrences`, :meth:`count_exact`,
    :meth:`decide_separating`, :meth:`vertex_connectivity`) and the batched
    :meth:`decide_batch`.

    Parameters
    ----------
    graph:
        The target.  Immutable (as all :class:`Graph` are); mutations must
        go through a new session (content keys make stale serving
        impossible regardless).
    embedding:
        A genus-0 rotation system for ``graph``.  When omitted, one is
        computed once (the memoized "rotation-system embedding" artifact)
        via the DMP embedder.
    """

    caching = True

    def __init__(
        self,
        graph: Graph,
        embedding: Optional[PlanarEmbedding] = None,
        stats: Optional[CacheStats] = None,
        _amort: Optional[_Amortization] = None,
    ) -> None:
        if embedding is None:
            from ..planar.dmp import embed_planar

            embedding = embed_planar(graph)
        super().__init__(graph, embedding)
        self.target_key = target_fingerprint(graph, embedding)
        self.stats = stats if stats is not None else CacheStats()
        self._amort = _amort if _amort is not None else _Amortization()
        self._cache: Dict[tuple, _Entry] = {}
        self._children: Dict[tuple, "TargetSession"] = {}

    # -- cache plumbing ----------------------------------------------------

    def derived_keys(self) -> List[tuple]:
        """Every content-addressed key currently held (children included)."""
        keys = list(self._cache.keys())
        for key, child in self._children.items():
            keys.append(key)
            keys.extend(child.derived_keys())
        return keys

    def invalidate(self) -> None:
        """Drop every cached artifact (and derived sub-sessions).  Stats
        keep accumulating across invalidations; each dropped entry is
        recorded as an eviction under its artifact kind — including the
        ``("subsession", fp)`` keys themselves, which hold the derived
        child sessions: they are derived keys like any other (they appear
        in :meth:`derived_keys`, which the pool's LRU accounts by), so
        dropping one is an eviction too."""
        for key in self._cache:
            self.stats.record_eviction(key[0])
        for key, child in self._children.items():
            self.stats.record_eviction(key[0])
            child.invalidate()
        self._cache.clear()
        self._children.clear()

    def _hit(self, kind: str, entry: _Entry, tracer: Optional[Tracer]):
        self.stats.record_hit(kind, entry.cold_cost)
        self._amort.record(entry.cold_cost)
        if tracer is not None:
            tracer.charge(
                Cost.zero(),
                label=f"{kind}-cached",
                amortized=1,
                saved_work=entry.cold_cost.work,
                saved_depth=entry.cold_cost.depth,
            )
        return entry.value

    def _store(self, kind: str, key: tuple, value, cold_cost: Cost) -> None:
        self.stats.record_miss(kind, cold_cost)
        self._cache[key] = _Entry(value, cold_cost)

    # -- the provider protocol (caching overrides) -------------------------

    def charge_embedding(self, tracer: Tracer) -> None:
        key = ("embed", self.target_key)
        entry = self._cache.get(key)
        if entry is not None:
            self._hit("embed", entry, tracer)
            return
        cost = embedding_cost(self.graph.n)
        tracer.charge(cost, label="embed")
        self._store("embed", key, None, cost)

    def _clustering(
        self, beta: float, seed: int, tracer: Tracer
    ) -> Tuple[object, Cost]:
        """Per-``(beta, seed)`` EST clustering; returns (clustering, the
        cold construction cost, charged only on first build)."""
        key = ("clustering", self.target_key, float(beta), int(seed))
        entry = self._cache.get(key)
        if entry is not None:
            return self._hit("clustering", entry, tracer), entry.cold_cost
        from ..cluster.est import est_clustering

        clustering, cost = est_clustering(
            self.graph, beta=beta, seed=seed, tracer=tracer
        )
        self._store("clustering", key, clustering, cost)
        return clustering, cost

    def cover(self, k: int, d: int, seed: int, tracer: Tracer):
        key = ("cover", self.target_key, int(k), int(d), int(seed))
        entry = self._cache.get(key)
        if entry is not None:
            return self._hit("cover", entry, tracer)
        from ..isomorphism.cover import treewidth_cover

        clustering, cl_cost = self._clustering(2.0 * k, seed, tracer)
        cover = treewidth_cover(
            self.graph, self.embedding, k, d, seed=seed, tracer=tracer,
            clustering=clustering,
        )
        # The cold-equivalent cover cost includes the clustering a cold
        # build would run inline (the cover span above charged only the
        # windows/decompositions when the clustering came from cache).
        self._store("cover", key, cover, cl_cost + cover.cost)
        return cover

    def separating_cover(
        self, marked: np.ndarray, k: int, d: int, seed: int, tracer: Tracer
    ):
        key = (
            "sep-cover",
            self.target_key,
            mask_fingerprint(np.asarray(marked, dtype=bool)),
            int(k),
            int(d),
            int(seed),
        )
        entry = self._cache.get(key)
        if entry is not None:
            return self._hit("sep-cover", entry, tracer)
        from ..separating.cover import separating_cover

        clustering, cl_cost = self._clustering(2.0 * k, seed, tracer)
        cover = separating_cover(
            self.graph, self.embedding, marked, k, d, seed=seed,
            tracer=tracer, clustering=clustering,
        )
        self._store("sep-cover", key, cover, cl_cost + cover.cost)
        return cover

    def nice(self, decomposition, tracer: Optional[Tracer]):
        key = ("nice", self.target_key, decomposition_fingerprint(decomposition))
        entry = self._cache.get(key)
        if entry is not None:
            return self._hit("nice", entry, tracer)
        from ..treedecomp.nice import make_nice

        nice, cost = make_nice(decomposition.binarize(), tracer=tracer)
        self._store("nice", key, nice, cost)
        return nice

    def window_decomposition(self, subgraph, tracer: Tracer):
        key = ("window", self.target_key, graph_fingerprint(subgraph))
        entry = self._cache.get(key)
        if entry is not None:
            return self._hit("window", entry, tracer)
        from ..treedecomp.minfill import minfill_decomposition
        from ..treedecomp.nice import make_nice

        td, td_cost = minfill_decomposition(subgraph, tracer=tracer)
        nice, nice_cost = make_nice(td.binarize(), tracer=tracer)
        self._store("window", key, nice, td_cost + nice_cost)
        return nice

    def _piece_key(
        self, piece, pattern, engine: str, want_witness: bool, kernel: str
    ) -> tuple:
        return (
            "piece-dp",
            self.target_key,
            piece_fingerprint(piece),
            graph_fingerprint(pattern.graph),
            engine,
            kernel,
            bool(want_witness),
        )

    def solve_piece(
        self, piece, pattern, engine: str, tracer: Tracer,
        want_witness: bool, kernel: str = "packed",
    ):
        hit, value = self.piece_solution_cached(
            piece, pattern, engine, tracer, want_witness, kernel
        )
        if hit:
            return value
        # The stored cold cost must equal what a one-shot driver charges for
        # this piece: the charged delta on the branch tracer *plus* whatever
        # nested artifacts (the nice decomposition) were themselves served
        # from cache during the build.
        before = tracer.cost
        mark = self.amortization_mark()
        witness = super().solve_piece(
            piece, pattern, engine, tracer, want_witness, kernel
        )
        after = tracer.cost
        _, nested_saved = self.amortization_since(mark)
        charged = Cost(after.work - before.work, after.depth - before.depth)
        self.store_piece_solution(
            piece, pattern, engine, want_witness, kernel, witness,
            charged + nested_saved,
        )
        return witness

    def piece_solution_cached(
        self, piece, pattern, engine: str, tracer: Tracer,
        want_witness: bool, kernel: str = "packed",
    ):
        key = self._piece_key(piece, pattern, engine, want_witness, kernel)
        entry = self._cache.get(key)
        if entry is not None:
            return (True, self._hit("piece-dp", entry, tracer))
        return (False, None)

    def store_piece_solution(
        self, piece, pattern, engine: str, want_witness: bool,
        kernel: str, value, cold_cost: Cost,
    ) -> None:
        key = self._piece_key(piece, pattern, engine, want_witness, kernel)
        self._store("piece-dp", key, value, cold_cost)

    def _subpattern_key(self, piece, canon: Tuple[int, int]) -> tuple:
        return ("piece-sub", self.target_key, piece_fingerprint(piece), canon)

    def subpattern_cached(
        self, piece, canon: Tuple[int, int], tracer: Optional[Tracer]
    ) -> Tuple[bool, object]:
        """Shared-subpattern occurrence table of ``piece`` for the
        canonical subpattern ``canon`` (``repro.engine.shared``) — cached
        like any derived artifact, so a repeated shared batch skips the
        extension cascade outright."""
        entry = self._cache.get(self._subpattern_key(piece, canon))
        if entry is not None:
            return (True, self._hit("piece-sub", entry, tracer))
        return (False, None)

    def store_subpattern(
        self, piece, canon: Tuple[int, int], table, cold_cost: Cost
    ) -> None:
        self._store(
            "piece-sub", self._subpattern_key(piece, canon), table, cold_cost
        )

    def face_vertex(self, tracer: Tracer):
        key = ("face-vertex", self.target_key)
        entry = self._cache.get(key)
        if entry is not None:
            return self._hit("face-vertex", entry, tracer)
        from ..planar.face_vertex import build_face_vertex_graph

        fv, fcost = build_face_vertex_graph(self.embedding)
        tracer.charge(fcost, label="face-vertex")
        self._store("face-vertex", key, fv, fcost)
        return fv

    def sub_provider(self, graph, embedding) -> "TargetSession":
        key = ("subsession", target_fingerprint(graph, embedding))
        child = self._children.get(key)
        if child is None:
            child = TargetSession(
                graph, embedding, stats=self.stats, _amort=self._amort
            )
            # Derived sub-sessions share the parent's once-per-kind
            # PackedOverflowWarning scope: one session, one warning.
            child.overflow_warned = self.overflow_warned
            self._children[key] = child
        return child

    # -- amortization hooks ------------------------------------------------

    def amortization_mark(self) -> Tuple[int, Cost]:
        return (self._amort.hits, self._amort.saved)

    def amortization_since(self, mark: Tuple[int, Cost]) -> Tuple[int, Cost]:
        hits0, saved0 = mark
        saved = Cost(
            self._amort.saved.work - saved0.work,
            self._amort.saved.depth - saved0.depth,
        )
        return (self._amort.hits - hits0, saved)

    # -- per-query wrappers ------------------------------------------------

    def decide(self, pattern, seed: int = 0, **kwargs):
        """Session-backed :func:`~repro.isomorphism.planar_si.decide_subgraph_isomorphism`."""
        from ..isomorphism.planar_si import decide_subgraph_isomorphism

        return decide_subgraph_isomorphism(
            self.graph, self.embedding, pattern, seed, artifacts=self,
            **kwargs,
        )

    def find_occurrence(self, pattern, seed: int = 0, **kwargs):
        """Session-backed :func:`~repro.isomorphism.planar_si.find_occurrence`."""
        from ..isomorphism.planar_si import find_occurrence

        return find_occurrence(
            self.graph, self.embedding, pattern, seed, artifacts=self,
            **kwargs,
        )

    def list_occurrences(self, pattern, seed: int = 0, **kwargs):
        """Session-backed :func:`~repro.isomorphism.listing.list_occurrences`."""
        from ..isomorphism.listing import list_occurrences

        return list_occurrences(
            self.graph, self.embedding, pattern, seed, artifacts=self,
            **kwargs,
        )

    def count_exact(self, pattern, **kwargs):
        """Session-backed :func:`~repro.isomorphism.counting.count_occurrences_exact`."""
        from ..isomorphism.counting import count_occurrences_exact

        return count_occurrences_exact(
            self.graph, self.embedding, pattern, artifacts=self, **kwargs
        )

    def decide_separating(self, marked, pattern, seed: int = 0, **kwargs):
        """Session-backed :func:`~repro.separating.driver.decide_separating_isomorphism`."""
        from ..separating.driver import decide_separating_isomorphism

        return decide_separating_isomorphism(
            self.graph, self.embedding, marked, pattern, seed,
            artifacts=self, **kwargs,
        )

    def vertex_connectivity(self, seed: int = 0, **kwargs):
        """Session-backed :func:`~repro.connectivity.planar_vc.planar_vertex_connectivity`."""
        from ..connectivity.planar_vc import planar_vertex_connectivity

        return planar_vertex_connectivity(
            self.graph, self.embedding, seed=seed, artifacts=self, **kwargs
        )

    def decide_batch(
        self, patterns: Sequence, seed: int = 0, plan=None, **kwargs
    ) -> BatchResult:
        """Decide every pattern against this target, sharing artifacts.

        Identical in-flight patterns are deduplicated first (request
        coalescing): each distinct pattern is solved once and the result
        fanned out in input order — duplicate entries carry a zero-cost
        trace, count as ``batch-dedup`` hits in :class:`CacheStats`, and
        keep the original's ``cold_equivalent_cost`` so Table-1 style
        accounting still reflects every query.

        With ``plan=None`` (default), queries run in input order with the
        *same seed schedule* the one-shot driver uses, so ``results[i]``
        is byte-identical (verdict, witness, rounds used) to
        ``decide_subgraph_isomorphism(graph, embedding, patterns[i], seed)``.
        Patterns of equal ``(k, d)`` share one cover sweep per round;
        patterns of equal ``k`` additionally share the per-seed EST
        clusterings; every query after the first reuses the per-piece nice
        decompositions, and *repeated* patterns reuse the per-piece DP
        solutions outright — that is where the >=3x warm wall-clock win of
        ``benchmarks/bench_batch.py`` comes from.

        With ``plan="auto"`` the planner takes over: batches of two or
        more distinct connected patterns run the shared-subpattern path
        (``repro.engine.shared``) — one Theorem 2.4 cover per round at
        ``(k_max, d_max)`` and per-piece occurrence tables computed once
        per shared canonical subpattern.  Verdicts keep the one-sided
        Monte Carlo guarantee but draw different covers, so they are
        verdict-equal, not byte-identical, to the per-pattern path (which
        is why sharing is opt-in).  The shared charge lives on
        ``BatchResult.cost``/``trace``; per-result costs are zero.
        """
        from .keys import pattern_fingerprint

        unique: List = []
        assign: List[int] = []
        index_of: Dict[str, int] = {}
        for pattern in patterns:
            fp = pattern_fingerprint(pattern)
            if fp not in index_of:
                index_of[fp] = len(unique)
                unique.append(pattern)
            assign.append(index_of[fp])
        deduped = len(patterns) - len(unique)

        if (
            plan == "auto"
            and len(unique) >= 2
            and all(p.is_connected() for p in unique)
        ):
            return self._decide_batch_shared(
                unique, assign, deduped, seed, **kwargs
            )

        unique_results: List = []
        total = Cost.zero()
        cold = Cost.zero()
        amortized_queries = 0
        results: List = []
        for i, pattern in enumerate(patterns):
            uidx = assign[i]
            if uidx < len(unique_results):
                original = unique_results[uidx]
                result = self._dedup_result(original)
            else:
                result = self.decide(
                    pattern, seed=seed, plan=plan, **kwargs
                )
                unique_results.append(result)
            results.append(result)
            total = total + result.cost
            cold = cold + (result.cold_equivalent_cost or result.cost)
            if result.amortized:
                amortized_queries += 1
        return BatchResult(
            results=results,
            cost=total,
            cold_equivalent_cost=cold,
            amortized_queries=amortized_queries,
            cache_stats=self.stats.as_dict(),
            deduped_queries=deduped,
        )

    def _dedup_result(self, original):
        """Fan-out copy of a duplicate query's result: same verdict and
        witness, zero charged cost (a fresh zero-cost trace keeps
        ``result.trace.cost == result.cost``), the original's
        cold-equivalent charge, and a ``batch-dedup`` CacheStats hit whose
        saved cost is the warm re-solve the duplicate skipped."""
        import dataclasses

        tracer = Tracer("decide-si")
        self.stats.record_hit("batch-dedup", original.cost)
        tracer.charge(
            Cost.zero(),
            label="batch-dedup-cached",
            amortized=1,
            saved_work=original.cost.work,
            saved_depth=original.cost.depth,
        )
        return dataclasses.replace(
            original,
            cost=Cost.zero(),
            trace=tracer.root,
            amortized=True,
            cold_equivalent_cost=(
                original.cold_equivalent_cost or original.cost
            ),
        )

    def _decide_batch_shared(
        self, unique: List, assign: List[int], deduped: int, seed: int,
        **kwargs,
    ) -> BatchResult:
        """The ``plan="auto"`` shared-subpattern path (see
        :meth:`decide_batch`)."""
        from .shared import decide_batch_shared

        shared_kwargs = {
            key: value
            for key, value in kwargs.items()
            if key in (
                "rounds", "confidence_log_factor", "want_witness",
                "engine", "kernel", "cap",
            )
            and value is not None
        }
        mark = self.amortization_mark()
        unique_results, tracer = decide_batch_shared(
            self, unique, seed=seed, **shared_kwargs
        )
        _, saved = self.amortization_since(mark)
        for _ in range(deduped):
            self.stats.record_hit("batch-dedup", Cost.zero())
        results = [unique_results[uidx] for uidx in assign]
        return BatchResult(
            results=results,
            cost=tracer.cost,
            cold_equivalent_cost=tracer.cost + saved,
            amortized_queries=len(results),
            cache_stats=self.stats.as_dict(),
            deduped_queries=deduped,
            shared=True,
            trace=tracer.root,
        )
