"""Cost-based query planning: predict, choose, explain, calibrate.

The library exposes the paper's Table-1 variant space — parallel
(Section 3.3) vs sequential (Section 3.2) engines, packed vs reference DP
kernels, k-d vs separating covers, cold vs session-warm providers — and
until now every caller hard-coded the choice.  This module turns the
executable Cost model into a *planner*:

1. :class:`QueryStats` gathers cheap statistics about one (target,
   pattern, mode) query: ``n``, ``m``, pattern size/diameter, the
   connected-subpattern count ``|C(H)|`` (Eppstein's state-richness bound,
   computed from the precomputed adjacency bitmasks), the packed-code bit
   demand (overflow risk), and — when the provider is a caching session —
   which artifacts are already warm.

2. :class:`CostModel` predicts a per-phase ``Cost`` (embed / cover / dp)
   for every variant from closed-form bases fitted against recorded
   ``trace.cost`` totals of the existing drivers, and *calibrates itself
   online*: every executed plan feeds its actual charged cost back through
   :meth:`CostModel.observe`, which maintains an EMA correction ratio per
   (mode, engine) pair.  The model lives on the artifact provider (one per
   session / per cold driver invocation), never in module globals.

3. :func:`plan_query` enumerates the variants, scores each by Brent time
   ``ceil(W/P) + D`` at the plan's processor count, and returns an
   explainable :class:`QueryPlan` — chosen variant, predicted cost,
   per-phase breakdown, scored alternatives and human-readable rationale.
   All six drivers accept it via ``plan=`` (or build one with
   ``plan="auto"``); explicit ``engine=`` / ``kernel=`` / ``backend=``
   arguments always override the plan's choice.

Fitted bases (n=256..4096 grids, C4/C5/P4, both engines; see
``benchmarks/bench_planner.py`` for the predicted-vs-actual error report):

* ``W_dp(seq)  ~ c * rounds * n * k * |C(H)| * (w+1)`` with ``c ~ 6``
* ``W_dp(par)  ~ 10 * (k/4) * W_dp(seq)`` (measured 9–11x at k=4,
  ~21x at the vc 8-cycle probes)
* ``D_dp(seq)  ~ rounds * W_round / pieces``, ``pieces ~ 2.5 * sqrt(n)``
* ``D_dp(par)  ~ 1.5 * rounds * k * log2(n)^2``
* ``W_cover    ~ 7 * rounds * (n + m) * log2(n)``, polylog depth
* embed: exactly :func:`~repro.planar.geometric.embedding_cost`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..pram import Cost
from ..pram.cost import log2_ceil

__all__ = [
    "QueryStats",
    "CostModel",
    "DEFAULT_PRIORS",
    "QueryPlan",
    "plan_query",
    "resolve_plan",
    "MODES",
]

#: Query modes the planner understands, with their cover family.
MODES: Dict[str, str] = {
    "decide": "kd",
    "witness": "kd",
    "list": "kd",
    "count": "window",
    "separating": "separating",
    "vc": "separating",
}

# Work multipliers on top of the decide base for the heavier modes
# (listing adds enumeration sweeps; exact counting runs the window DP per
# window; vertex connectivity runs O(1) separating probes on G').  These
# are starting points — the EMA calibration refines them per provider.
_MODE_WORK_FACTOR = {
    "decide": 1.0,
    "witness": 1.15,
    "list": 1.6,
    "count": 2.5,
    "separating": 1.25,
    "vc": 8.0,
}

# Packed int64 codes spend ~log2(w+2) bits per pattern vertex (base-
# (|bag|+2) digits), plus one side bit per vertex for the separating
# kernels' side sets.  Above this usable budget the packed kernels would
# warn and fall back — plan the reference kernel outright instead.
_PACKED_BIT_BUDGET = 60

#: Committed calibration priors: actual/predicted (work, depth) EMA
#: ratios per (mode, engine), taken from the state the BENCH_PR7 regret
#: workload (16 mixed decide queries) converges to.  The sequential
#: ratios agree within ~10% across the bench scales (16x16 and 24x24
#: grids; BENCH_PR7.json records the 24x24 run).  The parallel ratios
#: come from the 16x16 run, the only scale whose cold-start transient
#: explores the parallel engine: its work ratio folds the exploration
#: overruns into a standing handicap that encodes what the closed forms
#: underpredict — at P=256 the sequential engine actually beats parallel
#: by 1.4-1.8x on the cyclic patterns — and thereby keeps the engine
#: ordering stable.  A fresh :class:`CostModel` seeds its corrections
#: from these, so a fresh server plans its first queries from the
#: converged regime instead of re-paying the exploration regret
#: (previously the first half of any workload was a documented
#: cold-start transient).  ``_mode_prior`` still projects onto engines
#: absent from the priors, and :meth:`CostModel.observe` keeps refining
#: online exactly as before.
DEFAULT_PRIORS: Dict[Tuple[str, str], Tuple[float, float]] = {
    ("decide", "sequential"): (1.10, 1.25),
    ("decide", "parallel"): (1.91, 0.58),
}


@dataclass(frozen=True)
class QueryStats:
    """Cheap statistics the estimator consumes (no cover is built)."""

    n: int
    m: int
    k: int
    d: int
    subpatterns: int  # |C(H)|
    mode: str
    rounds: int
    packed_bits: int
    overflow_risk: bool
    warm_cover_rounds: int = 0  # covers already cached for this (k, d, seed..)
    warm_piece_kinds: Tuple[Tuple[str, str], ...] = ()  # (engine, kernel)
    cluster_width: Optional[int] = None  # achieved width, if a cover is warm

    @property
    def width_estimate(self) -> int:
        """Achieved EST cluster width when a warm cover recorded one,
        else the Theorem 2.4 heuristic ``~2d + 1``."""
        if self.cluster_width is not None:
            return self.cluster_width
        return 2 * self.d + 1


def gather_stats(
    provider,
    pattern,
    mode: str,
    seed: int = 0,
    rounds: Optional[int] = None,
) -> QueryStats:
    """Collect :class:`QueryStats` for one query against ``provider``.

    Only O(n) / O(2^k) facts are touched: graph sizes, the memoized
    pattern statistics, and (for caching sessions) a scan of the cache
    keyspace for warm covers and per-piece DP solutions of this pattern.
    """
    if mode not in MODES:
        raise ValueError(f"unknown query mode {mode!r}")
    graph = provider.graph
    n = int(graph.n)
    m = int(graph.m)
    k = pattern.k
    d = pattern.diameter()
    sub = pattern.connected_subpattern_count()
    if rounds is None:
        rounds = max(1, math.ceil(2.0 * math.log2(max(n, 2))))
    width_guess = 2 * d + 1
    packed_bits = k * max(1, math.ceil(math.log2(width_guess + 2)))
    if MODES[mode] == "separating":
        packed_bits += k  # side-set high bits
    warm_rounds = 0
    warm_kinds: List[Tuple[str, str]] = []
    cluster_width: Optional[int] = None
    if getattr(provider, "caching", False):
        from .keys import graph_fingerprint

        cache = provider._cache
        for r in range(rounds):
            entry = cache.get(
                ("cover", provider.target_key, k, d, seed + r)
            )
            if entry is not None:
                warm_rounds += 1
                if cluster_width is None:
                    cluster_width = max(
                        (p.decomposition.width() for p in entry.value.pieces),
                        default=width_guess,
                    )
        pattern_fp = graph_fingerprint(pattern.graph)
        for key in cache:
            if key[0] == "piece-dp" and key[3] == pattern_fp:
                kind = (key[4], key[5])
                if kind not in warm_kinds:
                    warm_kinds.append(kind)
    return QueryStats(
        n=n,
        m=m,
        k=k,
        d=d,
        subpatterns=sub,
        mode=mode,
        rounds=int(rounds),
        packed_bits=packed_bits,
        overflow_risk=packed_bits > _PACKED_BIT_BUDGET,
        warm_cover_rounds=warm_rounds,
        warm_piece_kinds=tuple(warm_kinds),
        cluster_width=cluster_width,
    )


class CostModel:
    """Closed-form per-phase Cost predictor with EMA online calibration.

    One instance per artifact provider (``provider.cost_model``): cold
    providers calibrate within a single driver invocation, sessions
    accumulate calibration across their whole query stream.  Never stored
    in module globals (the PR-5 leaky-state rule).
    """

    #: EMA smoothing for observed/predicted correction ratios.
    alpha = 0.5
    #: Correction ratios are clamped to this band so one pathological
    #: observation cannot invert the engine ordering.
    ratio_band = (0.2, 5.0)

    def __init__(
        self,
        priors: Optional[Dict[Tuple[str, str], Tuple[float, float]]] = None,
    ) -> None:
        self.coeffs: Dict[str, float] = {
            "dp_seq": 3.0,
            "par_ratio": 10.0,
            "cover": 7.0,
            "pieces_per_sqrt_n": 2.5,
            "par_depth": 1.5,
        }
        # (mode, engine) -> EMA of actual/predicted charged work, seeded
        # from the committed priors (pass ``priors={}`` for a deliberately
        # uncalibrated model, e.g. to measure the cold-start transient).
        if priors is None:
            priors = DEFAULT_PRIORS
        self._work_ratio: Dict[Tuple[str, str], float] = {
            key: work for key, (work, _depth) in priors.items()
        }
        self._depth_ratio: Dict[Tuple[str, str], float] = {
            key: depth for key, (_work, depth) in priors.items()
        }
        self.observations = 0

    # -- prediction --------------------------------------------------------

    def estimate_phases(
        self, stats: QueryStats, engine: str, warm: bool
    ) -> Dict[str, Cost]:
        """Predicted per-phase Cost for one (engine, warm/cold) variant.

        The kernel does not appear: packed and reference kernels charge
        identical Cost by construction (PR 2) — only wall-clock differs.
        """
        from ..planar.geometric import embedding_cost

        n, m, k = stats.n, stats.m, stats.k
        rounds = stats.rounds
        w = stats.width_estimate
        lg = max(1, log2_ceil(max(n, 2)))
        c = self.coeffs

        embed = embedding_cost(n) if not warm else Cost.zero()

        cold_cover_rounds = rounds - (
            stats.warm_cover_rounds if warm else 0
        )
        cold_cover_rounds = max(0, cold_cover_rounds)
        cover_work = int(c["cover"] * cold_cover_rounds * (n + m) * lg)
        cover_depth = min(cover_work, cold_cover_rounds * 6 * lg * lg)
        cover = Cost(cover_work, cover_depth)

        dp_warm = warm and any(
            eng == engine for (eng, _kern) in stats.warm_piece_kinds
        )
        if dp_warm:
            dp = Cost.zero()
        else:
            seq_round = int(
                c["dp_seq"] * n * k * stats.subpatterns * (w + 1)
            )
            if engine == "parallel":
                # The parallel engine's candidate enumeration realizes
                # the full state bound, so its work ratio over the
                # sequential reachable-state walk grows with k: measured
                # ~10x at k=4 and ~21x at k=8 (the vc 8-cycle probes).
                ratio = c["par_ratio"] * max(1.0, k / 4.0)
                round_work = int(seq_round * ratio)
                round_depth = int(c["par_depth"] * k * lg * lg)
            else:
                round_work = seq_round
                pieces = max(1.0, c["pieces_per_sqrt_n"] * math.sqrt(n))
                round_depth = int(round_work / pieces)
            factor = _MODE_WORK_FACTOR[stats.mode]
            dp_work = int(rounds * round_work * factor)
            dp_depth = min(dp_work, int(rounds * round_depth * factor))
            dp = Cost(dp_work, dp_depth)

        key = (stats.mode, engine)
        wr = self._work_ratio.get(
            key, self._mode_prior(self._work_ratio, stats.mode)
        )
        dr = self._depth_ratio.get(
            key, self._mode_prior(self._depth_ratio, stats.mode)
        )
        if wr is not None or dr is not None:
            scaled = {}
            for name, cost in (
                ("embed", embed), ("cover", cover), ("dp", dp)
            ):
                work = int(cost.work * (wr if wr is not None else 1.0))
                depth = int(cost.depth * (dr if dr is not None else 1.0))
                scaled[name] = Cost(work, min(work, depth))
            return scaled
        return {"embed": embed, "cover": cover, "dp": dp}

    def estimate(
        self, stats: QueryStats, engine: str, warm: bool
    ) -> Cost:
        """Total predicted Cost (sequential phase composition)."""
        total = Cost.zero()
        for cost in self.estimate_phases(stats, engine, warm).values():
            total = total + cost
        return total

    @staticmethod
    def _mode_prior(
        ratios: Dict[Tuple[str, str], float], mode: str
    ) -> Optional[float]:
        """Fallback correction for an engine with no observations yet:
        the mean ratio over the *other* engines of the same mode.

        The systematic part of a prediction error (round-count effects
        like early exit, mode-factor misfit) is engine-independent, so an
        uncorrected engine would otherwise look ever cheaper as its
        rival's EMA climbs — and the planner would flip to it mid-stream
        for no real reason (observed as 1.7x regret spikes late in mixed
        workloads).  Sharing the mode-level prior keeps the engine
        ordering stable until the engine earns its own correction.
        """
        same_mode = [r for (m, _e), r in ratios.items() if m == mode]
        if not same_mode:
            return None
        return sum(same_mode) / len(same_mode)

    # -- calibration -------------------------------------------------------

    def observe(self, stats: QueryStats, engine: str, warm: bool,
                actual: Cost) -> None:
        """Fold one executed query's actual charged cost into the EMA
        correction for its (mode, engine) pair."""
        predicted = self.estimate(stats, engine, warm)
        key = (stats.mode, engine)
        lo, hi = self.ratio_band
        if predicted.work > 0 and actual.work > 0:
            ratio = min(hi, max(lo, actual.work / predicted.work))
            prev = self._work_ratio.get(key)
            self._work_ratio[key] = (
                ratio if prev is None
                else (1 - self.alpha) * prev + self.alpha * ratio
            )
        if predicted.depth > 0 and actual.depth > 0:
            ratio = min(hi, max(lo, actual.depth / predicted.depth))
            prev = self._depth_ratio.get(key)
            self._depth_ratio[key] = (
                ratio if prev is None
                else (1 - self.alpha) * prev + self.alpha * ratio
            )
        self.observations += 1

    def calibration(self) -> dict:
        """JSON-serializable snapshot of the learned corrections."""
        return {
            "observations": self.observations,
            "work_ratio": {
                f"{m}/{e}": round(r, 4)
                for (m, e), r in sorted(self._work_ratio.items())
            },
            "depth_ratio": {
                f"{m}/{e}": round(r, 4)
                for (m, e), r in sorted(self._depth_ratio.items())
            },
        }


@dataclass
class QueryPlan:
    """An explainable plan for one query: the chosen variant, why, and —
    once executed — what it actually cost.

    Drivers consume the variant fields (``engine`` / ``kernel`` /
    ``backend``); explicit keyword arguments override them.  After the
    driver runs it calls :meth:`record_actual`, which both fills the
    predicted-vs-actual report and feeds the provider's
    :class:`CostModel` calibration.
    """

    mode: str
    cover: str
    engine: str
    kernel: str
    backend: str
    warm: bool
    rounds: int
    processors: int
    predicted: Cost
    predicted_phases: Dict[str, Cost]
    predicted_time: int
    stats: QueryStats
    alternatives: List[Tuple[str, int]] = field(default_factory=list)
    rationale: List[str] = field(default_factory=list)
    shared: bool = False
    actual: Optional[Cost] = None
    _model: Optional[CostModel] = field(
        default=None, repr=False, compare=False
    )

    @property
    def variant(self) -> str:
        return f"{self.engine}/{self.kernel}/{self.cover}" + (
            "/warm" if self.warm else "/cold"
        )

    def record_actual(self, actual: Cost) -> None:
        """Report the executed query's charged cost back to the model."""
        self.actual = actual
        if self._model is not None:
            self._model.observe(self.stats, self.engine, self.warm, actual)

    @property
    def prediction_error(self) -> Optional[float]:
        """Relative work error |predicted - actual| / actual, when known."""
        if self.actual is None or self.actual.work == 0:
            return None
        return abs(self.predicted.work - self.actual.work) / self.actual.work

    def explain(self) -> str:
        """Human-readable plan report (the CLI's ``--explain``)."""
        lines = [
            f"plan: mode={self.mode} variant={self.variant} "
            f"backend={self.backend} rounds={self.rounds} "
            f"P={self.processors}",
            f"  predicted cost: work={self.predicted.work:,} "
            f"depth={self.predicted.depth:,} "
            f"T_P={self.predicted_time:,}",
        ]
        for name, cost in self.predicted_phases.items():
            lines.append(
                f"    {name:<8} work={cost.work:>14,} depth={cost.depth:>10,}"
            )
        for text in self.rationale:
            lines.append(f"  - {text}")
        if self.alternatives:
            alts = ", ".join(
                f"{name}: T_P={t:,}" for name, t in self.alternatives
            )
            lines.append(f"  rejected: {alts}")
        if self.actual is not None:
            err = self.prediction_error
            err_s = f" ({err:.0%} off)" if err is not None else ""
            lines.append(
                f"  actual cost: work={self.actual.work:,} "
                f"depth={self.actual.depth:,}{err_s}"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-serializable form (benchmarks, ``--explain`` consumers)."""
        out = {
            "mode": self.mode,
            "variant": self.variant,
            "engine": self.engine,
            "kernel": self.kernel,
            "backend": self.backend,
            "warm": self.warm,
            "rounds": self.rounds,
            "processors": self.processors,
            "predicted_work": self.predicted.work,
            "predicted_depth": self.predicted.depth,
            "predicted_time": self.predicted_time,
            "alternatives": dict(self.alternatives),
            "rationale": list(self.rationale),
        }
        if self.actual is not None:
            out["actual_work"] = self.actual.work
            out["actual_depth"] = self.actual.depth
            out["prediction_error"] = self.prediction_error
        return out


def _choose_backend(predicted: Cost, processors: int) -> str:
    """Pick an execution backend for the plan: serial unless real cores
    exist *and* the predicted DP work is big enough to amortize pool
    dispatch overhead."""
    from ..exec.backends import available_cores

    cores = available_cores()
    if cores >= 2 and processors >= 2 and predicted.work >= 5_000_000:
        return "threads"
    return "serial"


def plan_query(
    provider,
    pattern,
    mode: str = "decide",
    seed: int = 0,
    rounds: Optional[int] = None,
    processors: int = 256,
) -> QueryPlan:
    """Choose the cheapest variant for one query by predicted Brent time.

    Parameters
    ----------
    provider:
        An artifact provider bound to the target —
        :class:`~repro.engine.session.TargetSession` (plans exploit warm
        artifacts and calibrate across queries) or
        :class:`~repro.engine.artifacts.ColdArtifacts`.
    mode:
        One of ``decide | witness | list | count | separating | vc``.
    processors:
        The simulated machine size the plan optimizes ``ceil(W/P) + D``
        for.  Engine choice genuinely depends on it: the parallel engine
        charges ~10x the work at ~100x less depth, so it wins only past
        the crossover (P in the hundreds on the benchmark grids).
    """
    stats = gather_stats(provider, pattern, mode, seed=seed, rounds=rounds)
    model = getattr(provider, "cost_model", None)
    if model is None:
        model = CostModel()
    warm = bool(getattr(provider, "caching", False)) and (
        stats.warm_cover_rounds > 0 or bool(stats.warm_piece_kinds)
    )
    rationale: List[str] = []
    scored: List[Tuple[str, int, Cost, Dict[str, Cost]]] = []
    for engine in ("parallel", "sequential"):
        phases = model.estimate_phases(stats, engine, warm)
        total = Cost.zero()
        for cost in phases.values():
            total = total + cost
        t_p = total.brent_time(processors) if total.work else 0
        scored.append((engine, t_p, total, phases))
    scored.sort(key=lambda item: (item[1], item[2].work))
    engine, t_p, predicted, phases = scored[0]
    rationale.append(
        f"engine={engine}: lowest predicted T_P at P={processors} "
        f"(parallel charges ~{model.coeffs['par_ratio']:.0f}x work at "
        f"polylog depth)"
    )
    if stats.overflow_risk:
        kernel = "reference"
        rationale.append(
            f"kernel=reference: packed codes need ~{stats.packed_bits} bits "
            f"> {_PACKED_BIT_BUDGET} budget (overflow risk)"
        )
    else:
        kernel = "packed"
        rationale.append(
            f"kernel=packed: ~{stats.packed_bits} code bits fit int64; "
            f"identical charged cost, lower wall-clock"
        )
    if warm:
        rationale.append(
            f"warm session: {stats.warm_cover_rounds}/{stats.rounds} cover "
            f"rounds cached, piece-DP warm for "
            f"{[f'{e}/{k}' for e, k in stats.warm_piece_kinds] or 'none'}"
        )
        warm_engines = {e for e, _ in stats.warm_piece_kinds}
        if warm_engines and engine not in warm_engines:
            # A cached DP for the "wrong" engine beats rebuilding with the
            # nominally cheaper one: re-score with warm awareness.
            for alt_engine in warm_engines:
                alt_phases = model.estimate_phases(stats, alt_engine, warm)
                alt_total = Cost.zero()
                for cost in alt_phases.values():
                    alt_total = alt_total + cost
                alt_t = (
                    alt_total.brent_time(processors) if alt_total.work else 0
                )
                if alt_t <= t_p:
                    engine, t_p = alt_engine, alt_t
                    predicted, phases = alt_total, alt_phases
                    rationale.append(
                        f"engine switched to {alt_engine}: cached piece-DP "
                        f"solutions make it free"
                    )
    backend = _choose_backend(predicted, processors)
    alternatives = [
        (f"{e}/{kernel}", t) for e, t, _, _ in scored if e != engine
    ]
    return QueryPlan(
        mode=mode,
        cover=MODES[mode],
        engine=engine,
        kernel=kernel,
        backend=backend,
        warm=warm,
        rounds=stats.rounds,
        processors=processors,
        predicted=predicted,
        predicted_phases=phases,
        predicted_time=t_p,
        stats=stats,
        alternatives=alternatives,
        rationale=rationale,
        _model=model,
    )


def resolve_plan(
    plan,
    provider,
    pattern,
    mode: str,
    seed: int = 0,
    rounds: Optional[int] = None,
) -> Optional[QueryPlan]:
    """Normalize a driver's ``plan=`` argument.

    ``None`` / ``"manual"`` -> no plan (the driver's own defaults apply);
    ``"auto"`` -> :func:`plan_query` against ``provider``; a
    :class:`QueryPlan` instance passes through unchanged.
    """
    if plan is None or plan == "manual":
        return None
    if plan == "auto":
        return plan_query(
            provider, pattern, mode=mode, seed=seed, rounds=rounds
        )
    if isinstance(plan, QueryPlan):
        return plan
    raise ValueError(
        f"plan must be None, 'manual', 'auto' or a QueryPlan, got {plan!r}"
    )


def apply_plan(
    plan,
    provider,
    pattern,
    mode: str,
    seed: int,
    rounds: Optional[int],
    engine: Optional[str],
    kernel: Optional[str],
    backend,
    default_engine: str = "parallel",
    default_kernel: str = "packed",
    default_backend: str = "serial",
) -> Tuple[Optional[QueryPlan], str, str, object]:
    """Driver-side plan resolution: explicit arguments win, then the
    plan's variant, then the driver's historical defaults.

    Returns ``(plan_or_None, engine, kernel, backend)``; every driver
    funnels its ``engine= / kernel= / backend= / plan=`` keywords through
    here so override precedence is uniform across all six entry points.
    """
    plan_obj = resolve_plan(
        plan, provider, pattern, mode, seed=seed, rounds=rounds
    )
    if plan_obj is not None:
        engine = engine if engine is not None else plan_obj.engine
        kernel = kernel if kernel is not None else plan_obj.kernel
        backend = backend if backend is not None else plan_obj.backend
    else:
        engine = engine if engine is not None else default_engine
        kernel = kernel if kernel is not None else default_kernel
        backend = backend if backend is not None else default_backend
    return plan_obj, engine, kernel, backend
