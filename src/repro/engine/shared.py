"""Multi-pattern plan sharing: one cover, shared subpattern tables.

Eppstein's connected-pattern decomposition (PAPERS.md, *Subgraph
Isomorphism in Planar Graphs and Related Problems*) observes that related
patterns factor through shared connected subpatterns.  This module makes
that executable for a batch of queries against one target session:

1.  Every connected pattern H is reduced to a :func:`pattern_chain` — an
    addition order ``v_1 .. v_k`` whose every prefix induces a connected
    subpattern, found by greedily deleting connectivity-preserving
    vertices toward the lexicographically smallest canonical form.  Chains
    of different patterns meet in shared *canonical* nodes (C4..C7 all
    funnel through the paths P1..P6), and isomorphic patterns share their
    entire chain — the lattice dedups them for free.

2.  Per batch, the chains merge into a subpattern *lattice* (one build
    recipe per canonical node, topologically ordered by size).

3.  Per round, ONE Theorem 2.4 cover is built at ``(k_max, d_max)`` —
    valid for every pattern in the batch, since the cut probability
    ``(d_i + 1) / (2 k_max) <= (d_max + 1) / (2 k_max) <= 1/2`` keeps the
    per-round success guarantee.  Per piece, occurrence tables (int64
    ``N x size`` arrays of injective maps, columns in canonical vertex
    order) are built bottom-up through the lattice with the vectorized
    incremental-extension matcher (:func:`extend_table`): extend every
    occurrence of the size-``i`` node by one vertex via CSR ragged
    expansion + ``Graph.has_edges`` adjacency filters + injectivity
    masks.  Each table is computed once per piece regardless of how many
    patterns consume it, and published into the session's per-piece store
    (kind ``"piece-sub"``) so a repeated batch is fully warm.

4.  If a piece's tables outgrow :data:`OCCURRENCE_CAP`, the piece falls
    back to the standard per-(piece, pattern) bounded-treewidth DP
    (``provider.solve_piece`` — itself session-cached), so density never
    breaks the batch, only its sharing.

Verdict semantics: "found" is exact (the tables enumerate occurrences
outright, and double as witnesses); "not found" after ``O(log n)`` rounds
is correct w.h.p. — the same one-sided Monte Carlo guarantee as the
per-pattern driver.  Because the shared path draws *different covers*
(one per batch round at ``(k_max, d_max)`` instead of one per pattern at
``(k_i, d_i)``), results are *verdict-equal* but not byte-identical to
the per-pattern path; sharing is therefore opt-in via
``decide_batch(..., plan="auto")``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..pram import Cost, ShadowArray, Tracer
from ..pram.cost import log2_ceil

__all__ = [
    "OCCURRENCE_CAP",
    "ChainLevel",
    "canonical_form",
    "pattern_chain",
    "extend_table",
    "decide_batch_shared",
]

#: Hard ceiling on the candidate expansion of one extension step (and
#: hence on table rows).  Above it the piece is solved by the DP instead.
OCCURRENCE_CAP = 1 << 20

#: Largest pattern the brute-force canonicalizer accepts (8! = 40320
#: permutations; the paper's patterns have k <= 8).
MAX_CANON_VERTICES = 8


class CapExceeded(Exception):
    """An extension step outgrew :data:`OCCURRENCE_CAP`."""


@lru_cache(maxsize=4096)
def _canonical(k: int, edges: Tuple[Tuple[int, int], ...]) -> Tuple[
    Tuple[int, int], Tuple[int, ...]
]:
    """Brute-force canonical form of a tiny graph.

    Returns ``(canon, perm)`` where ``canon = (k, code)`` is equal for
    exactly the isomorphic graphs on ``k`` vertices (``code`` packs the
    lexicographically smallest upper-triangle adjacency over all vertex
    relabellings) and ``perm[v]`` is the canonical position of vertex
    ``v`` under a deterministic code-minimizing relabelling.

    Pure function of content, so the ``lru_cache`` is a sound process-wide
    memo (no mutable state escapes).
    """
    if k > MAX_CANON_VERTICES:
        raise ValueError(
            f"canonical_form handles at most {MAX_CANON_VERTICES} vertices, "
            f"got {k}"
        )
    adj = [[False] * k for _ in range(k)]
    for u, v in edges:
        adj[u][v] = adj[v][u] = True
    best_code: Optional[int] = None
    best_perm: Tuple[int, ...] = tuple(range(k))
    for perm in permutations(range(k)):
        code = 0
        for u in range(k):
            pu = perm[u]
            row = adj[u]
            for v in range(u + 1, k):
                if row[v]:
                    i, j = (
                        (pu, perm[v]) if pu < perm[v] else (perm[v], pu)
                    )
                    code |= 1 << (i * k + j)
        if best_code is None or code < best_code:
            best_code = code
            best_perm = perm
    return (k, int(best_code or 0)), best_perm


def canonical_form(graph) -> Tuple[Tuple[int, int], Tuple[int, ...]]:
    """Canonical ``((k, code), vertex -> canonical position)`` of a tiny
    :class:`~repro.graphs.csr.Graph` (see :func:`_canonical`)."""
    edges = tuple(
        sorted((int(u), int(v)) for u, v in graph.iter_edges())
    )
    return _canonical(graph.n, edges)


@dataclass(frozen=True)
class ChainLevel:
    """One prefix of a pattern's addition order.

    ``verts[l]`` is the original pattern vertex at addition position
    ``l``; ``canon`` identifies the induced subpattern up to isomorphism;
    ``perm[l]`` is the canonical column of addition position ``l``;
    ``attach`` lists the addition positions the newest vertex connects to
    (empty only at size 1).
    """

    verts: Tuple[int, ...]
    canon: Tuple[int, int]
    perm: Tuple[int, ...]
    attach: Tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.verts)


def _induced_edges(
    vert_order: Sequence[int], neighbors
) -> Tuple[Tuple[int, int], ...]:
    """Edges of the induced subpattern, relabelled to addition positions."""
    pos = {v: i for i, v in enumerate(vert_order)}
    out = []
    for v in vert_order:
        for w in neighbors(v):
            if w in pos and pos[v] < pos[w]:
                out.append((pos[v], pos[w]))
    return tuple(sorted(out))


def _connected_subset(vertices: frozenset, neighbors) -> bool:
    if not vertices:
        return False
    start = next(iter(vertices))
    seen = {start}
    stack = [start]
    while stack:
        v = stack.pop()
        for w in neighbors(v):
            if w in vertices and w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == len(vertices)


def pattern_chain(pattern) -> Tuple[ChainLevel, ...]:
    """Connectivity-preserving addition order of a connected pattern.

    Built backwards: repeatedly delete the vertex whose removal keeps the
    subpattern connected and yields the smallest canonical form (ties by
    vertex id) — the greedy choice that makes chains of related patterns
    meet (every cycle funnels through the path family).  The result is
    deterministic and memoized on the pattern object.
    """
    cached = getattr(pattern, "_chain", None)
    if cached is not None:
        return cached
    if not pattern.is_connected():
        raise ValueError("plan sharing handles connected patterns only")
    k = pattern.k
    current = list(range(k))
    deletion: List[int] = []
    while len(current) > 1:
        best: Optional[Tuple[Tuple[int, int], int]] = None
        for v in current:
            rest = frozenset(current) - {v}
            if not _connected_subset(rest, pattern.neighbors):
                continue
            order = [u for u in current if u != v]
            canon, _ = _canonical(
                len(order), _induced_edges(order, pattern.neighbors)
            )
            if best is None or (canon, v) < best:
                best = (canon, v)
        assert best is not None  # a connected graph always has one
        deletion.append(best[1])
        current.remove(best[1])
    addition = current + list(reversed(deletion))
    levels: List[ChainLevel] = []
    for i in range(1, k + 1):
        prefix = addition[:i]
        canon, perm = _canonical(
            i, _induced_edges(prefix, pattern.neighbors)
        )
        pos = {v: l for l, v in enumerate(prefix)}
        if i == 1:
            attach: Tuple[int, ...] = ()
        else:
            attach = tuple(
                sorted(
                    pos[w]
                    for w in pattern.neighbors(prefix[-1])
                    if w in pos and pos[w] < i - 1
                )
            )
        levels.append(
            ChainLevel(
                verts=tuple(prefix), canon=canon, perm=perm, attach=attach
            )
        )
    chain = tuple(levels)
    try:
        object.__setattr__(pattern, "_chain", chain)
    except AttributeError:  # pragma: no cover - duck-typed patterns
        pass
    return chain


# -- the vectorized incremental-extension matcher ---------------------------


def extend_table(
    piece_graph,
    t_local: np.ndarray,
    attach: Sequence[int],
    cap: int = OCCURRENCE_CAP,
) -> Tuple[np.ndarray, int]:
    """Extend every injective occurrence in ``t_local`` by one vertex.

    ``t_local`` is an ``N x (i-1)`` int64 array (columns in addition
    order); the new vertex must be adjacent to the columns in ``attach``
    and distinct from every mapped vertex.  Returns ``(table, work)``
    where ``table`` is ``M x i`` in addition order and ``work`` counts the
    elementary candidate expansions and filter operations performed (what
    the caller charges).  Raises :class:`CapExceeded` when the candidate
    expansion exceeds ``cap``.

    One CSR ragged expansion + boolean masks — no Python loop over rows.
    """
    n_rows, width = t_local.shape
    if n_rows == 0:
        return np.empty((0, width + 1), dtype=np.int64), 1
    indptr = piece_graph.indptr
    j0 = attach[0]
    base = t_local[:, j0]
    counts = (indptr[base + 1] - indptr[base]).astype(np.int64)
    total = int(counts.sum())
    if total > cap:
        raise CapExceeded(f"extension expands {total} > cap {cap}")
    if total == 0:
        return np.empty((0, width + 1), dtype=np.int64), max(n_rows, 1)
    starts = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    cand = piece_graph.indices[np.repeat(indptr[base], counts) + offsets]
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), counts)
    mask = np.ones(total, dtype=bool)
    for j in attach[1:]:
        mask &= piece_graph.has_edges(t_local[rows, j], cand)
    for c in range(width):
        mask &= cand != t_local[rows, c]
    rows = rows[mask]
    cand = cand[mask]
    table = np.concatenate([t_local[rows], cand[:, None]], axis=1)
    work = total * (len(attach) + width) + n_rows
    return table, work


@dataclass(frozen=True)
class _LatticeNode:
    """Build recipe for one canonical subpattern: extend ``parent``'s
    canonical table (columns -> addition order via ``parent_perm``) by a
    vertex attached at ``attach``, then reorder columns to this node's
    canonical order via ``perm``.  The recipe came from whichever chain
    reached the node first — any route builds the same table, because a
    canonical table is the complete set of injective maps of the node's
    graph, independent of construction order."""

    canon: Tuple[int, int]
    parent: Optional[Tuple[int, int]]
    parent_perm: Tuple[int, ...]
    attach: Tuple[int, ...]
    perm: Tuple[int, ...]

    @property
    def size(self) -> int:
        return self.canon[0]


def _build_lattice(
    chains: Sequence[Tuple[ChainLevel, ...]]
) -> List[_LatticeNode]:
    """Merge chains into one recipe per canonical node, sorted by size
    (a valid topological order: every recipe's parent is smaller)."""
    nodes: Dict[Tuple[int, int], _LatticeNode] = {}
    for chain in chains:
        for i, level in enumerate(chain):
            if level.canon in nodes:
                continue
            parent = chain[i - 1] if i > 0 else None
            nodes[level.canon] = _LatticeNode(
                canon=level.canon,
                parent=parent.canon if parent else None,
                parent_perm=parent.perm if parent else (),
                attach=level.attach,
                perm=level.perm,
            )
    return sorted(nodes.values(), key=lambda node: (node.size, node.canon))


def _node_table(
    node: _LatticeNode,
    piece,
    tables: Dict[Tuple[int, int], np.ndarray],
    provider,
    tracer,
    cap: int,
) -> np.ndarray:
    """The canonical occurrence table of ``node`` in ``piece`` — from the
    session's per-piece store when warm, else built via one extension."""
    hit, cached = provider.subpattern_cached(piece, node.canon, tracer)
    if hit:
        return cached
    if node.parent is None:
        table = np.arange(piece.graph.n, dtype=np.int64)[:, None]
        work = max(piece.graph.n, 1)
    else:
        parent_table = tables[node.parent]
        # Canonical columns -> addition order of the discovering chain.
        t_local = parent_table[:, np.asarray(node.parent_perm, np.int64)]
        t_local, work = extend_table(piece.graph, t_local, node.attach, cap)
        inv = np.empty(node.size, dtype=np.int64)
        inv[np.asarray(node.perm, np.int64)] = np.arange(node.size)
        table = np.ascontiguousarray(t_local[:, inv])
    cost = Cost(work, min(work, log2_ceil(work) + len(node.attach) + 1))
    tracer.charge(cost, label="subpattern-extend")
    provider.store_subpattern(piece, node.canon, table, cost)
    return table


def decide_batch_shared(
    provider,
    patterns: Sequence,
    seed: int = 0,
    rounds: Optional[int] = None,
    confidence_log_factor: float = 2.0,
    want_witness: bool = False,
    engine: str = "parallel",
    kernel: str = "packed",
    cap: int = OCCURRENCE_CAP,
) -> Tuple[List, Tracer]:
    """Decide every pattern with shared covers and shared subpattern
    tables (module docstring).  Returns per-pattern
    :class:`~repro.isomorphism.planar_si.PlanarSIResult` objects (shared
    work is charged to the returned batch tracer, so the per-result
    ``cost`` is zero and ``trace`` is None — attribution happens at batch
    granularity) plus the batch tracer itself.

    ``engine`` / ``kernel`` configure only the dense-piece DP fallback.
    """
    from ..isomorphism.planar_si import PlanarSIResult

    chains = [pattern_chain(p) for p in patterns]
    lattice = _build_lattice(chains)
    k_max = max(p.k for p in patterns)
    d_max = max(p.diameter() for p in patterns)
    n = provider.graph.n
    if rounds is None:
        rounds = max(
            1, math.ceil(confidence_log_factor * math.log2(max(n, 2)))
        )
    tracer = Tracer("decide-batch-shared")
    tracer.count(
        n=n, m=provider.graph.m, patterns=len(patterns),
        lattice_nodes=len(lattice), k_max=k_max, d_max=d_max,
    )
    provider.charge_embedding(tracer)
    found: List[Optional[Dict[int, int]]] = [None] * len(patterns)
    decided = [False] * len(patterns)
    rounds_used = [0] * len(patterns)
    pieces_examined = 0
    max_width = 0
    for r in range(rounds):
        if all(decided):
            break
        undecided = [i for i in range(len(patterns)) if not decided[i]]
        needed = set()
        for i in undecided:
            needed.update(level.canon for level in chains[i])
        with tracer.span("shared-round"):
            cover = provider.cover(k_max, d_max, seed + r, tracer)
            hits: List[List[Tuple[int, Dict[int, int]]]] = [
                [] for _ in patterns
            ]
            with tracer.parallel("pieces") as region:
                slots = ShadowArray("piece-subtables", len(cover.pieces))
                for piece_idx, piece in enumerate(cover.pieces):
                    if piece.graph.n < min(
                        patterns[i].k for i in undecided
                    ):
                        continue
                    pieces_examined += 1
                    max_width = max(
                        max_width, piece.decomposition.width()
                    )
                    with region.branch("shared-tables") as branch:
                        branch.record_writes(slots, piece_idx)
                        tables: Dict[Tuple[int, int], np.ndarray] = {}
                        dense = False
                        for node in lattice:
                            if node.canon not in needed:
                                continue
                            if node.size > piece.graph.n:
                                continue
                            if (
                                node.parent is not None
                                and node.parent not in tables
                            ):
                                continue  # parent skipped (piece too small)
                            try:
                                tables[node.canon] = _node_table(
                                    node, piece, tables, provider,
                                    branch, cap,
                                )
                            except CapExceeded:
                                dense = True
                                break
                        for i in undecided:
                            pat = patterns[i]
                            if pat.k > piece.graph.n:
                                continue
                            final = chains[i][-1]
                            if dense:
                                witness = provider.solve_piece(
                                    piece, pat, engine, branch,
                                    want_witness, kernel,
                                )
                                if witness is None:
                                    continue
                                local = {
                                    p: int(piece.originals[v])
                                    for p, v in witness.items()
                                } if want_witness else {}
                                hits[i].append((piece_idx, local))
                                continue
                            table = tables.get(final.canon)
                            if table is None or table.shape[0] == 0:
                                continue
                            row = table[0]
                            local = {
                                final.verts[l]: int(
                                    piece.originals[row[final.perm[l]]]
                                )
                                for l in range(final.size)
                            } if want_witness else {}
                            hits[i].append((piece_idx, local))
            for i in undecided:
                if hits[i]:
                    decided[i] = True
                    rounds_used[i] = r + 1
                    found[i] = min(hits[i])[1]
    for i in range(len(patterns)):
        if not decided[i]:
            rounds_used[i] = rounds
    results = [
        PlanarSIResult(
            found=found[i] is not None,
            witness=(
                found[i] if want_witness and found[i] is not None else None
            ),
            rounds_used=rounds_used[i],
            cost=Cost.zero(),
            pieces_examined=pieces_examined,
            max_piece_width=max_width,
            trace=None,
            amortized=True,
            cold_equivalent_cost=None,
        )
        for i in range(len(patterns))
    ]
    return results, tracer
