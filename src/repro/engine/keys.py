"""Content-addressed keys for the target-session artifact cache.

Every artifact the session memoizes (EST clusterings, k-d covers, nice
decompositions, window decompositions, the face--vertex graph) is stored
under a key derived *from the bytes of the objects that determine it* —
never from Python object identity.  Two consequences the tests rely on:

* **Soundness** — mutating the target (adding or removing an edge, or
  changing the rotation system) changes the target fingerprint and hence
  every derived key: no stale artifact can ever be served for a different
  graph (``tests/engine/test_session.py``).
* **Reproducibility** — equal inputs produce equal keys, so two sessions
  over byte-identical targets address (and rebuild) byte-identical
  artifacts for equal seeds.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

import numpy as np

__all__ = [
    "graph_fingerprint",
    "embedding_fingerprint",
    "target_fingerprint",
    "decomposition_fingerprint",
    "piece_fingerprint",
    "mask_fingerprint",
    "pattern_fingerprint",
    "solve_fingerprint",
]


def _digest(*chunks: bytes) -> str:
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(len(chunk).to_bytes(8, "little"))
        h.update(chunk)
    return h.hexdigest()[:24]


def graph_fingerprint(graph) -> str:
    """Fingerprint of a :class:`~repro.graphs.csr.Graph`: vertex count plus
    the canonical (u < v) edge array bytes.

    Memoized on the graph object (CSR graphs are immutable), so batches
    that probe the same pattern or target repeatedly hash its edge array
    once instead of once per query.
    """
    cached = getattr(graph, "_content_fp", None)
    if cached is not None:
        return cached
    fp = _digest(
        graph.n.to_bytes(8, "little"),
        np.ascontiguousarray(graph.edges(), dtype=np.int64).tobytes(),
    )
    try:
        graph._content_fp = fp
    except AttributeError:  # pragma: no cover - non-Graph duck types
        pass
    return fp


def embedding_fingerprint(embedding) -> str:
    """Fingerprint of a rotation system: every vertex's neighbor cycle in
    rotation order (the full combinatorial embedding)."""
    h = hashlib.sha256()
    h.update(embedding.n.to_bytes(8, "little"))
    for v in range(embedding.n):
        rot = embedding.rotation(v)
        h.update(len(rot).to_bytes(4, "little"))
        h.update(np.asarray(rot, dtype=np.int64).tobytes())
    return h.hexdigest()[:24]


def target_fingerprint(graph, embedding) -> str:
    """The session's root key: graph content + embedding content.  Every
    derived cache key embeds this fingerprint as a prefix."""
    return _digest(
        graph_fingerprint(graph).encode(),
        embedding_fingerprint(embedding).encode(),
    )


def decomposition_fingerprint(decomposition) -> str:
    """Fingerprint of a tree decomposition: bags (with sizes), parent
    pointers and root.

    Memoized on the decomposition object (they are never mutated after
    construction anywhere in the library) so the hashing cost is paid once
    per decomposition, not once per warm query.
    """
    cached = getattr(decomposition, "_content_fp", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(int(decomposition.root).to_bytes(8, "little", signed=True))
    h.update(
        np.asarray(decomposition.parent, dtype=np.int64).tobytes()
    )
    for bag in decomposition.bags:
        h.update(int(bag.size).to_bytes(4, "little"))
        h.update(np.asarray(bag, dtype=np.int64).tobytes())
    fp = h.hexdigest()[:24]
    try:
        decomposition._content_fp = fp
    except AttributeError:
        pass  # slotted/frozen decomposition variants: just recompute
    return fp


def piece_fingerprint(piece) -> str:
    """Fingerprint of one cover piece: subgraph content, original-vertex
    map and tree decomposition (everything the per-piece DP depends on
    besides the pattern).  Memoized on the piece object — pieces live
    inside cached covers and are never mutated."""
    cached = getattr(piece, "_content_fp", None)
    if cached is not None:
        return cached
    fp = _digest(
        graph_fingerprint(piece.graph).encode(),
        np.ascontiguousarray(piece.originals, dtype=np.int64).tobytes(),
        decomposition_fingerprint(piece.decomposition).encode(),
    )
    try:
        piece._content_fp = fp
    except AttributeError:
        pass
    return fp


def mask_fingerprint(mask) -> str:
    """Fingerprint of a boolean/integer vertex mask (the separating
    problem's marked set)."""
    return _digest(np.ascontiguousarray(mask).tobytes())


def pattern_fingerprint(pattern) -> str:
    """Fingerprint of a pattern H — its graph content (the precomputed
    neighbor caches are derived, so they never enter the key).  Memoized
    through :func:`graph_fingerprint`'s on-object cache."""
    return graph_fingerprint(pattern.graph)


def solve_fingerprint(
    piece, pattern, engine: str, kernel: str, want: str
) -> str:
    """Fingerprint of one piece-solve task: everything the pure task
    function's output depends on (piece content, pattern content and the
    engine/kernel/output-mode flags).

    Content-only by construction — no ``id()``, no process-local state —
    so two processes (or two machines) fingerprint the same task
    identically; ``tests/exec/test_fingerprints.py`` checks this across
    interpreter boundaries and hash seeds.
    """
    return _digest(
        piece_fingerprint(piece).encode(),
        pattern_fingerprint(pattern).encode(),
        engine.encode(),
        kernel.encode(),
        want.encode(),
    )


Key = Tuple  # cache keys are plain tuples: (kind, target_fp, *specifics)
