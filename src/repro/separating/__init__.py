"""S-separating subgraph isomorphism (Section 5.2)."""

from .state_space import SeparatingStateSpace
from .packed import PackedSeparatingOps
from .cover import SeparatingCover, SeparatingPiece, separating_cover
from .driver import SeparatingSIResult, decide_separating_isomorphism
from .oracle import (
    has_separating_occurrence,
    is_separating_occurrence,
    iter_separating_occurrences,
)

__all__ = [
    "SeparatingStateSpace",
    "PackedSeparatingOps",
    "SeparatingCover",
    "SeparatingPiece",
    "separating_cover",
    "SeparatingSIResult",
    "decide_separating_isomorphism",
    "has_separating_occurrence",
    "is_separating_occurrence",
    "iter_separating_occurrences",
]
