"""Packed int64 kernels for the separating state space (Section 5.2.2).

Extends the plain packed codec (``repro.isomorphism.packed``) with the
extended state's side sets and boolean history, packed into the high bits
above the base code:

``code = base | inside_bits << s0 | ix << s0+B | ox << s0+B+1``

where ``s0`` is the bit width of the plain base code for the bag, ``B`` the
bag size, and bit ``j`` of ``inside_bits`` says bag vertex ``j`` lies on the
inside of the sought separation.  An *occupied* bag vertex (mapped by phi)
canonically carries side bit 0 — its outside membership is recomputed from
the base digits (``outside = free & ~inside``), which keeps the packing
injective and join keys addition-safe.  Lemma 5.3's ``2^O(k)`` blow-up
appears here as exactly ``B + 2`` extra bits.

The kernels generate the same candidate multisets as the reference
``SeparatingStateSpace`` transitions, so charged costs are engine-invariant
(see the plain module's docstring for the contract).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..isomorphism.packed import (
    NIL,
    match_key_pairs,
    table_from_buffers,
    table_to_buffers,
)

__all__ = [
    "PackedSeparatingOps",
    "sep_table_from_buffers",
    "sep_table_to_buffers",
]

_EMPTY = np.zeros(0, dtype=np.int64)


def sep_table_to_buffers(
    codes: np.ndarray, mults: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Stable buffer form of one separating packed table.

    The separating codec packs side sets and history into the high bits
    of the same sorted-unique int64 codes, so the canonical-table
    invariants (and hence the transport validation) are those of the plain
    kernel; kept as a named entry point so serialization callers do not
    depend on that coincidence.
    """
    return table_to_buffers(codes, mults)


def sep_table_from_buffers(
    codes: np.ndarray, mults: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`sep_table_to_buffers` (revalidating)."""
    return table_from_buffers(codes, mults)


def _iter_bits(mask: int):
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class _SepCtx:
    """Per-bag context: the plain context plus the high-bit layout."""

    __slots__ = (
        "bctx",
        "size",
        "s0",
        "s_ix",
        "s_ox",
        "base_mask",
        "full",
        "marked_bits",
        "adj_bits",
        "local_codes",
    )

    def __init__(self, ops: "PackedSeparatingOps", bag: np.ndarray) -> None:
        self.bctx = ops.plain.ctx(bag)
        b = self.bctx.size
        self.size = b
        self.s0 = ops.plain.code_bits(b)
        self.s_ix = self.s0 + b
        self.s_ox = self.s_ix + 1
        self.base_mask = np.int64((1 << self.s0) - 1)
        self.full = np.int64((1 << b) - 1)
        marked = 0
        for j in range(b):
            if ops.space.marked[int(bag[j])]:
                marked |= 1 << j
        self.marked_bits = np.int64(marked)
        adj = ops.plain._bag_adj(self.bctx)
        weights = np.int64(1) << np.arange(b, dtype=np.int64)
        self.adj_bits = (
            (adj @ weights) if b else np.zeros(0, dtype=np.int64)
        )
        self.local_codes = None


class PackedSeparatingOps:
    """Vectorized kernels for :class:`SeparatingStateSpace` tables."""

    def __init__(self, space) -> None:
        self.space = space
        self.plain = space.base.packed_ops()
        self.k = space.k
        self._ctxs: dict = {}

    # -- feasibility -------------------------------------------------------

    def fits(self, nice) -> bool:
        """Base code + side bits + two booleans must pack into int64."""
        max_bag = max((int(b.size) for b in nice.bags), default=0)
        return self.plain.code_bits(max_bag) + max_bag + 2 <= 62

    # -- contexts ----------------------------------------------------------

    def ctx(self, bag) -> _SepCtx:
        bag = np.asarray(bag, dtype=np.int64)
        key = bag.tobytes()
        ctx = self._ctxs.get(key)
        if ctx is None:
            ctx = _SepCtx(self, bag)
            self._ctxs[key] = ctx
        return ctx

    def _parts(
        self, ctx: _SepCtx, codes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        base = codes & ctx.base_mask
        inside = (codes >> ctx.s0) & ctx.full
        ix = (codes >> ctx.s_ix) & 1
        ox = (codes >> ctx.s_ox) & 1
        return base, inside, ix, ox

    def _outside(
        self, ctx: _SepCtx, base: np.ndarray, inside: np.ndarray
    ) -> np.ndarray:
        occ = self.plain.occupied_bits(ctx.bctx, base)
        return ctx.full & ~occ & ~inside

    # -- codec -------------------------------------------------------------

    def encode(self, ctx: _SepCtx, states: Sequence[tuple]) -> np.ndarray:
        if not len(states):
            return _EMPTY
        base_codes = self.plain.encode(ctx.bctx, [s[0] for s in states])
        pos = {int(v): j for j, v in enumerate(ctx.bctx.bag)}
        s0, s_ix, s_ox = ctx.s0, ctx.s_ix, ctx.s_ox
        extras = np.zeros(len(states), dtype=np.int64)
        for i, (_b, inside, _outside, ix, ox) in enumerate(states):
            bits = 0
            for x in inside:
                bits |= 1 << pos[int(x)]
            extras[i] = (
                (bits << s0)
                | (int(bool(ix)) << s_ix)
                | (int(bool(ox)) << s_ox)
            )
        return base_codes | extras

    def decode(self, ctx: _SepCtx, codes: np.ndarray) -> List[tuple]:
        if codes.size == 0:
            return []
        base, inside, ix, ox = self._parts(ctx, codes)
        base_states = self.plain.decode(ctx.bctx, base)
        outside = self._outside(ctx, base, inside)
        bag = [int(v) for v in ctx.bctx.bag]
        out = []
        for b, ib, ob, ixv, oxv in zip(
            base_states,
            inside.tolist(),
            outside.tolist(),
            (ix != 0).tolist(),
            (ox != 0).tolist(),
        ):
            out.append(
                (
                    b,
                    tuple(bag[j] for j in _iter_bits(ib)),
                    tuple(bag[j] for j in _iter_bits(ob)),
                    ixv,
                    oxv,
                )
            )
        return out

    # -- basic states ------------------------------------------------------

    def leaf_codes(self) -> np.ndarray:
        return np.zeros(1, dtype=np.int64)

    def accepting_mask(self, ctx: _SepCtx, codes: np.ndarray) -> np.ndarray:
        base, _inside, ix, ox = self._parts(ctx, codes)
        return (
            self.plain.accepting_mask(ctx.bctx, base) & (ix == 1) & (ox == 1)
        )

    def trivial_source_mask(
        self, ctx: _SepCtx, codes: np.ndarray
    ) -> np.ndarray:
        """Never — side consistency through forgotten vertices is not
        locally checkable (see the reference space)."""
        return np.zeros(codes.size, dtype=bool)

    def admissible_mask(
        self,
        ctx: _SepCtx,
        codes: np.ndarray,
        forgotten_count: int,
        marked_forgotten: bool,
    ) -> np.ndarray:
        base, inside, ix, ox = self._parts(ctx, codes)
        ok = self.plain.admissible_mask(
            ctx.bctx, base, forgotten_count, marked_forgotten
        )
        if not marked_forgotten:
            outside = self._outside(ctx, base, inside)
            ok = ok & ((ix == 0) | ((inside & ctx.marked_bits) != 0))
            ok = ok & ((ox == 0) | ((outside & ctx.marked_bits) != 0))
        return ok

    # -- transitions -------------------------------------------------------

    def introduce(
        self, cctx: _SepCtx, pctx: _SepCtx, v: int, codes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = int(codes.size)
        base, inside, ix, ox = self._parts(cctx, codes)
        psrc, pout, prem = self.plain.introduce(
            cctx.bctx, pctx.bctx, v, base
        )
        jv = int(np.searchsorted(pctx.bctx.bag, v))
        low = (np.int64(1) << jv) - 1
        p_inside = ((inside >> jv) << (jv + 1)) | (inside & low)
        outside = self._outside(cctx, base, inside)
        p_outside = ((outside >> jv) << (jv + 1)) | (outside & low)
        extras = (
            (p_inside << pctx.s0) | (ix << pctx.s_ix) | (ox << pctx.s_ox)
        )
        # Plain-kernel layout contract: the first n candidates are the
        # "v hosts nothing" copies; the separating space replaces them with
        # the side options, so slice them off and keep the extensions.
        ext_src = psrc[n:]
        ext_out = pout[n:] | extras[ext_src]
        # Side options: legal iff v has no G-neighbor on the opposite side;
        # a marked v raises its side's boolean.
        avj = pctx.adj_bits[jv] if pctx.size else np.int64(0)
        legal_in = (p_outside & avj) == 0
        legal_out = (p_inside & avj) == 0
        mk = int(bool(self.space.marked[v]))
        bit_v = np.int64(1) << jv
        in_code = (
            prem
            | ((p_inside | bit_v) << pctx.s0)
            | ((ix | mk) << pctx.s_ix)
            | (ox << pctx.s_ox)
        )
        out_code = (
            prem
            | (p_inside << pctx.s0)
            | (ix << pctx.s_ix)
            | ((ox | mk) << pctx.s_ox)
        )
        idx_in = np.flatnonzero(legal_in)
        idx_out = np.flatnonzero(legal_out)
        src = np.concatenate([ext_src, idx_in, idx_out])
        out = np.concatenate([ext_out, in_code[idx_in], out_code[idx_out]])
        # Canonical lift prefers the outside placement, then inside.
        lift = np.where(
            legal_out,
            out_code,
            np.where(legal_in, in_code, np.int64(NIL)),
        )
        return src, out, lift

    def forget(
        self, cctx: _SepCtx, pctx: _SepCtx, v: int, codes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        base, inside, ix, ox = self._parts(cctx, codes)
        # The plain kernel uniformly covers all three cases: an occupied v
        # moves its pattern vertex to C (with the neighbor check), a
        # side-carrying v leaves its base digits untouched; the side bit
        # (1 for inside, 0 for outside/occupied) is squeezed out below.
        psrc, pout, _ = self.plain.forget(cctx.bctx, pctx.bctx, v, base)
        jv = int(np.searchsorted(cctx.bctx.bag, v))
        low = (np.int64(1) << jv) - 1
        squeezed = ((inside >> (jv + 1)) << jv) | (inside & low)
        extras = (
            (squeezed << pctx.s0) | (ix << pctx.s_ix) | (ox << pctx.s_ox)
        )
        out = pout | extras[psrc]
        lift = np.full(codes.size, NIL, dtype=np.int64)
        lift[psrc] = out
        return psrc, out, lift

    def join_keys(self, ctx: _SepCtx, codes: np.ndarray) -> np.ndarray:
        """Key = mapped part of phi + the side assignment (booleans free)."""
        base, inside, _ix, _ox = self._parts(ctx, codes)
        return self.plain.join_keys(ctx.bctx, base) | (inside << ctx.s0)

    def join(
        self, ctx: _SepCtx, lcodes: np.ndarray, rcodes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        kl = self.join_keys(ctx, lcodes)
        kr = self.join_keys(ctx, rcodes)
        li, ri = match_key_pairs(kl, kr)
        if li.size == 0:
            return li, ri, _EMPTY, np.zeros(0, dtype=bool)
        bl, _il, ixl, oxl = self._parts(ctx, lcodes)
        br, _ir, ixr, oxr = self._parts(ctx, rcodes)
        bkl = self.plain.join_keys(ctx.bctx, bl)
        bkr = self.plain.join_keys(ctx.bctx, br)
        cml = self.plain.cmask(self.plain.digits(ctx.bctx, bl))
        cmr = self.plain.cmask(self.plain.digits(ctx.bctx, br))
        valid = (cml[li] & cmr[ri]) == 0
        out = (
            kl[li]
            + (bl - bkl)[li]
            + (br - bkr)[ri]
            | ((ixl[li] | ixr[ri]) << ctx.s_ix)
            | ((oxl[li] | oxr[ri]) << ctx.s_ox)
        )
        return li, ri, out, valid

    def join_lift(self, ctx: _SepCtx, codes: np.ndarray) -> np.ndarray:
        """Combine with the empty-C twin carrying the same sides; its
        booleans are exactly the bag's marked contribution."""
        base, inside, _ix, _ox = self._parts(ctx, codes)
        outside = self._outside(ctx, base, inside)
        m_in = ((inside & ctx.marked_bits) != 0).astype(np.int64)
        m_out = ((outside & ctx.marked_bits) != 0).astype(np.int64)
        return codes | (m_in << ctx.s_ix) | (m_out << ctx.s_ox)

    # -- local enumeration -------------------------------------------------

    def _component_masks(self, ctx: _SepCtx, free_mask: int) -> List[int]:
        """Connected components of G[bag] restricted to ``free_mask``."""
        adj = [int(a) for a in ctx.adj_bits]
        comps: List[int] = []
        rem = free_mask
        while rem:
            comp = rem & -rem
            frontier = comp
            while frontier:
                nxt = 0
                for j in _iter_bits(frontier):
                    nxt |= adj[j]
                nxt &= free_mask & ~comp
                comp |= nxt
                frontier = nxt
            comps.append(comp)
            rem &= ~comp
        return comps

    def local_codes(self, ctx: _SepCtx) -> np.ndarray:
        """Sorted codes of every locally plausible extended state: base
        skeletons refined with per-component side assignments and
        bag-consistent booleans (same set as the reference enumeration)."""
        if ctx.local_codes is not None:
            return ctx.local_codes
        bcodes = self.plain.local_codes(ctx.bctx)
        occ = self.plain.occupied_bits(ctx.bctx, bcodes)
        free = (ctx.full & ~occ).astype(np.int64)
        uniq, inv = np.unique(free, return_inverse=True)
        marked = int(ctx.marked_bits)
        parts: List[np.ndarray] = []
        for gi, fm in enumerate(uniq.tolist()):
            rows = bcodes[inv == gi]
            comps = self._component_masks(ctx, fm)
            c = len(comps)
            for mask in range(1 << c):
                ins = 0
                for i in range(c):
                    if mask >> i & 1:
                        ins |= comps[i]
                outs = fm & ~ins
                m_in = (ins & marked) != 0
                m_out = (outs & marked) != 0
                for ixv in (1,) if m_in else (0, 1):
                    for oxv in (1,) if m_out else (0, 1):
                        extra = (
                            (ins << ctx.s0)
                            | (ixv << ctx.s_ix)
                            | (oxv << ctx.s_ox)
                        )
                        parts.append(rows + np.int64(extra))
        codes = np.concatenate(parts) if parts else _EMPTY
        ctx.local_codes = np.sort(codes)
        return ctx.local_codes
