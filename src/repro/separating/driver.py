"""S-Separating Subgraph Isomorphism driver (Section 5.2, Lemma 5.3).

Same Monte Carlo round structure as the plain planar driver: one separating
k-d cover per round, one extended-DP solve per minor (in parallel), find any
fixed separating occurrence with probability >= 1/2 per round, certify
absence with O(log n) rounds w.h.p.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..engine.artifacts import ColdArtifacts
from ..exec.backends import backend_scope
from ..exec.dispatch import PieceDispatch, collect_into
from ..exec.task import make_piece_task
from ..graphs.csr import Graph
from ..isomorphism.packed import overflow_warning_scope
from ..isomorphism.parallel_dp import parallel_dp
from ..isomorphism.pattern import Pattern
from ..isomorphism.planar_si import _rounds_for
from ..isomorphism.recovery import first_witness
from ..isomorphism.sequential_dp import sequential_dp
from ..planar.embedding import PlanarEmbedding
from ..pram import Cost, ShadowArray, Span, Tracer
from .state_space import SeparatingStateSpace

from ..analysis.contracts import cost_contract

__all__ = ["SeparatingSIResult", "decide_separating_isomorphism"]


@dataclass
class SeparatingSIResult:
    """Monte Carlo outcome of the separating search.

    ``witness`` (when requested and found) maps pattern vertices to target
    vertices of the original graph; the image separates the marked set.
    """

    found: bool
    witness: Optional[Dict[int, int]]
    rounds_used: int
    cost: Cost
    pieces_examined: int
    max_piece_width: int
    trace: Optional[Span] = None
    amortized: bool = False
    cold_equivalent_cost: Optional[Cost] = None
    plan: Optional[object] = None


@cost_contract(work="O(c_k n log n + c_k p)", depth="O(log^2 n + c_k p)")
def decide_separating_isomorphism(
    graph: Graph,
    embedding: PlanarEmbedding,
    marked: np.ndarray,
    pattern: Pattern,
    seed: int,
    engine: Optional[str] = None,
    rounds: Optional[int] = None,
    confidence_log_factor: float = 2.0,
    want_witness: bool = False,
    host_classes: Optional[np.ndarray] = None,
    pattern_classes=None,
    kernel: Optional[str] = None,
    artifacts=None,
    backend=None,
    plan=None,
) -> SeparatingSIResult:
    """Decide (w.h.p.) whether some occurrence of the connected ``pattern``
    separates the ``marked`` vertices of the planar ``graph`` (Lemma 5.3).

    ``host_classes`` / ``pattern_classes`` optionally constrain which target
    vertices each pattern vertex may use (see ``SubgraphStateSpace``); the
    vertex connectivity pipeline uses them to pin cycle parity onto the
    bipartition of G'.  ``kernel`` selects the DP table representation
    (``"packed"`` int64 kernels by default, ``"reference"`` tuple dicts) —
    results and charged costs are identical either way.  ``backend``
    selects how the per-minor solves execute (``repro.exec``); results
    and traces are backend-independent.
    """
    from ..engine.planner import apply_plan

    if not pattern.is_connected():
        raise ValueError("the separating driver handles connected patterns")
    provider = (
        artifacts if artifacts is not None else ColdArtifacts(graph, embedding)
    )
    plan_obj, engine, kernel, backend = apply_plan(
        plan, provider, pattern, "separating", seed, rounds,
        engine, kernel, backend,
    )
    if engine not in ("parallel", "sequential"):
        raise ValueError(f"unknown engine {engine!r}")
    if kernel not in ("packed", "reference"):
        raise ValueError(f"unknown kernel {kernel!r}")
    mark = provider.amortization_mark()
    k, d = pattern.k, pattern.diameter()
    tracker = Tracer("decide-separating-si")
    tracker.count(n=graph.n, k=k, d=d)
    total_rounds = _rounds_for(graph.n, rounds, confidence_log_factor)
    pieces_examined = 0
    max_width = 0

    def _result(found, witness, rounds_used):
        hits, saved = provider.amortization_since(mark)
        if plan_obj is not None:
            plan_obj.record_actual(tracker.cost)
        return SeparatingSIResult(
            found=found,
            witness=witness,
            rounds_used=rounds_used,
            cost=tracker.cost,
            pieces_examined=pieces_examined,
            max_piece_width=max_width,
            trace=tracker.root,
            amortized=hits > 0,
            cold_equivalent_cost=tracker.cost + saved,
            plan=plan_obj,
        )

    with backend_scope(backend) as executor:
        for r in range(total_rounds):
            found = False
            found_witness: Optional[Dict[int, int]] = None
            with overflow_warning_scope(provider.overflow_warned), \
                    tracker.span("round"):
                cover = provider.separating_cover(
                    marked, k, d, seed + r, tracker
                )
                with tracker.parallel("pieces") as region:
                    results = ShadowArray("piece-results", len(cover.pieces))
                    serial = executor.serial
                    if not serial:
                        executor.check_sanitizer()
                        want = "witness" if want_witness else "decide"
                        dispatches = []
                    for piece_idx, piece in enumerate(cover.pieces):
                        if int(piece.allowed.sum()) < k:
                            continue
                        pieces_examined += 1
                        max_width = max(
                            max_width, piece.decomposition.width()
                        )
                        local_classes = None
                        if host_classes is not None:
                            # Merged vertices (originals == -1) get class
                            # -1; they are disallowed anyway.
                            local_classes = np.where(
                                piece.originals >= 0,
                                host_classes[np.maximum(piece.originals, 0)],
                                -1,
                            )
                        piece_classes = (
                            pattern_classes
                            if host_classes is not None
                            else None
                        )
                        if not serial:
                            region.record_writes(
                                results, piece_idx, arm=f"piece-{piece_idx}"
                            )
                            branch = Tracer("dp-solve")
                            disp = PieceDispatch(piece=piece, tracer=branch)
                            nice = None
                            if provider.caching:
                                nice = provider.nice(
                                    piece.decomposition, branch
                                )
                            disp.handle = executor.submit(
                                make_piece_task(
                                    piece, pattern, want, "separating",
                                    engine, kernel, nice=nice,
                                    pattern_classes=piece_classes,
                                    host_classes=local_classes,
                                )
                            )
                            dispatches.append(disp)
                            continue
                        space = SeparatingStateSpace(
                            pattern,
                            piece.graph,
                            piece.marked,
                            piece.allowed,
                            host_classes=local_classes,
                            pattern_classes=piece_classes,
                        )
                        with region.branch("dp-solve") as branch:
                            branch.record_writes(results, piece_idx)
                            nice = provider.nice(piece.decomposition, branch)
                            result = (
                                parallel_dp(
                                    space, nice, tracer=branch, engine=kernel
                                )
                                if engine == "parallel"
                                else sequential_dp(
                                    space, nice, tracer=branch, engine=kernel
                                )
                            )
                        if result.found and not found:
                            found = True
                            if want_witness:
                                w = first_witness(space, nice, result.valid)
                                if w is not None:
                                    found_witness = {
                                        p: int(piece.originals[v])
                                        for p, v in w.items()
                                    }
                    if not serial:
                        for disp in dispatches:
                            result = collect_into(disp, provider, executor)
                            region.attach(disp.tracer.root)
                            if result.found and not found:
                                found = True
                                if (
                                    want_witness
                                    and result.witness is not None
                                ):
                                    found_witness = {
                                        p: int(disp.piece.originals[v])
                                        for p, v in result.witness.items()
                                    }
            if found:
                return _result(True, found_witness, r + 1)
        return _result(False, None, total_rounds)
