"""Extended partial matches for S-separating subgraph isomorphism
(Section 5.2.2).

A state extends the plain ``(phi, C, U)`` triple with:

* the side sets ``I`` / ``O`` — the bag's *non-occupied* vertices placed on
  the inside / outside of the sought separation (every non-occupied bag
  vertex carries a side, assigned when it is introduced);
* two booleans ``ix`` / ``ox`` — whether some *marked* vertex (the paper's
  set S) processed so far lies inside / outside.

The paper's rules map onto nice-decomposition steps:

* introduce(v): either v hosts a new pattern-vertex match (plain rules,
  restricted to the allowed set A of Section 5.2.1), or v takes a side —
  legal only when no G-neighbor of v sits on the opposite side ("every
  connected component of G[X] minus the occurrence is entirely inside or
  entirely outside"); a marked v raises its side's boolean;
* forget(v): plain rules when v is occupied, otherwise v leaves its side
  set (its boolean contribution was recorded at introduction, which is the
  "the parent match has to remember" rule);
* join: plain compatibility, identical side assignments (the bags
  coincide), booleans OR-ed.

A root state (empty bag) is accepting when the pattern is fully matched and
``ix and ox`` — a marked vertex on each side, so removing the occurrence
separates S.

Encoding: ``(base, inside, outside, ix, ox)`` with ``base`` the plain tuple
and the side sets as sorted vertex tuples.  The space implements the same
protocol as the plain one, so both DP engines, the recovery walker and the
shortcut machinery run unchanged (Lemma 5.3: the state count grows by the
2^O(k) side/boolean factor only).
"""

from __future__ import annotations

from bisect import bisect_left
from itertools import product
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.csr import Graph
from ..isomorphism.pattern import Pattern
from ..isomorphism.state_space import SubgraphStateSpace

__all__ = ["SeparatingStateSpace"]

SepState = Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...], bool, bool]


def _insert_sorted(tup: Tuple[int, ...], v: int) -> Tuple[int, ...]:
    """Insert ``v`` into a sorted tuple (O(len), no re-sort)."""
    i = bisect_left(tup, v)
    return tup[:i] + (v,) + tup[i:]


class SeparatingStateSpace:
    """State space deciding S-separating subgraph isomorphism."""

    def __init__(
        self,
        pattern: Pattern,
        graph: Graph,
        marked: np.ndarray,
        allowed: Optional[np.ndarray] = None,
        host_classes: Optional[np.ndarray] = None,
        pattern_classes: Optional[Sequence[Optional[int]]] = None,
    ) -> None:
        self.base = SubgraphStateSpace(
            pattern,
            graph,
            allowed=allowed,
            host_classes=host_classes,
            pattern_classes=pattern_classes,
        )
        self.pattern = pattern
        self.graph = graph
        self.k = pattern.k
        marked = np.asarray(marked, dtype=bool)
        if marked.shape != (graph.n,):
            raise ValueError("marked mask must cover every vertex")
        self.marked = marked
        self._local_cache: dict = {}
        self._packed_ops = None

    def packed_ops(self):
        """The packed int64 kernel set for this space (cached; see
        ``repro.separating.packed``)."""
        if self._packed_ops is None:
            from .packed import PackedSeparatingOps

            self._packed_ops = PackedSeparatingOps(self)
        return self._packed_ops

    # -- basic states ------------------------------------------------------

    def leaf_state(self) -> SepState:
        return (self.base.leaf_state(), (), (), False, False)

    def is_accepting(self, s: SepState) -> bool:
        b, _inside, _outside, ix, ox = s
        return self.base.is_accepting(b) and ix and ox

    def is_marked_vertex(self, v: int) -> bool:
        return bool(self.marked[v])

    def admissible_at(
        self, s: SepState, forgotten_count: int, marked_forgotten: bool
    ) -> bool:
        """Per-node filter: the base C-capacity bound, plus boolean
        provenance — ``ix`` (resp. ``ox``) can only hold when a marked
        vertex sits in the bag's inside (outside) set or was forgotten in
        the subtree below."""
        b, inside, outside, ix, ox = s
        if not self.base.admissible_at(b, forgotten_count, marked_forgotten):
            return False
        if ix and not marked_forgotten:
            if not any(self.marked[x] for x in inside):
                return False
        if ox and not marked_forgotten:
            if not any(self.marked[x] for x in outside):
                return False
        return True

    def is_trivial_source(self, s: SepState) -> bool:
        """Unlike the plain space, C = empty does NOT imply validity here:
        the booleans and the side assignment also constrain *forgotten*
        vertices (side consistency through them is not locally checkable).
        Reachability from the path-bottom states is complete on its own, so
        no extra sources are tagged."""
        return False

    # -- transitions -------------------------------------------------------

    def _side_legal(self, v: int, opposite: Tuple[int, ...]) -> bool:
        """May v take a side whose opposite set is ``opposite``?"""
        adj = self.graph.adjacency_set(v)
        return not any(w in adj for w in opposite)

    def introduce(self, v: int, s: SepState) -> Iterator[SepState]:
        b, inside, outside, ix, ox = s
        # Occupied options: the plain space also yields the unchanged state
        # ("v unused"), which here must take a side instead — skip it (an
        # actual extension always differs from b, as v is new to the bag).
        for t in self.base.introduce(v, b):
            if t != b:
                yield (t, inside, outside, ix, ox)
        mk = bool(self.marked[v])
        if self._side_legal(v, outside):
            yield (b, _insert_sorted(inside, v), outside, ix or mk, ox)
        if self._side_legal(v, inside):
            yield (b, inside, _insert_sorted(outside, v), ix, ox or mk)

    def forget(self, v: int, s: SepState) -> Optional[SepState]:
        b, inside, outside, ix, ox = s
        if v in inside:
            return (b, tuple(x for x in inside if x != v), outside, ix, ox)
        if v in outside:
            return (b, inside, tuple(x for x in outside if x != v), ix, ox)
        nb = self.base.forget(v, b)
        if nb is None:
            return None
        return (nb, inside, outside, ix, ox)

    def join(self, sl: SepState, sr: SepState) -> Optional[SepState]:
        bl, il, ol, ixl, oxl = sl
        br, ir, orr, ixr, oxr = sr
        if il != ir or ol != orr:
            return None
        nb = self.base.join(bl, br)
        if nb is None:
            return None
        return (nb, il, ol, ixl or ixr, oxl or oxr)

    def join_key(self, s: SepState) -> tuple:
        b, inside, outside, _ix, _ox = s
        return (self.base.join_key(b), inside, outside)

    # -- canonical lift (Figure 5, extended) ---------------------------------

    def lift(self, kind: str, v: int, s: SepState) -> Optional[SepState]:
        if kind == "introduce":
            b, inside, outside, ix, ox = s
            mk = bool(self.marked[v])
            # Deterministic side preference: outside, then inside.
            if self._side_legal(v, inside):
                return (b, inside, _insert_sorted(outside, v), ix, ox or mk)
            if self._side_legal(v, outside):
                return (b, _insert_sorted(inside, v), outside, ix or mk, ox)
            return None
        if kind == "forget":
            return self.forget(v, s)
        if kind == "join":
            # Combine with the canonical (phi, C = empty) twin carrying the
            # same sides; its booleans are exactly the bag contribution.
            b, inside, outside, ix, ox = s
            m_in = any(self.marked[x] for x in inside)
            m_out = any(self.marked[x] for x in outside)
            return (b, inside, outside, ix or m_in, ox or m_out)
        if kind == "leaf":
            return None
        raise ValueError(f"unknown node kind {kind!r}")

    # -- backward transitions (recovery) -------------------------------------

    def introduce_preimage_candidates(
        self, v: int, s: SepState
    ) -> List[Tuple[SepState, Optional[int]]]:
        b, inside, outside, ix, ox = s
        if v in inside:
            trimmed = tuple(x for x in inside if x != v)
            return [
                ((b, trimmed, outside, bit, ox), None)
                for bit in ((False, True) if self.marked[v] else (ix,))
            ]
        if v in outside:
            trimmed = tuple(x for x in outside if x != v)
            return [
                ((b, inside, trimmed, ix, bit), None)
                for bit in ((False, True) if self.marked[v] else (ox,))
            ]
        out: List[Tuple[SepState, Optional[int]]] = []
        for nb, newly in self.base.introduce_preimage_candidates(v, b):
            if newly is not None:
                out.append(((nb, inside, outside, ix, ox), newly))
        return out

    def forget_preimage_candidates(self, v: int, s: SepState) -> List[SepState]:
        b, inside, outside, ix, ox = s
        out: List[SepState] = [
            (b, tuple(sorted(inside + (v,))), outside, ix, ox),
            (b, inside, tuple(sorted(outside + (v,))), ix, ox),
        ]
        for nb in self.base.forget_preimage_candidates(v, b):
            if nb != b:
                out.append((nb, inside, outside, ix, ox))
        return out

    def join_splits(
        self, s: SepState
    ) -> Iterator[Tuple[SepState, SepState]]:
        b, inside, outside, ix, ox = s
        ix_pairs = [(True, True), (True, False), (False, True)] if ix else [
            (False, False)
        ]
        ox_pairs = [(True, True), (True, False), (False, True)] if ox else [
            (False, False)
        ]
        for bl, br in self.base.join_splits(b):
            for (ixl, ixr), (oxl, oxr) in product(ix_pairs, ox_pairs):
                yield (
                    (bl, inside, outside, ixl, oxl),
                    (br, inside, outside, ixr, oxr),
                )

    # -- local enumeration ---------------------------------------------------

    def local_states(self, bag: Sequence[int]) -> List[SepState]:
        """Locally plausible extended states: base skeletons refined with
        per-component side assignments and bag-consistent booleans."""
        bag_list = [int(v) for v in bag]
        cache_key = tuple(bag_list)
        cached = self._local_cache.get(cache_key)
        if cached is not None:
            return cached
        out: List[SepState] = []
        comp_cache: dict = {}
        for b in self.base.local_states(bag_list):
            occupied = set(x for x in b if x >= 0)
            free = tuple(v for v in bag_list if v not in occupied)
            components = comp_cache.get(free)
            if components is None:
                components = self._components(list(free))
                comp_cache[free] = components
            for mask in range(1 << len(components)):
                inside: List[int] = []
                outside: List[int] = []
                for i, comp in enumerate(components):
                    (inside if mask >> i & 1 else outside).extend(comp)
                m_in = any(self.marked[x] for x in inside)
                m_out = any(self.marked[x] for x in outside)
                for ix in ((True,) if m_in else (False, True)):
                    for ox in ((True,) if m_out else (False, True)):
                        out.append(
                            (
                                b,
                                tuple(sorted(inside)),
                                tuple(sorted(outside)),
                                ix,
                                ox,
                            )
                        )
        self._local_cache[cache_key] = out
        return out

    def _components(self, vertices: List[int]) -> List[List[int]]:
        """Connected components of G restricted to ``vertices``."""
        vset = set(vertices)
        seen = set()
        comps: List[List[int]] = []
        for v in vertices:
            if v in seen:
                continue
            comp = [v]
            seen.add(v)
            queue = [v]
            while queue:
                x = queue.pop()
                for w in self.graph.neighbors(x):
                    w = int(w)
                    if w in vset and w not in seen:
                        seen.add(w)
                        comp.append(w)
                        queue.append(w)
            comps.append(sorted(comp))
        return comps
