"""The separating k-d cover: minors instead of induced subgraphs
(Section 5.2.1, Figure 7).

For an occurrence confined to one window W of the cover, deciding whether it
separates the marked set S needs the *outside* connectivity structure, which
an induced subgraph discards.  The fix: contract every connected component
of ``G - W`` into a single vertex.  The resulting graph is a planar *minor*
containing W induced, plus merged vertices that (a) may not be used by the
occurrence (the allowed set A) and (b) count as marked when their component
contains a marked vertex.  Removing an occurrence O ⊆ W then leaves the
same marked-component structure in the minor as in G — separation is
preserved both ways.

(The paper factors the same construction through per-cluster intermediate
minors — "merge all neighboring clusters into a single vertex each";
quotients compose, so contracting the components of the full complement
directly yields the identical piece.)

The windows themselves come from the usual clustering + per-cluster BFS
(Theorem 2.4's capture probability is untouched).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..cluster.est import est_clustering
from ..graphs.bfs import parallel_bfs
from ..graphs.components import component_members, connected_components
from ..graphs.csr import Graph
from ..planar.contract import contract_vertex_sets, relabel_embedding
from ..planar.embedding import PlanarEmbedding
from ..pram import Cost, ShadowArray, Span, Tracer
from ..treedecomp.baker import baker_decomposition
from ..treedecomp.decomposition import TreeDecomposition

__all__ = ["SeparatingPiece", "SeparatingCover", "separating_cover"]

NIL = -1


@dataclass
class SeparatingPiece:
    """One minor of the separating cover.

    ``originals[v]`` is the target-graph vertex behind local vertex ``v``
    for window vertices, and ``-1`` for merged vertices.  ``allowed`` and
    ``marked`` are local masks (merged vertices: never allowed; marked when
    their contracted component contains a marked vertex).
    """

    graph: Graph
    originals: np.ndarray
    allowed: np.ndarray
    marked: np.ndarray
    decomposition: TreeDecomposition
    cluster: int
    window_start: int


@dataclass
class SeparatingCover:
    pieces: List[SeparatingPiece]
    num_clusters: int
    cost: Cost
    trace: Optional[Span] = None

    def max_width(self) -> int:
        return max(
            (p.decomposition.width() for p in self.pieces), default=0
        )


def separating_cover(
    graph: Graph,
    embedding: PlanarEmbedding,
    marked: np.ndarray,
    k: int,
    d: int,
    seed: int,
    tracer: Optional[Tracer] = None,
    clustering=None,
) -> SeparatingCover:
    """Build the separating k-d cover (see module docstring).

    When a ``tracer`` is given, the construction's phases (``clustering``,
    per-cluster ``bfs``, per-window minor building) nest under a ``cover``
    span of that trace.  ``clustering`` optionally supplies a prebuilt EST
    2k-clustering for the same ``(graph, seed)`` (the target session's
    amortization); it is then neither rebuilt nor re-charged.
    """
    if k < 1 or d < 0:
        raise ValueError("need k >= 1 and d >= 0")
    marked = np.asarray(marked, dtype=bool)
    if marked.shape != (graph.n,):
        raise ValueError("marked mask must cover every vertex")
    tracker = tracer if tracer is not None else Tracer("cover-run")
    with tracker.span("cover", k=k, d=d) as cover_span:
        if clustering is None:
            clustering, _ = est_clustering(
                graph, beta=2.0 * k, seed=seed, tracer=tracker
            )

        pieces: List[SeparatingPiece] = []
        with tracker.parallel("clusters") as clusters_region:
            # Each cluster branch writes its member vertices' cells: the
            # sanitizer checks that the clustering partitions the graph.
            vertex_cells = ShadowArray("cluster-vertices", graph.n)
            for cluster_id, members in enumerate(
                component_members(clustering.labels, clustering.count)
            ):
                with clusters_region.branch("cluster") as branch:
                    branch.record_writes(vertex_cells, members)
                    sub, originals = graph.induced_subgraph(members)
                    branch.charge(
                        Cost.step(max(sub.n, 1)), label="subgraph"
                    )
                    if sub.n == 0:
                        continue
                    bfs, _ = parallel_bfs(sub, [0], tracer=branch)
                    last = max(0, bfs.depth - d)
                    with branch.parallel("windows") as windows:
                        window_cells = ShadowArray(
                            "window-pieces", last + 1
                        )
                        for i in range(last + 1):
                            window_local = np.flatnonzero(
                                (bfs.level >= i) & (bfs.level <= i + d)
                            )
                            if window_local.size == 0:
                                continue
                            window = originals[window_local]
                            # Root the piece at a level-i vertex: every
                            # window vertex is then within O(d) hops
                            # (through the window itself and the merged
                            # inner component), keeping the Baker width
                            # O(d).
                            level_i = window_local[
                                bfs.level[window_local] == i
                            ]
                            root_vertex = int(originals[level_i[0]])
                            with windows.branch("window") as wbranch:
                                wbranch.record_writes(window_cells, i)
                                piece = _window_minor(
                                    graph, embedding, marked, window,
                                    root_vertex, cluster_id, i, wbranch,
                                )
                            if piece is not None:
                                pieces.append(piece)
        tracker.count(pieces=len(pieces))
    return SeparatingCover(
        pieces=pieces,
        num_clusters=clustering.count,
        cost=cover_span.cost,
        trace=cover_span,
    )


def _window_minor(
    graph: Graph,
    embedding: PlanarEmbedding,
    marked: np.ndarray,
    window: np.ndarray,
    root_vertex: int,
    cluster_id: int,
    window_start: int,
    tracker: Tracer,
) -> Optional[SeparatingPiece]:
    """Contract the components of G - window; decompose; build masks."""
    n = graph.n
    in_window = np.zeros(n, dtype=bool)
    in_window[window] = True
    complement = np.flatnonzero(~in_window)
    groups: List[List[int]] = []
    if complement.size:
        comp_graph, comp_orig = graph.induced_subgraph(complement)
        labels, count, ccost = connected_components(comp_graph)
        tracker.charge(ccost, label="components", components=count)
        groups = [
            comp_orig[idx].tolist()
            for idx in component_members(labels, count)
        ]
    minor_emb, rep, cost = contract_vertex_sets(embedding, groups)
    tracker.charge(cost, label="contract")
    # Live vertices: the window plus one representative per group.
    reps = sorted({int(rep[g[0]]) for g in groups})
    live = sorted(set(window.tolist()) | set(reps))
    small, kept = relabel_embedding(minor_emb, live)
    local_n = small.n

    originals = np.full(local_n, NIL, dtype=np.int64)
    allowed = np.zeros(local_n, dtype=bool)
    local_marked = np.zeros(local_n, dtype=bool)
    kept_index = {int(v): j for j, v in enumerate(kept)}
    for v in window.tolist():
        j = kept_index[int(v)]
        originals[j] = v
        allowed[j] = True
        local_marked[j] = bool(marked[v])
    for g in groups:
        j = kept_index[int(rep[g[0]])]
        local_marked[j] = bool(marked[np.asarray(g, dtype=np.int64)].any())

    piece_graph = small.to_graph()
    root = kept_index[root_vertex]
    td, _ = baker_decomposition(small, root, tracer=tracker)
    return SeparatingPiece(
        graph=piece_graph,
        originals=originals,
        allowed=allowed,
        marked=local_marked,
        decomposition=td,
        cluster=cluster_id,
        window_start=window_start,
    )
