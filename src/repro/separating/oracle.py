"""Brute-force oracle for S-separating subgraph isomorphism.

Enumerates occurrences by backtracking and checks the separation condition
by deleting the image and inspecting which components contain marked
vertices.  Used by the test suite to validate the extended DP and by the
tiny-graph fallback of the vertex connectivity driver.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from ..baselines.backtracking import iter_isomorphisms
from ..graphs.components import connected_components
from ..graphs.csr import Graph
from ..isomorphism.pattern import Pattern

__all__ = [
    "is_separating_occurrence",
    "iter_separating_occurrences",
    "has_separating_occurrence",
]


def is_separating_occurrence(
    graph: Graph, marked: np.ndarray, image: set
) -> bool:
    """Does deleting ``image`` leave marked vertices in >= 2 components?"""
    rest = [v for v in range(graph.n) if v not in image]
    if not rest:
        return False
    sub, originals = graph.induced_subgraph(rest)
    labels, count, _ = connected_components(sub)
    marked_components = {
        int(labels[i])
        for i, v in enumerate(originals)
        if marked[int(v)]
    }
    return len(marked_components) >= 2


def iter_separating_occurrences(
    pattern: Pattern,
    graph: Graph,
    marked: np.ndarray,
    allowed: Optional[np.ndarray] = None,
) -> Iterator[Dict[int, int]]:
    """Every subgraph isomorphism whose image separates the marked set."""
    for w in iter_isomorphisms(pattern, graph, allowed=allowed):
        if is_separating_occurrence(graph, marked, set(w.values())):
            yield w


def has_separating_occurrence(
    pattern: Pattern,
    graph: Graph,
    marked: np.ndarray,
    allowed: Optional[np.ndarray] = None,
) -> bool:
    return (
        next(
            iter_separating_occurrences(pattern, graph, marked, allowed),
            None,
        )
        is not None
    )
