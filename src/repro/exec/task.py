"""Pure piece-solve tasks: the unit of work the execution backends run.

The tentpole contract (DESIGN.md, *Execution backends*): solving one cover
piece is a **pure function** of packed arrays — piece CSR + decomposition
arrays + pattern arrays in, packed results + a recorded trace subtree +
counters out.  A :class:`PieceTask` carries nothing but plain scalars,
strings and NumPy arrays (no ``Tracer``, no provider, no live graph
objects), so it pickles across process boundaries and ships its arrays
through shared memory unchanged.  :func:`run_piece_task` is a module-level
function (picklable by reference) that reconstructs the graph/pattern/
decomposition from the arrays, runs the same DP code path the inline
drivers run, and returns a :class:`PieceTaskResult` whose ``trace`` is the
worker-recorded span subtree — the parent merges it back so charged
``Cost`` totals stay byte-identical with the serial backend.

Determinism: every task embeds a content-derived ``seed``
(:func:`repro.engine.keys.solve_fingerprint` prefix), so any randomized
kernel a task may ever grow draws from a per-piece stream fixed by content
— never by submission order or worker identity.  The current DP kernels
are deterministic; the seed pins the contract regardless.

Overflow accounting across process boundaries: ``overflow_warning_scope``
is a :class:`~contextvars.ContextVar` scope that cannot propagate into a
worker, so each task installs its own :class:`OverflowCollector` — a scope
whose ``emit`` hook *records* ``PackedOverflowWarning`` events instead of
raising them.  The events travel back in the result and the parent
re-emits them deduplicated against the provider's session-wide
``overflow_warned`` set; the exact ``packed_overflow_fallbacks`` counter
rides the merged trace counters (warning dedup never rounds it down).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.contracts import task_pure

__all__ = [
    "PieceTask",
    "PieceTaskResult",
    "OverflowCollector",
    "run_piece_task",
    "nice_to_arrays",
    "nice_from_arrays",
    "decomposition_to_arrays",
    "decomposition_from_arrays",
]

# Stable numeric codes for nice-node kinds (shared-memory transport of the
# ``kinds`` string list).
_KIND_CODES = {"leaf": 0, "introduce": 1, "forget": 2, "join": 3}
_KIND_NAMES = {code: kind for kind, code in _KIND_CODES.items()}


class OverflowCollector(set):
    """An ``overflow_warning_scope`` target that records instead of warns.

    ``packed_ops_for`` calls ``scope.emit(warning)`` when the active scope
    has one — inside a worker there is no parent warning machinery (and
    ``warnings.catch_warnings`` is not thread-safe under the threads
    backend), so events are collected as ``(kind, message)`` pairs and
    re-emitted by the parent, deduplicated per provider.
    """

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Tuple[str, str]] = []

    def emit(self, warning: Warning) -> None:
        self.events.append(
            (getattr(warning, "kind", type(warning).__name__), str(warning))
        )


def _pack_ragged(rows) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate a list of 1-d int64 arrays into (values, indptr)."""
    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    for i, row in enumerate(rows):
        indptr[i + 1] = indptr[i] + len(row)
    if len(rows):
        values = np.concatenate(
            [np.asarray(r, dtype=np.int64) for r in rows]
        ) if indptr[-1] else np.zeros(0, dtype=np.int64)
    else:
        values = np.zeros(0, dtype=np.int64)
    return values, indptr


def _unpack_ragged(values: np.ndarray, indptr: np.ndarray) -> List[np.ndarray]:
    return [
        np.asarray(values[indptr[i] : indptr[i + 1]], dtype=np.int64)
        for i in range(len(indptr) - 1)
    ]


def nice_to_arrays(nice) -> Dict[str, np.ndarray]:
    """Stable array form of a :class:`~repro.treedecomp.nice.NiceDecomposition`
    (everything but ``root``, which rides the task as a scalar)."""
    bag_values, bag_indptr = _pack_ragged(nice.bags)
    return {
        "nice_kinds": np.array(
            [_KIND_CODES[k] for k in nice.kinds], dtype=np.int8
        ),
        "nice_vertex": np.asarray(nice.vertex, dtype=np.int64),
        "nice_parent": np.asarray(nice.parent, dtype=np.int64),
        "nice_bag_values": bag_values,
        "nice_bag_indptr": bag_indptr,
    }


def nice_from_arrays(arrays: Dict[str, np.ndarray], root: int):
    """Inverse of :func:`nice_to_arrays`."""
    from ..treedecomp.nice import NiceDecomposition

    return NiceDecomposition(
        kinds=[_KIND_NAMES[int(c)] for c in arrays["nice_kinds"]],
        vertex=np.asarray(arrays["nice_vertex"], dtype=np.int64),
        bags=_unpack_ragged(
            arrays["nice_bag_values"], arrays["nice_bag_indptr"]
        ),
        parent=np.asarray(arrays["nice_parent"], dtype=np.int64),
        root=int(root),
    )


def decomposition_to_arrays(decomposition) -> Dict[str, np.ndarray]:
    """Stable array form of a raw (pre-nice) tree decomposition."""
    bag_values, bag_indptr = _pack_ragged(decomposition.bags)
    return {
        "decomp_parent": np.asarray(decomposition.parent, dtype=np.int64),
        "decomp_bag_values": bag_values,
        "decomp_bag_indptr": bag_indptr,
    }


def decomposition_from_arrays(arrays: Dict[str, np.ndarray], root: int):
    """Inverse of :func:`decomposition_to_arrays`."""
    from ..treedecomp.decomposition import TreeDecomposition

    return TreeDecomposition(
        bags=_unpack_ragged(
            arrays["decomp_bag_values"], arrays["decomp_bag_indptr"]
        ),
        parent=np.asarray(arrays["decomp_parent"], dtype=np.int64),
        root=int(root),
    )


@dataclass
class PieceTask:
    """One piece-solve, fully described by content (see module docstring).

    ``want`` selects the output mode: ``"decide"`` (found marker),
    ``"witness"`` (one local witness), ``"witnesses"`` (every witness,
    mapped through ``originals`` — the listing driver), ``"count"`` (exact
    multiplicity count — the deterministic counting driver's windows).
    ``space`` is ``"subgraph"`` or ``"separating"``; ``prep`` says how much
    decomposition work the worker owes: ``"none"`` (a nice decomposition is
    shipped — the session served or built it parent-side), ``"nice"`` (the
    raw piece decomposition is shipped; the worker binarizes + nices it,
    charging the same cost the cold inline path charges), ``"window"``
    (only the graph is shipped; the worker runs min-fill + nice — the
    counting driver's cold path).
    """

    fingerprint: str
    want: str  # "decide" | "witness" | "witnesses" | "count"
    space: str  # "subgraph" | "separating"
    engine: str  # "parallel" | "sequential"
    kernel: str  # "packed" | "reference"
    prep: str  # "none" | "nice" | "window"
    span_name: str  # "dp-solve" | "window-count"
    graph_n: int
    k: int
    seed: int = 0
    nice_root: int = -1
    decomp_root: int = -1
    pattern_classes: Optional[Tuple[Optional[int], ...]] = None
    arrays: Optional[Dict[str, np.ndarray]] = field(default=None, repr=False)

    def detach_arrays(self) -> Tuple["PieceTask", Dict[str, np.ndarray]]:
        """Split off the array payload (shared-memory transport ships the
        arrays out of band and pickles only the scalar husk)."""
        assert self.arrays is not None
        return replace(self, arrays=None), self.arrays

    @property
    def nbytes(self) -> int:
        """Array payload size (backend ``bytes_shipped`` accounting)."""
        if self.arrays is None:
            return 0
        return sum(int(a.nbytes) for a in self.arrays.values())


@dataclass
class PieceTaskResult:
    """What a worker sends back: packed outputs + the recorded subtree.

    ``witness`` uses the piece-local vertex ids for the decide/witness
    paths (the parent maps through ``piece.originals``, exactly as the
    inline driver does); the listing path's ``witnesses`` are already
    mapped (the worker holds ``originals`` for that purpose, matching the
    inline ``_piece_witnesses`` generator).  ``trace`` is the worker root
    span as a plain dict (``Span.to_dict``); ``overflow_events`` the
    collected ``PackedOverflowWarning`` occurrences (kind, message).
    """

    fingerprint: str
    found: bool
    witness: Optional[Dict[int, int]]
    witnesses: Tuple[Tuple[Tuple[int, int], ...], ...]
    accepting_count: int
    trace: dict
    overflow_events: Tuple[Tuple[str, str], ...]
    wall_s: float


def _task_seed(fingerprint: str) -> int:
    """Deterministic per-piece seed: a content-fingerprint prefix."""
    return int(fingerprint[:12], 16)


def make_piece_task(
    piece,
    pattern,
    want: str,
    space: str,
    engine: str,
    kernel: str,
    nice=None,
    include_originals: bool = False,
    pattern_classes=None,
    host_classes: Optional[np.ndarray] = None,
) -> PieceTask:
    """Build the task for one cover piece (decide / witness / listing).

    When ``nice`` is given the task ships it (``prep="none"``); otherwise
    the raw ``piece.decomposition`` is shipped and the worker runs the
    binarize + nice conversion itself (``prep="nice"``), charging it to
    the worker trace exactly where the inline cold path charges it.
    """
    from ..engine.keys import solve_fingerprint

    graph = piece.graph
    arrays: Dict[str, np.ndarray] = {
        "graph_indptr": np.asarray(graph.indptr, dtype=np.int64),
        "graph_indices": np.asarray(graph.indices, dtype=np.int64),
        "pattern_edges": np.asarray(pattern.graph.edges(), dtype=np.int64),
    }
    nice_root = -1
    decomp_root = -1
    if nice is not None:
        arrays.update(nice_to_arrays(nice))
        nice_root = int(nice.root)
        prep = "none"
    else:
        arrays.update(decomposition_to_arrays(piece.decomposition))
        decomp_root = int(piece.decomposition.root)
        prep = "nice"
    if include_originals:
        arrays["originals"] = np.asarray(piece.originals, dtype=np.int64)
    if space == "separating":
        arrays["marked"] = np.asarray(piece.marked)
        arrays["allowed"] = np.asarray(piece.allowed)
        if host_classes is not None:
            arrays["host_classes"] = np.asarray(host_classes, dtype=np.int64)
    fingerprint = solve_fingerprint(piece, pattern, engine, kernel, want)
    return PieceTask(
        fingerprint=fingerprint,
        want=want,
        space=space,
        engine=engine,
        kernel=kernel,
        prep=prep,
        span_name="dp-solve",
        graph_n=int(graph.n),
        k=int(pattern.k),
        seed=_task_seed(fingerprint),
        nice_root=nice_root,
        decomp_root=decomp_root,
        pattern_classes=(
            tuple(pattern_classes) if pattern_classes is not None else None
        ),
        arrays=arrays,
    )


def make_window_task(subgraph, pattern, nice=None) -> PieceTask:
    """Build the task for one deterministic-count window.

    Cold path ships only the window subgraph (``prep="window"``; the worker
    runs min-fill + nice, charging both); a session that already holds the
    window decomposition ships it (``prep="none"``).
    """
    from ..engine.keys import graph_fingerprint, pattern_fingerprint, _digest

    arrays: Dict[str, np.ndarray] = {
        "graph_indptr": np.asarray(subgraph.indptr, dtype=np.int64),
        "graph_indices": np.asarray(subgraph.indices, dtype=np.int64),
        "pattern_edges": np.asarray(pattern.graph.edges(), dtype=np.int64),
    }
    nice_root = -1
    if nice is not None:
        arrays.update(nice_to_arrays(nice))
        nice_root = int(nice.root)
        prep = "none"
    else:
        prep = "window"
    fingerprint = _digest(
        graph_fingerprint(subgraph).encode(),
        pattern_fingerprint(pattern).encode(),
        b"count",
    )
    return PieceTask(
        fingerprint=fingerprint,
        want="count",
        space="subgraph",
        engine="sequential",
        kernel="packed",
        prep=prep,
        span_name="window-count",
        graph_n=int(subgraph.n),
        k=int(pattern.k),
        seed=_task_seed(fingerprint),
        nice_root=nice_root,
        arrays=arrays,
    )


@task_pure
def run_piece_task(
    task: PieceTask, arrays: Optional[Dict[str, np.ndarray]] = None
) -> PieceTaskResult:
    """Execute one task; pure (everything it reads rides in ``task``).

    Runs in a worker process/thread or inline (the threads backend and the
    serial equality tests call it directly).  ``arrays`` overrides
    ``task.arrays`` when the payload traveled out of band (shared memory).
    """
    from ..graphs.csr import Graph
    from ..isomorphism.packed import overflow_warning_scope
    from ..isomorphism.parallel_dp import parallel_dp
    from ..isomorphism.pattern import Pattern
    from ..isomorphism.recovery import first_witness, iter_witnesses
    from ..isomorphism.sequential_dp import sequential_dp
    from ..isomorphism.state_space import SubgraphStateSpace
    from ..pram import Cost, Tracer

    # Wall-clock is telemetry riding alongside the result, not task
    # state: it never influences the computed values.
    t0 = time.perf_counter()  # repro: noqa[RPR032]
    arr = arrays if arrays is not None else task.arrays
    if arr is None:
        raise ValueError("task has no array payload")
    graph = Graph.from_arrays(
        task.graph_n, arr["graph_indptr"], arr["graph_indices"]
    )
    pattern = Pattern(Graph(task.k, arr["pattern_edges"].reshape(-1, 2)))
    tracer = Tracer(task.span_name)
    collector = OverflowCollector()
    with overflow_warning_scope(collector):
        # Decomposition prep, charged exactly as the inline cold path
        # charges it (the parent charged it already when prep == "none").
        if task.prep == "none":
            nice = nice_from_arrays(arr, task.nice_root)
        elif task.prep == "nice":
            from ..treedecomp.nice import make_nice

            decomposition = decomposition_from_arrays(arr, task.decomp_root)
            nice, _ = make_nice(decomposition.binarize(), tracer=tracer)
        elif task.prep == "window":
            from ..treedecomp.minfill import minfill_decomposition
            from ..treedecomp.nice import make_nice

            td, _ = minfill_decomposition(graph, tracer=tracer)
            nice, _ = make_nice(td.binarize(), tracer=tracer)
        else:
            raise ValueError(f"unknown prep {task.prep!r}")

        if task.space == "subgraph":
            space = SubgraphStateSpace(pattern, graph)
        elif task.space == "separating":
            from ..separating.state_space import SeparatingStateSpace

            space = SeparatingStateSpace(
                pattern,
                graph,
                arr["marked"],
                arr["allowed"],
                host_classes=arr.get("host_classes"),
                pattern_classes=(
                    list(task.pattern_classes)
                    if task.pattern_classes is not None
                    else None
                ),
            )
        else:
            raise ValueError(f"unknown space {task.space!r}")

        if task.engine == "parallel":
            result = parallel_dp(
                space, nice, tracer=tracer, engine=task.kernel
            )
        else:
            result = sequential_dp(
                space, nice, tracer=tracer, engine=task.kernel
            )

        found = bool(result.found)
        witness: Optional[Dict[int, int]] = None
        witnesses: Tuple[Tuple[Tuple[int, int], ...], ...] = ()
        accepting = 0
        if task.want == "decide":
            witness = {} if found else None
        elif task.want == "witness":
            if found:
                w = first_witness(space, nice, result.valid)
                witness = (
                    {int(p): int(v) for p, v in w.items()}
                    if w is not None
                    else None
                )
        elif task.want == "witnesses":
            if found:
                originals = arr["originals"]
                out = []
                count = 0
                for w in iter_witnesses(space, nice, result.valid):
                    count += 1
                    out.append(
                        tuple(
                            sorted(
                                (int(p), int(originals[v]))
                                for p, v in w.items()
                            )
                        )
                    )
                # Same recovery charge the inline generator records.
                tracer.charge(
                    Cost.step(max(count * task.k, 1)),
                    label="recover",
                    witnesses=count,
                )
                witnesses = tuple(out)
        elif task.want == "count":
            accepting = int(result.accepting_count)
        else:
            raise ValueError(f"unknown want {task.want!r}")

    return PieceTaskResult(
        fingerprint=task.fingerprint,
        found=found,
        witness=witness,
        witnesses=witnesses,
        accepting_count=accepting,
        trace=tracer.root.to_dict(),
        overflow_events=tuple(collector.events),
        wall_s=time.perf_counter() - t0,  # repro: noqa[RPR032]
    )
