"""Execution backends: run the piece-parallel driver phases for real.

The PRAM tracer *simulates* the paper's parallelism (span trees, HLF
schedules); this package *executes* it — the piece solves the drivers
declare as parallel branches become pure, picklable tasks
(:mod:`repro.exec.task`) dispatched to a pluggable backend
(:mod:`repro.exec.backends`): ``serial`` (default, the inline loop),
``threads``, or ``processes`` (zero-copy shared-memory array transport).
Results and charged cost traces are byte-identical across backends; only
wall-clock changes.  See DESIGN.md, *Execution backends*.
"""

from .backends import (
    BACKENDS,
    ExecStats,
    ExecutionBackend,
    ParallelSanitizeWarning,
    ProcessesBackend,
    SerialBackend,
    ThreadsBackend,
    backend_scope,
    resolve_backend,
)
from .dispatch import (
    PieceDispatch,
    collect_into,
    fold_overflow_events,
    merge_worker_trace,
)
from .task import (
    OverflowCollector,
    PieceTask,
    PieceTaskResult,
    make_piece_task,
    make_window_task,
    run_piece_task,
)

__all__ = [
    "BACKENDS",
    "ExecStats",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadsBackend",
    "ProcessesBackend",
    "ParallelSanitizeWarning",
    "resolve_backend",
    "backend_scope",
    "PieceDispatch",
    "collect_into",
    "fold_overflow_events",
    "merge_worker_trace",
    "OverflowCollector",
    "PieceTask",
    "PieceTaskResult",
    "make_piece_task",
    "make_window_task",
    "run_piece_task",
]
