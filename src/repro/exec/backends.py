"""Pluggable execution backends for the piece-parallel driver phases.

Three backends run the pure :func:`~repro.exec.task.run_piece_task` unit:

``serial``
    The default; the drivers keep their existing inline loop (no task
    objects, no copies).  Byte-for-byte the pre-backend behavior.

``threads``
    A thread pool.  The GIL serializes the Python DP, so this is a
    *validation* backend (it exercises the full task path with zero
    process machinery) and a real one only for kernels that release the
    GIL.

``processes``
    A process pool (fork start method where available) with zero-copy
    array shipping over ``multiprocessing.shared_memory`` — the backend
    that turns the simulated piece parallelism into wall-clock speedup
    (``benchmarks/bench_multicore.py``).  Set ``REPRO_EXEC_TRANSPORT=
    pickle`` to force the pickle path (or it engages automatically where
    POSIX shared memory is unavailable).

Every backend yields **identical results and identical charged traces**:
the workers record their span subtrees and the dispatcher
(:mod:`repro.exec.dispatch`) merges them back into the parent tracer, so
``result.cost`` and ``trace.to_dict()`` do not depend on the backend
(equality-tested in ``tests/exec/test_backends.py`` and in CI).

Sanitizer policy (DESIGN.md): the CREW/EREW write-race sanitizer keeps its
shadow state in the parent process, so under a non-serial backend it
*degrades to per-worker sanitizing* — each worker still sanitizes its own
DP-internal parallel regions (the env var is inherited), but cross-piece
disjointness is only checked at the parent's region level.  The first
non-serial run under an active sanitizer warns once per backend instance
(:class:`ParallelSanitizeWarning`); set ``REPRO_SANITIZE_PARALLEL=forbid``
to make it a hard error instead.
"""

from __future__ import annotations

import os
import time
import warnings
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..pram import sanitize
from .task import PieceTask, PieceTaskResult, run_piece_task

__all__ = [
    "ExecStats",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadsBackend",
    "ProcessesBackend",
    "ParallelSanitizeWarning",
    "available_cores",
    "resolve_backend",
    "backend_scope",
    "BACKENDS",
]

BACKENDS = ("serial", "threads", "processes")


def available_cores() -> int:
    """CPU cores actually available to this process.

    Fallback chain: ``os.process_cpu_count()`` (3.13+, affinity-aware) ->
    ``os.sched_getaffinity(0)`` (POSIX affinity mask — what a cgroup-
    restricted CI container really grants) -> ``os.cpu_count()`` -> 1.
    Benchmarks report this next to their waiver notes so BENCH_PR6-style
    records are interpretable off the development container.
    """
    probe = getattr(os, "process_cpu_count", None)
    if probe is not None:
        count = probe()
        if count:
            return int(count)
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-POSIX
        return os.cpu_count() or 1


class ParallelSanitizeWarning(RuntimeWarning):
    """A write-race sanitizer is active under a non-serial backend; the
    check degrades to per-worker sanitizing (see module docstring)."""


@dataclass
class ExecStats:
    """Observed execution statistics of one backend instance."""

    tasks: int = 0
    bytes_shipped: int = 0
    task_wall_s: float = 0.0  # summed worker-side wall-clock
    phase_wall_s: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "tasks": self.tasks,
            "bytes_shipped": self.bytes_shipped,
            "task_wall_s": self.task_wall_s,
            "phase_wall_s": dict(self.phase_wall_s),
        }


class _Handle:
    """Uniform future-like handle; ``result()`` blocks and cleans up."""

    __slots__ = ("_future", "_value", "_cleanup", "_account")

    def __init__(self, future=None, value=None, cleanup=None, account=None):
        self._future = future
        self._value = value
        self._cleanup = cleanup
        self._account = account

    def result(self) -> PieceTaskResult:
        try:
            if self._future is not None:
                self._value = self._future.result()
                self._future = None
                if self._account is not None:
                    self._account(self._value)
                    self._account = None
            return self._value
        finally:
            if self._cleanup is not None:
                cleanup, self._cleanup = self._cleanup, None
                cleanup()


class ExecutionBackend:
    """Common submit/stats/sanitizer surface; see subclasses."""

    name = "abstract"
    serial = False

    def __init__(self) -> None:
        self.stats = ExecStats()
        self._sanitize_checked = False

    # -- task execution ----------------------------------------------------

    def submit(self, task: PieceTask) -> _Handle:
        raise NotImplementedError

    def _account(self, task: PieceTask) -> None:
        self.stats.tasks += 1
        self.stats.bytes_shipped += task.nbytes

    def _account_result(self, result: PieceTaskResult) -> PieceTaskResult:
        self.stats.task_wall_s += result.wall_s
        return result

    @contextmanager
    def phase(self, name: str):
        """Wall-clock a driver phase (accumulated per name)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.stats.phase_wall_s[name] = self.stats.phase_wall_s.get(
                name, 0.0
            ) + (time.perf_counter() - t0)

    # -- sanitizer policy --------------------------------------------------

    def check_sanitizer(self) -> None:
        """Enforce the parallel-sanitizer policy (module docstring)."""
        if self.serial or self._sanitize_checked:
            return
        self._sanitize_checked = True
        mode = sanitize.active_mode()
        if mode == sanitize.OFF:
            return
        policy = os.environ.get("REPRO_SANITIZE_PARALLEL", "degrade")
        if policy == "forbid":
            raise RuntimeError(
                f"REPRO_SANITIZE={mode} with backend={self.name!r}: the "
                "write-race sanitizer's shadow state is per-process, and "
                "REPRO_SANITIZE_PARALLEL=forbid disallows degraded "
                "per-worker sanitizing; use backend='serial' (or unset "
                "REPRO_SANITIZE_PARALLEL to accept degraded checking)"
            )
        warnings.warn(
            ParallelSanitizeWarning(
                f"REPRO_SANITIZE={mode} with backend={self.name!r}: "
                "degrading to per-worker sanitizing — each worker checks "
                "its own DP-internal regions, cross-piece disjointness is "
                "checked at the parent region only (set "
                "REPRO_SANITIZE_PARALLEL=forbid to make this an error)"
            ),
            stacklevel=3,
        )

    def close(self) -> None:
        """Release pools/segments; the backend is reusable until closed."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Run tasks inline (drivers normally bypass tasks entirely when
    ``backend.serial``; submitting still works, for the equality tests)."""

    name = "serial"
    serial = True

    def submit(self, task: PieceTask) -> _Handle:
        self._account(task)
        return _Handle(value=self._account_result(run_piece_task(task)))


class ThreadsBackend(ExecutionBackend):
    """Thread-pool backend (GIL-bound for the Python DP; see module
    docstring)."""

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        from concurrent.futures import ThreadPoolExecutor

        self.max_workers = int(max_workers or available_cores())
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-exec"
        )

    def submit(self, task: PieceTask) -> _Handle:
        self._account(task)
        future = self._pool.submit(self._run, task)
        return _Handle(future=future)

    def _run(self, task: PieceTask) -> PieceTaskResult:
        return self._account_result(run_piece_task(task))

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def _run_task_shm(
    task: PieceTask, descriptor, unregister: bool = False
) -> PieceTaskResult:
    """Worker entry for the shared-memory transport (module-level so it
    pickles by reference)."""
    from .shm import release_attached, unpack_arrays

    seg, arrays = unpack_arrays(descriptor)
    try:
        return run_piece_task(task, arrays)
    finally:
        del arrays
        release_attached(seg, unregister=unregister)


def _destroy_outstanding(segments: Dict[str, object]) -> None:
    """Unlink every segment a backend still owned (its ``close()`` never
    ran, or handles were abandoned mid-flight).  Module-level so the
    ``weakref.finalize`` callback holds no reference to the backend."""
    from .shm import destroy_segment

    for name in list(segments):
        seg = segments.pop(name, None)
        if seg is not None:
            destroy_segment(seg)


class ProcessesBackend(ExecutionBackend):
    """Process-pool backend with shared-memory array transport.

    Segment lifetime: the happy path unlinks each task's segment when its
    handle's ``result()`` lands; ``close()`` sweeps anything outstanding
    (abandoned handles, dead workers), and a ``weakref.finalize`` covers
    a backend garbage-collected without ``close()`` — plus the module
    ``atexit`` hook in :mod:`repro.exec.shm` as the last resort.
    """

    name = "processes"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        transport: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.max_workers = int(max_workers or available_cores())
        if transport is None:
            transport = os.environ.get("REPRO_EXEC_TRANSPORT", "shm")
        if transport not in ("shm", "pickle"):
            raise ValueError(f"unknown transport {transport!r}")
        if transport == "shm":
            from .shm import shm_available

            if not shm_available():
                transport = "pickle"
        self.transport = transport
        self._pool = None
        self._start_method = "fork"
        self._outstanding: Dict[str, object] = {}
        self._finalizer = weakref.finalize(
            self, _destroy_outstanding, self._outstanding
        )

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            # Fork (where available) shares the imported library pages and
            # skips re-import cost per worker; tasks are self-contained, so
            # spawn works too (Windows/macOS defaults).
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                ctx = multiprocessing.get_context()
            self._start_method = ctx.get_start_method()
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=ctx
            )
        return self._pool

    def submit(self, task: PieceTask) -> _Handle:
        self._account(task)
        pool = self._ensure_pool()
        if self.transport == "shm":
            from .shm import pack_arrays

            husk, arrays = task.detach_arrays()
            seg, descriptor = pack_arrays(arrays)
            self._outstanding[seg.name] = seg
            future = pool.submit(
                _run_task_shm, husk, descriptor,
                self._start_method != "fork",
            )
            # The parent owns the segment; unlink once the result (and
            # hence the worker's detach) is in.
            return _Handle(
                future=future,
                cleanup=lambda: self._release(seg),
                account=self._account_result,
            )
        future = pool.submit(run_piece_task, task)
        return _Handle(future=future, account=self._account_result)

    def _release(self, seg) -> None:
        from .shm import destroy_segment

        self._outstanding.pop(seg.name, None)
        destroy_segment(seg)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        _destroy_outstanding(self._outstanding)


def resolve_backend(
    spec, max_workers: Optional[int] = None
) -> ExecutionBackend:
    """Turn a backend spec into an instance.

    ``spec`` may already be an :class:`ExecutionBackend` (returned as-is;
    ``max_workers`` must then be None — the instance carries its own), or
    one of the strings ``"serial"`` / ``"threads"`` / ``"processes"``.
    """
    if isinstance(spec, ExecutionBackend):
        if max_workers is not None:
            raise ValueError(
                "max_workers only applies to string backend specs; the "
                "instance already carries its worker count"
            )
        return spec
    if spec == "serial" or spec is None:
        return SerialBackend()
    if spec == "threads":
        return ThreadsBackend(max_workers=max_workers)
    if spec == "processes":
        return ProcessesBackend(max_workers=max_workers)
    raise ValueError(
        f"unknown backend {spec!r} (expected one of {BACKENDS} or an "
        "ExecutionBackend instance)"
    )


@contextmanager
def backend_scope(spec, max_workers: Optional[int] = None):
    """Resolve ``spec``; close the backend on exit only if created here
    (caller-owned instances stay open for reuse across queries)."""
    owned = not isinstance(spec, ExecutionBackend)
    backend = resolve_backend(spec, max_workers=max_workers)
    try:
        yield backend
    finally:
        if owned:
            backend.close()
