"""Dispatch/collect plumbing between the drivers and the backends.

The drivers' non-serial path splits each round's piece loop in two:

1. **dispatch** — per piece, open a *detached* branch :class:`Tracer`
   (named exactly like the inline ``region.branch`` arm), do any
   parent-side provider work (cache lookups; a session's nice
   decomposition, so ``nice-cached`` leaves keep landing in the branch),
   build the pure task and submit it;
2. **collect** — in the original piece order, merge the worker-recorded
   subtree into the branch tracer (:func:`merge_worker_trace`), re-emit
   collected overflow warnings deduplicated against the provider's scope,
   then attach the branch to the parallel region.

Because attachment happens in piece order and the merge reproduces the
worker's children, self-charges and counters verbatim, the resulting span
tree — and therefore every charged ``Cost`` total — is byte-identical to
the serial inline loop (``tests/exec/test_backends.py``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from ..pram import Cost, Tracer
from ..pram.trace import span_from_dict
from .backends import ExecutionBackend
from .task import PieceTaskResult

__all__ = [
    "PieceDispatch",
    "merge_worker_trace",
    "fold_overflow_events",
    "collect_into",
]


@dataclass
class PieceDispatch:
    """One in-flight piece: its branch tracer + result plumbing.

    ``value`` is pre-filled (and ``handle`` None) when the piece never
    went to a worker — a session cache hit, whose zero-cost leaf was
    already charged to ``tracer`` at dispatch time.  ``nested_saved`` is
    the provider-reported saved cost of artifacts served from cache while
    *dispatching* this piece (the session's nice decomposition); it is
    captured at dispatch time because other pieces' hits interleave before
    collection.
    """

    piece: object
    tracer: Tracer
    handle: Optional[object] = None
    value: object = None
    result: Optional[PieceTaskResult] = None
    nested_saved: Cost = Cost.zero()


def merge_worker_trace(tracer: Tracer, trace: dict) -> None:
    """Fold a worker-recorded root span (as a dict) into ``tracer``.

    The worker's root *is* the branch span (same name), so its children
    are re-attached in order, its direct self-charges folded as one
    anonymous charge and its counters re-counted — sequential composition
    makes the totals order-independent, so the merged branch is
    indistinguishable from having recorded the charges inline.
    """
    root = span_from_dict(trace)
    for child in root.children:
        tracer.attach(child)
    if root.self_work or root.self_depth:
        tracer.charge(Cost(root.self_work, root.self_depth))
    if root.counters:
        tracer.count(**root.counters)


def fold_overflow_events(provider, result: PieceTaskResult) -> None:
    """Re-emit worker-collected ``PackedOverflowWarning`` events.

    Deduplicated against the provider's ``overflow_warned`` scope — the
    same once-per-kind-per-scope policy the inline path applies via
    ``overflow_warning_scope`` (the counter already rode the merged trace,
    so dedup never rounds accounting down).
    """
    from ..isomorphism.packed import PackedOverflowWarning

    for kind, message in result.overflow_events:
        if kind in provider.overflow_warned:
            continue
        provider.overflow_warned.add(kind)
        warning = PackedOverflowWarning(message)
        warning.kind = kind
        warnings.warn(warning, stacklevel=3)


def collect_into(
    dispatch: PieceDispatch, provider, backend: ExecutionBackend
) -> Optional[PieceTaskResult]:
    """Resolve one dispatch: wait, merge trace, fold warnings.

    Returns the task result, or None for pre-resolved (cache-hit)
    dispatches.  After this call ``dispatch.tracer.root`` is final and
    ready for ``region.attach``.
    """
    if dispatch.handle is None:
        return None
    result: PieceTaskResult = dispatch.handle.result()
    dispatch.handle = None
    dispatch.result = result
    merge_worker_trace(dispatch.tracer, result.trace)
    fold_overflow_events(provider, result)
    return result
