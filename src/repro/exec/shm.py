"""Shared-memory transport for task array payloads.

The processes backend ships each task's NumPy arrays (piece CSR, nice/
decomposition arrays, pattern edges, masks) through one
``multiprocessing.shared_memory`` segment instead of pickling their bytes:
the parent packs every array back-to-back into a single block, the worker
maps the block and reconstructs zero-copy views, computes, and drops the
mapping — only scalars, the fingerprint and the array *specs* travel
through the pickle channel.

Lifetime protocol: the parent creates and eventually unlinks each segment
(after the task result is collected, or at backend close); the worker only
attaches and closes.  Workers unregister their attachment from the
``resource_tracker`` because the parent owns unlinking — otherwise every
worker's tracker would report the parent's segments as leaked at exit.

Safety net: the happy path unlinks each segment in the task handle's
``result()`` cleanup, but that cleanup never runs when a worker dies
mid-task and the caller abandons the handle, or when the whole backend is
garbage-collected without ``close()``.  Every parent-created segment is
therefore also tracked in a module registry (:func:`pack_arrays`
registers, :func:`destroy_segment` unregisters) that an ``atexit`` hook —
and the backend's ``weakref.finalize`` (see
:class:`~repro.exec.backends.ProcessesBackend`) — drains via
:func:`cleanup_segments`, so no ``/dev/shm`` entry can outlive the
process whatever the failure mode.
"""

from __future__ import annotations

import atexit
import gc
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "ShmArrays",
    "pack_arrays",
    "unpack_arrays",
    "shm_available",
    "cleanup_segments",
    "live_segment_names",
]

_ALIGN = 64  # cache-line align every array start


def _shared_memory():
    from multiprocessing import shared_memory

    return shared_memory


def shm_available() -> bool:
    """Whether POSIX shared memory can actually be created here (some
    sandboxes mount no /dev/shm); probed once per process."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            seg = _shared_memory().SharedMemory(create=True, size=16)
            seg.close()
            seg.unlink()
            _AVAILABLE = True
        except (OSError, ImportError):
            _AVAILABLE = False
    return _AVAILABLE


_AVAILABLE = None

# Parent-owned segments not yet unlinked, keyed by segment name.  Only
# mutated in the parent process (workers never create segments).
_LIVE: Dict[str, object] = {}


def live_segment_names() -> List[str]:
    """Names of parent-owned segments still awaiting unlink (tests and
    the serve daemon's shutdown assertion)."""
    return sorted(_LIVE)


def cleanup_segments() -> int:
    """Unlink every still-registered segment; returns how many were
    reclaimed.  Idempotent — the happy-path :func:`destroy_segment` calls
    unregister as they go, so this normally finds nothing."""
    reclaimed = 0
    for name in list(_LIVE):
        seg = _LIVE.pop(name, None)
        if seg is None:
            continue
        _destroy(seg)
        reclaimed += 1
    return reclaimed


atexit.register(cleanup_segments)


@dataclass(frozen=True)
class ShmArrays:
    """Picklable descriptor of arrays packed into one shared segment.

    ``specs`` maps each array name to ``(dtype_str, shape, offset)`` inside
    the segment called ``name``.
    """

    name: str
    size: int
    specs: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]

    @property
    def nbytes(self) -> int:
        return self.size


def pack_arrays(arrays: Dict[str, np.ndarray]):
    """Pack ``arrays`` into one new shared-memory segment.

    Returns ``(segment, descriptor)``; the caller owns the segment (close
    + unlink when the consumer is done).  Zero-length arrays are carried
    in the descriptor alone (no bytes in the segment).
    """
    shared_memory = _shared_memory()
    offset = 0
    layout: List[Tuple[str, np.ndarray, int]] = []
    for key, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        if arr.nbytes:
            offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
            layout.append((key, arr, offset))
            offset += arr.nbytes
        else:
            layout.append((key, arr, 0))
    seg = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    _LIVE[seg.name] = seg
    specs = []
    for key, arr, off in layout:
        if arr.nbytes:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf, offset=off)
            view[...] = arr
        specs.append((key, arr.dtype.str, tuple(arr.shape), off))
    return seg, ShmArrays(name=seg.name, size=seg.size, specs=tuple(specs))


def unpack_arrays(descriptor: ShmArrays):
    """Attach to a packed segment; returns ``(segment, {name: view})``.

    The views are zero-copy windows into the mapping — the caller must
    drop every view (and anything built over them) before closing the
    segment via :func:`release_attached`.
    """
    shared_memory = _shared_memory()
    seg = shared_memory.SharedMemory(name=descriptor.name)
    out: Dict[str, np.ndarray] = {}
    for key, dtype_str, shape, off in descriptor.specs:
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape)) if shape else 1
        if count * dtype.itemsize == 0:
            out[key] = np.zeros(shape, dtype=dtype)
        else:
            out[key] = np.ndarray(shape, dtype=dtype, buffer=seg.buf, offset=off)
    return seg, out


def release_attached(seg, unregister: bool = False) -> None:
    """Close a worker-side attachment opened by :func:`unpack_arrays`.

    The parent owns the segment's lifetime.  Pass ``unregister=True``
    under a *spawn* start method, where the worker has its own resource
    tracker that would otherwise warn about a "leak" the parent cleans
    up; under *fork* the tracker process is shared with the parent, whose
    own registration must stay until the parent unlinks.  Closing can
    raise ``BufferError`` while views are still referenced somewhere
    (e.g. a reference cycle awaiting collection); one GC pass usually
    clears it, and a still-failing close is abandoned — the mapping is
    reclaimed at worker exit and the parent's unlink frees the segment
    either way.
    """
    if unregister:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
    try:
        seg.close()
    except BufferError:
        gc.collect()
        try:
            seg.close()
        except BufferError:
            pass


def destroy_segment(seg) -> None:
    """Parent-side close + unlink (idempotent)."""
    _LIVE.pop(seg.name, None)
    _destroy(seg)


def _destroy(seg) -> None:
    try:
        seg.close()
    except BufferError:
        gc.collect()
        try:
            seg.close()
        except BufferError:
            pass
    try:
        seg.unlink()
    except FileNotFoundError:
        pass
