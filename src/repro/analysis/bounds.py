"""A tiny symbolic big-O algebra for cost-contract checking.

The interprocedural analyzer (``repro.analysis.cost_check``) composes
declared asymptotic bounds through the program's seq/par structure, so it
needs a value domain for expressions like ``O(n log n)`` or
``O(n / log n + T)``.  A :class:`Bound` is a finite union of
:class:`Term` monomials::

    c * n^a * log^b(n) * <atoms>

where *atoms* are opaque symbols (``k``, ``beta``, ``T``, ``k^k`` ...)
treated as quantities ``>= 1`` that the analyzer cannot order against
``n``.  Planarity note: the target graphs are planar, so the edge count
``m`` is Theta(n) and the parser canonicalizes ``m`` to ``n`` (documented
in DESIGN.md; bounds stated with ``m`` mean the same thing here).

The algebra is deliberately *one-sided*: the checker computes **lower
bounds** on the cost a function body provably incurs and compares them
against the **declared** bound, so every operation rounds unknowable
quantities down to zero.  ``Bound.leq`` is therefore the only comparison
that matters: ``inferred.leq(declared) == False`` is a proof that the body
exceeds its contract (up to the analyzer's heuristics for "graph-sized").
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

__all__ = [
    "Bound",
    "BoundParseError",
    "Term",
    "parse_bound",
]


class BoundParseError(ValueError):
    """A bound string the parser cannot interpret (RPR012 material)."""


Atoms = Tuple[Tuple[str, int], ...]


def _merge_atoms(a: Atoms, b: Atoms) -> Atoms:
    counts = dict(a)
    for name, mult in b:
        counts[name] = counts.get(name, 0) + mult
    return tuple(sorted((k, v) for k, v in counts.items() if v))


def _atoms_subset(small: Atoms, big: Atoms) -> bool:
    """Multiset inclusion: every atom of ``small`` appears in ``big``.

    Sound for ``leq`` because atoms denote quantities ``>= 1`` — dropping
    a factor ``>= 1`` never increases a term.
    """
    have = dict(big)
    return all(have.get(name, 0) >= mult for name, mult in small)


@dataclass(frozen=True)
class Term:
    """One monomial ``n^n_exp * log^log_exp(n) * atoms``.

    ``provenance`` carries the 1-based source line that contributed the
    term (the loop or call the checker blames in RPR010/RPR011 findings);
    it is ignored by all algebraic comparisons.
    """

    n_exp: float = 0.0
    log_exp: float = 0.0
    atoms: Atoms = ()
    provenance: int = field(default=0, compare=False)

    def times(self, other: "Term", provenance: Optional[int] = None) -> "Term":
        return Term(
            self.n_exp + other.n_exp,
            self.log_exp + other.log_exp,
            _merge_atoms(self.atoms, other.atoms),
            provenance if provenance is not None
            else (self.provenance or other.provenance),
        )

    def leq(self, other: "Term") -> bool:
        """Is this term asymptotically dominated by ``other``?

        Requires this term's atoms to be a sub-multiset of the other's
        (opaque symbols are incomparable with ``n``); then compares the
        ``(n, log)`` exponents lexicographically.
        """
        if not _atoms_subset(self.atoms, other.atoms):
            return False
        if self.n_exp != other.n_exp:
            return self.n_exp < other.n_exp
        return self.log_exp <= other.log_exp

    def is_constant(self) -> bool:
        return not self.atoms and self.n_exp == 0 and self.log_exp == 0

    def render(self) -> str:
        parts: List[str] = []

        def exp(base: str, e: float) -> str:
            if e == int(e):
                e = int(e)
            return base if e == 1 else f"{base}^{e}"

        if self.n_exp:
            parts.append(exp("n", self.n_exp))
        if self.log_exp:
            parts.append(exp("log", self.log_exp) + " n")
        for name, mult in self.atoms:
            parts.extend([name] * mult)
        return " ".join(parts) if parts else "1"


CONST = Term()
N = Term(n_exp=1.0)
LOG = Term(log_exp=1.0)


@dataclass(frozen=True)
class Bound:
    """A finite union (asymptotic sum) of :class:`Term` monomials.

    The empty bound is zero cost — the identity of :meth:`plus` and the
    absorbing element of :meth:`times`.
    """

    terms: Tuple[Term, ...] = ()

    @staticmethod
    def zero() -> "Bound":
        return _ZERO

    @staticmethod
    def of(*terms: Term) -> "Bound":
        return Bound(()).plus(Bound(tuple(terms)))

    def is_zero(self) -> bool:
        return not self.terms

    def plus(self, other: "Bound") -> "Bound":
        """Asymptotic sum: union of terms with dominated terms pruned."""
        merged = list(self.terms) + list(other.terms)
        kept: List[Term] = []
        for i, t in enumerate(merged):
            dominated = False
            for j, u in enumerate(merged):
                if i == j:
                    continue
                if t == u and i > j:
                    dominated = True  # duplicate: keep the first copy
                    break
                if t != u and t.leq(u) and not u.leq(t):
                    dominated = True
                    break
            if not dominated:
                kept.append(t)
        kept.sort(key=lambda t: (-t.n_exp, -t.log_exp, t.atoms))
        return Bound(tuple(kept))

    def max(self, other: "Bound") -> "Bound":
        """Asymptotic max — identical to :meth:`plus` in big-O land."""
        return self.plus(other)

    def times(self, factor: Term, provenance: int = 0) -> "Bound":
        """Multiply every term by ``factor`` (a loop multiplier)."""
        if not self.terms:
            return self
        return Bound(
            tuple(t.times(factor, provenance or None) for t in self.terms)
        )

    def leq(self, other: "Bound") -> bool:
        """Is every term dominated by some term of ``other``?

        Zero is below everything; nothing nonzero is below zero.
        """
        return all(
            any(t.leq(u) for u in other.terms) for t in self.terms
        )

    def excess(self, other: "Bound") -> Optional[Term]:
        """The first term of ``self`` not dominated by ``other`` (if any)."""
        for t in self.terms:
            if not any(t.leq(u) for u in other.terms):
                return t
        return None

    def render(self) -> str:
        if not self.terms:
            return "O(0)"
        return "O(" + " + ".join(t.render() for t in self.terms) + ")"


_ZERO = Bound(())

_TOKEN = re.compile(
    r"\s*(?:(?P<num>\d+(?:\.\d+)?)|(?P<op>[+*/()^])|(?P<name>[A-Za-z_]\w*))"
)


def _tokenize(text: str) -> List[str]:
    out: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            raise BoundParseError(
                f"unexpected character {text[pos]!r} in bound {text!r}"
            )
        out.append(match.group(match.lastgroup or "op"))
        pos = match.end()
    return out


class _Parser:
    """Recursive-descent parser for the bound grammar::

        bound   := "O" "(" sum ")" | sum
        sum     := product ("+" product)*
        product := factor (("*" | " ") factor)* ("/" factor)*
        factor  := number | "n" | "m" | "log" ["^" number] primary
                 | "sqrt" "(" primary ")" | atom ["^" (number | atom)]
                 | "(" sum ")"
    """

    def __init__(self, tokens: List[str], source: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.source = source

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        tok = self.peek()
        if tok is None:
            raise BoundParseError(f"truncated bound {self.source!r}")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.take()
        if got != tok:
            raise BoundParseError(
                f"expected {tok!r}, got {got!r} in bound {self.source!r}"
            )

    def parse(self) -> Bound:
        if self.peek() == "O":
            self.take()
            self.expect("(")
            bound = self.sum()
            self.expect(")")
        else:
            bound = self.sum()
        if self.peek() is not None:
            raise BoundParseError(
                f"trailing tokens in bound {self.source!r}"
            )
        return bound

    def sum(self) -> Bound:
        bound = Bound.of(self.product())
        while self.peek() == "+":
            self.take()
            bound = bound.plus(Bound.of(self.product()))
        return bound

    def product(self) -> Term:
        term = self.factor()
        while True:
            nxt = self.peek()
            if nxt == "*":
                self.take()
                term = term.times(self.factor())
            elif nxt == "/":
                self.take()
                term = term.times(_invert(self.factor(), self.source))
            elif nxt is not None and nxt not in ("+", ")", "^"):
                term = term.times(self.factor())  # juxtaposition: "n log n"
            else:
                return term

    def _exponent(self) -> float:
        tok = self.take()
        try:
            return float(tok)
        except ValueError as exc:
            raise BoundParseError(
                f"non-numeric exponent {tok!r} in bound {self.source!r}"
            ) from exc

    def factor(self) -> Term:
        tok = self.take()
        if tok == "(":
            inner = self.sum()
            self.expect(")")
            if len(inner.terms) != 1:
                raise BoundParseError(
                    f"sums may not nest under products in {self.source!r}"
                )
            return inner.terms[0]
        if re.fullmatch(r"\d+(?:\.\d+)?", tok):
            return CONST  # constants vanish in O-notation
        if tok in ("n", "m"):  # planar: m = Theta(n)
            exp = 1.0
            if self.peek() == "^":
                self.take()
                exp = self._exponent()
            return Term(n_exp=exp)
        if tok == "sqrt":
            self.expect("(")
            inner = self.factor()
            self.expect(")")
            return Term(
                inner.n_exp / 2, inner.log_exp / 2, inner.atoms
            )
        if tok == "log":
            exp = 1.0
            if self.peek() == "^":
                self.take()
                exp = self._exponent()
            parens = self.peek() == "("
            if parens:
                self.take()
            operand = self.take()
            if parens:
                self.expect(")")
            if operand in ("n", "m"):
                return Term(log_exp=exp)
            # log of an opaque symbol is itself opaque (``log k``).
            name = f"log {operand}" if exp == 1 else f"log^{exp} {operand}"
            return Term(atoms=((name, 1),))
        # An opaque atom, optionally with an exponent (``k^2``, ``k^k``).
        if self.peek() == "^":
            self.take()
            power = self.take()
            try:
                mult = float(power)
                if mult != int(mult) or mult < 1:
                    raise ValueError
                return Term(atoms=((tok, int(mult)),))
            except ValueError:
                return Term(atoms=((f"{tok}^{power}", 1),))
        return Term(atoms=((tok, 1),))


def _invert(term: Term, source: str) -> Term:
    if term.atoms:
        raise BoundParseError(
            f"cannot divide by opaque symbols in bound {source!r}"
        )
    return Term(-term.n_exp, -term.log_exp)


def parse_bound(text: str) -> Bound:
    """Parse a bound string like ``"O(n log^2 n + T)"`` into a :class:`Bound`.

    Raises :class:`BoundParseError` on anything the grammar cannot read.
    """
    if not isinstance(text, str) or not text.strip():
        raise BoundParseError(f"empty bound {text!r}")
    return _Parser(_tokenize(text.strip()), text).parse()


def par_bound(bounds: Iterable[Bound]) -> Bound:
    """Depth of a parallel region: the max (= asymptotic sum) of the arms."""
    out = Bound.zero()
    for b in bounds:
        out = out.max(b)
    return out
