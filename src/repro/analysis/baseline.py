"""Baseline ("ratchet") support for the analyzer.

A committed ``baseline.json`` freezes the *known* findings so new code is
held to the full standard while existing debt is paid down incrementally.
Entries are keyed ``(rule, repo-relative path, enclosing symbol)`` with a
count — symbol keys survive unrelated edits that would shift line
numbers, while still pinning the debt to a specific function.

The ratchet works both ways:

* a finding **not** covered by the baseline fails the run (no new debt);
* a baseline entry that no longer fires is **stale** and, under
  ``--ratchet``, also fails the run — the entry must be deleted so the
  debt number only decreases.

``# repro: noqa[...]``-suppressed findings are filtered *before* the
baseline applies, so a noqa'd finding never consumes a baseline slot
(no double-counting between the two mechanisms).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .findings import Finding

__all__ = [
    "Baseline",
    "BaselineResult",
    "apply_baseline",
    "default_baseline_path",
    "find_repo_root",
    "repo_relative",
]

_KEY = Tuple[str, str, str]  # (rule, repo-relative posix path, symbol)


def find_repo_root(start: Path) -> Path:
    """Nearest ancestor containing ``.git`` or ``pyproject.toml``."""
    probe = start.resolve()
    if probe.is_file():
        probe = probe.parent
    for cand in (probe, *probe.parents):
        if (cand / ".git").exists() or (cand / "pyproject.toml").exists():
            return cand
    return probe


def repo_relative(path: str, root: Path) -> str:
    """Repo-relative posix form of ``path`` (fallback: posix as-given)."""
    p = Path(path)
    try:
        return p.resolve().relative_to(root).as_posix()
    except ValueError:
        return p.as_posix()


def default_baseline_path() -> Path:
    return Path(__file__).resolve().parent / "baseline.json"


@dataclass
class Baseline:
    """The committed debt ledger."""

    entries: Dict[_KEY, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        entries: Dict[_KEY, int] = {}
        for item in data.get("entries", []):
            key = (item["rule"], item["path"], item.get("symbol", ""))
            entries[key] = int(item.get("count", 1))
        return cls(entries=entries)

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], root: Path
    ) -> "Baseline":
        entries: Dict[_KEY, int] = {}
        for f in findings:
            key = (f.rule, repo_relative(f.path, root), f.symbol)
            entries[key] = entries.get(key, 0) + 1
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        items = [
            {"rule": rule, "path": rel, "symbol": symbol, "count": count}
            for (rule, rel, symbol), count in sorted(self.entries.items())
        ]
        path.write_text(
            json.dumps({"version": 1, "entries": items}, indent=2)
            + "\n",
            encoding="utf-8",
        )


@dataclass
class BaselineResult:
    """Outcome of filtering findings through a baseline."""

    #: Findings not covered by any baseline slot (these fail the run).
    new: List[Finding]
    #: Findings absorbed by the baseline (reported only in verbose modes).
    suppressed: List[Finding]
    #: Entries whose count exceeds what actually fired: (key, expected,
    #: actual).  Under ``--ratchet`` these fail the run too.
    stale: List[Tuple[_KEY, int, int]]


def apply_baseline(
    findings: Sequence[Finding],
    baseline: Optional[Baseline],
    root: Path,
) -> BaselineResult:
    if baseline is None:
        return BaselineResult(new=list(findings), suppressed=[], stale=[])
    remaining = dict(baseline.entries)
    new: List[Finding] = []
    suppressed: List[Finding] = []
    # Findings are pre-sorted (path, line, rule); slots absorb in order so
    # "which finding is new" is deterministic.
    for f in findings:
        key = (f.rule, repo_relative(f.path, root), f.symbol)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            suppressed.append(f)
        else:
            new.append(f)
    stale = [
        (key, baseline.entries[key], baseline.entries[key] - left)
        for key, left in sorted(remaining.items())
        if left > 0
    ]
    return BaselineResult(new=new, suppressed=suppressed, stale=stale)
