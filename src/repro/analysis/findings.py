"""The analyzer's result type."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True)
class Finding:
    """One analyzer hit, pointing at a source line.

    ``rule`` is the stable identifier (``RPR001`` ...) used both for
    reporting and for per-line ``# repro: noqa[RPR001]`` suppression.
    """

    rule: str
    name: str
    path: str
    line: int
    message: str
    #: Module-relative qualname of the enclosing function ("" at module
    #: level).  Baseline entries key on it instead of the brittle line.
    symbol: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "symbol": self.symbol,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.name}] {self.message}"
