"""Module-graph / call-graph substrate shared by the interprocedural passes.

A :class:`ProjectContext` is built once per lint run from every parsed
module (:class:`~repro.analysis.rules.ModuleContext`); the cost-contract,
static-CREW and task-purity passes all query it instead of re-walking the
ASTs.  Resolution is *best effort by construction*: it follows the repo's
actual idioms (relative imports, package ``__init__`` re-exports,
``Class.method`` attribute chains, ``self.method`` within a class) and
returns ``None`` for anything dynamic — callers must treat ``None`` as
"unknown callee" and stay conservative.

Qualified names are module-relative dotted paths without the leading
``repro.`` (``pram.primitives.prefix_sum``,
``exec.task.PieceTask.detach_arrays``), matching the module names the
linter derives from file paths.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .rules import ModuleContext

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ProjectContext",
    "build_project",
    "dotted_name",
    "enclosing_symbol",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains rooted at a Name; else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: The source-level dotted callee (``np.cumsum``, ``tracer.charge``)
    #: or ``None`` for dynamic callees (lambdas, subscripts, calls of calls).
    dotted: Optional[str]
    #: Project-resolved callee qualname, or ``None`` when unknown/external.
    callee: Optional[str]


@dataclass
class FunctionInfo:
    """Everything the interprocedural passes need about one function."""

    qualname: str
    name: str
    module: str
    ctx: ModuleContext
    node: ast.FunctionDef
    class_name: Optional[str] = None
    #: Raw ``@cost_contract`` keyword strings, when syntactically valid.
    contract: Optional[Dict[str, str]] = None
    #: ``(line, message)`` for a malformed ``@cost_contract`` decorator.
    contract_error: Optional[Tuple[int, str]] = None
    #: Line of the ``@cost_contract`` decorator (0 = none).
    contract_line: int = 0
    #: True when decorated ``@task_pure`` (purity-analysis root).
    pure_root: bool = False
    _calls: Optional[List[CallSite]] = field(default=None, repr=False)


def _decorator_dotted(dec: ast.AST) -> Optional[str]:
    if isinstance(dec, ast.Call):
        dec = dec.func
    return dotted_name(dec)


def _extract_contract(info: FunctionInfo) -> None:
    for dec in info.node.decorator_list:
        tail = (_decorator_dotted(dec) or "").split(".")[-1]
        if tail == "task_pure":
            info.pure_root = True
            continue
        if tail != "cost_contract":
            continue
        info.contract_line = dec.lineno
        if not isinstance(dec, ast.Call):
            info.contract_error = (
                dec.lineno,
                "cost_contract must be called with work=/depth= keywords",
            )
            continue
        kwargs: Dict[str, str] = {}
        bad = None
        for kw in dec.keywords:
            if kw.arg not in ("work", "depth"):
                bad = f"unknown cost_contract keyword {kw.arg!r}"
            elif not (
                isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
            ):
                bad = f"cost_contract {kw.arg}= must be a string literal"
            else:
                kwargs[kw.arg] = kw.value.value
        if dec.args:
            bad = "cost_contract takes keyword arguments only"
        if bad is None and set(kwargs) != {"work", "depth"}:
            bad = "cost_contract needs both work= and depth="
        if bad is not None:
            info.contract_error = (dec.lineno, bad)
        else:
            info.contract = kwargs


def _module_package(ctx: ModuleContext) -> List[str]:
    """The package path relative imports resolve against."""
    parts = ctx.module.split(".") if ctx.module else []
    if ctx.path.replace("\\", "/").endswith("__init__.py"):
        return parts
    return parts[:-1]


def _strip_repro(dotted: str) -> str:
    if dotted == "repro":
        return ""
    if dotted.startswith("repro."):
        return dotted[len("repro."):]
    return dotted


class ProjectContext:
    """The parsed project: modules, functions, imports, and call resolution."""

    def __init__(self, modules: Sequence[ModuleContext]) -> None:
        self.modules: Dict[str, ModuleContext] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: Per module: local name -> absolute dotted target.
        self.imports: Dict[str, Dict[str, str]] = {}
        #: Per module: names of top-level classes.
        self.classes: Dict[str, Set[str]] = {}
        for ctx in modules:
            if ctx.module in self.modules:
                continue  # first path wins (duplicate roots)
            self.modules[ctx.module] = ctx
            self._index_module(ctx)

    # -- construction ------------------------------------------------------

    def _index_module(self, ctx: ModuleContext) -> None:
        imports: Dict[str, str] = {}
        self.imports[ctx.module] = imports
        self.classes[ctx.module] = set()
        package = _module_package(ctx)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    imports[local] = _strip_repro(target)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = package[: len(package) - (node.level - 1)]
                    if node.module:
                        base = base + node.module.split(".")
                    base_dotted = ".".join(base)
                else:
                    base_dotted = _strip_repro(node.module or "")
                for alias in node.names:
                    local = alias.asname or alias.name
                    prefix = f"{base_dotted}." if base_dotted else ""
                    imports[local] = _strip_repro(f"{prefix}{alias.name}")

        def add_function(
            node: ast.FunctionDef, class_name: Optional[str]
        ) -> None:
            qual = (
                f"{ctx.module}.{class_name}.{node.name}"
                if class_name
                else f"{ctx.module}.{node.name}"
            )
            if ctx.module == "":
                qual = qual.lstrip(".")
            info = FunctionInfo(
                qualname=qual,
                name=node.name,
                module=ctx.module,
                ctx=ctx,
                node=node,
                class_name=class_name,
            )
            _extract_contract(info)
            self.functions.setdefault(qual, info)

        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_function(stmt, None)  # type: ignore[arg-type]
            elif isinstance(stmt, ast.ClassDef):
                self.classes[ctx.module].add(stmt.name)
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        add_function(sub, stmt.name)  # type: ignore[arg-type]

    # -- resolution --------------------------------------------------------

    def resolve_name(
        self, module: str, dotted: str, _depth: int = 0
    ) -> Optional[str]:
        """Resolve a source-level dotted name to a function qualname.

        Follows the module's import table, package re-exports
        (``pram.__init__`` style ``from .cost import Cost``) and
        ``Class.method`` attribute access.  Returns ``None`` for external
        or dynamic names.
        """
        if _depth > 8 or not dotted:
            return None
        head, _, rest = dotted.partition(".")

        # Module-local function / class.
        local = f"{module}.{dotted}" if module else dotted
        if local in self.functions:
            return local
        if head in self.classes.get(module, ()):
            if rest:
                cand = f"{module}.{dotted}" if module else dotted
                if cand in self.functions:
                    return cand
            return None

        imports = self.imports.get(module, {})
        if head in imports:
            target = imports[head]
            full = f"{target}.{rest}" if rest else target
            return self._resolve_absolute(full, _depth + 1)
        return None

    def _resolve_absolute(self, full: str, _depth: int) -> Optional[str]:
        if full in self.functions:
            return full
        parts = full.split(".")
        # Longest known-module prefix, then resolve the remainder inside it.
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            if mod in self.modules:
                rest = ".".join(parts[cut:])
                cand = f"{mod}.{rest}"
                if cand in self.functions:
                    return cand
                return self.resolve_name(mod, rest, _depth + 1)
        return None

    def resolve_call(
        self, info: FunctionInfo, node: ast.Call
    ) -> Optional[str]:
        """Resolve one call inside ``info`` to a callee qualname (or None)."""
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        if info.class_name is not None and dotted.startswith("self."):
            cand = f"{info.module}.{info.class_name}.{dotted[5:]}"
            if cand in self.functions:
                return cand
            return None
        resolved = self.resolve_name(info.module, dotted)
        if resolved is not None:
            return resolved
        # Calling a class constructs an instance: credit ``__init__``.
        if "." not in dotted:
            imports = self.imports.get(info.module, {})
            target = imports.get(dotted)
            if target is not None:
                init = self._resolve_absolute(f"{target}.__init__", 1)
                if init is not None:
                    return init
            if dotted in self.classes.get(info.module, ()):
                cand = f"{info.module}.{dotted}.__init__"
                if cand in self.functions:
                    return cand
        return None

    def calls(self, info: FunctionInfo) -> List[CallSite]:
        """Every call site in ``info`` (resolved where possible), cached."""
        if info._calls is None:
            sites: List[CallSite] = []
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    sites.append(
                        CallSite(
                            node=node,
                            dotted=dotted_name(node.func),
                            callee=self.resolve_call(info, node),
                        )
                    )
            info._calls = sites
        return info._calls

    def reachable(self, roots: Iterable[str]) -> List[str]:
        """Qualnames reachable from ``roots`` via resolved calls (BFS order,
        roots included, deterministic)."""
        seen: Set[str] = set()
        order: List[str] = []
        frontier = [r for r in roots if r in self.functions]
        while frontier:
            nxt: List[str] = []
            for qual in frontier:
                if qual in seen:
                    continue
                seen.add(qual)
                order.append(qual)
                info = self.functions[qual]
                for site in self.calls(info):
                    if site.callee is not None and site.callee not in seen:
                        nxt.append(site.callee)
            frontier = sorted(set(nxt) - seen)
        return order

    def pure_roots(self) -> List[str]:
        return sorted(
            q for q, f in self.functions.items() if f.pure_root
        )

    def contracted(self) -> List[FunctionInfo]:
        return [
            self.functions[q]
            for q in sorted(self.functions)
            if self.functions[q].contract is not None
            or self.functions[q].contract_error is not None
        ]


def build_project(modules: Sequence[ModuleContext]) -> ProjectContext:
    """Build the shared substrate from every parsed module of the run."""
    return ProjectContext(modules)


def enclosing_symbol(ctx: ModuleContext, line: int) -> str:
    """Module-relative qualname of the innermost def enclosing ``line``.

    Empty string at module level.  Used to key baseline entries by symbol
    rather than by brittle line numbers.
    """
    best: Tuple[int, str] = (0, "")

    def visit(body: List[ast.stmt], prefix: str) -> None:
        nonlocal best
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                start = min(
                    [stmt.lineno]
                    + [d.lineno for d in stmt.decorator_list]
                )
                end = stmt.end_lineno or stmt.lineno
                name = f"{prefix}.{stmt.name}" if prefix else stmt.name
                if start <= line <= end and start >= best[0]:
                    if not isinstance(stmt, ast.ClassDef):
                        best = (start, name)
                    visit(stmt.body, name)

    visit(ctx.tree.body, "")
    symbol = best[1]
    return f"{ctx.module}.{symbol}" if ctx.module and symbol else symbol
