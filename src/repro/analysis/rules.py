"""The analyzer's rule catalog (RPR001-RPR004).

Each rule is a small class over the module's ``ast`` tree; the linter
instantiates every rule in :data:`ALL_RULES` against every module and
collects :class:`~repro.analysis.findings.Finding` objects.  Rules are
deliberately heuristic — they flag *hazards* for a human to triage, and
intentional sites are suppressed in place with
``# repro: noqa[RPR00x]  -- justification``.

Scope: only modules under the :data:`TRACED_PACKAGES` sub-packages of
``repro`` are "traced algorithm modules"; modules elsewhere (CLI,
benchmarks, the analyzer itself) get only the universally applicable
rules (RPR003, RPR004).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

from .findings import Finding

__all__ = [
    "ALL_RULES",
    "TRACED_PACKAGES",
    "ModuleContext",
    "Rule",
    "UnchargedWork",
    "DepthHazard",
    "Nondeterminism",
    "UnsafeSpan",
]

#: Sub-packages of ``repro`` whose modules carry work--depth obligations.
TRACED_PACKAGES = frozenset(
    {
        "graphs",
        "cluster",
        "isomorphism",
        "separating",
        "connectivity",
        "treedecomp",
        "planar",
        "baselines",
        "pram",
    }
)

#: Calls that constitute evidence the surrounding function charges its
#: work into the cost model (directly or by delegating to a charged
#: primitive / traced helper).
CHARGE_ATTRS = frozenset({"charge", "add", "step", "par", "seq"})
CHARGED_CALLEES = frozenset(
    {
        "Cost",
        "prefix_sum",
        "exclusive_prefix_sum",
        "parallel_reduce",
        "pack",
        "pack_indices",
        "pointer_jump_roots",
        "list_rank",
        "list_rank_optimal",
        "evaluate_expression_tree",
    }
)
CHARGE_KEYWORDS = frozenset({"tracer", "tracker", "cost"})


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one module."""

    path: str
    source: str
    tree: ast.Module
    #: Dotted module name relative to the scanned root (best effort).
    module: str
    #: True when the module lives under a traced algorithm package.
    traced: bool
    lines: List[str] = field(init=False)

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()


class Rule:
    """Base class: subclasses set ``id``/``name`` and implement ``check``."""

    id: str = "RPR000"
    name: str = "abstract"
    description: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, line: int, message: str) -> Finding:
        return Finding(
            rule=self.id, name=self.name, path=ctx.path, line=line,
            message=message,
        )


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    """Yield every function/method definition node in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _cost_aware(func: ast.FunctionDef) -> bool:
    """A function has engaged the cost protocol when a tracer/tracker is
    in scope: received as a parameter or instantiated in the body."""
    args = func.args
    params = args.posonlyargs + args.args + args.kwonlyargs
    if any(p.arg in ("tracer", "tracker") for p in params):
        return True
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None and dotted.split(".")[-1] in (
                "Tracer",
                "Tracker",
            ):
                return True
    return False


class UnchargedWork(Rule):
    """RPR001: NumPy bulk work bypassing an in-scope tracer.

    A traced algorithm function that has a tracer/tracker in scope (as a
    parameter, or built in the body) but performs ``np.*`` work without
    any ``charge``/``step``/``Cost``/primitive call — and without handing
    the tracer to a callee — does work the cost model never sees.  Leaf
    helpers with no tracer in scope are out of scope here: their work is
    charged at call sites (the trace-parity tests cover that contract).
    One finding per function, anchored at its ``def`` line.
    """

    id = "RPR001"
    name = "uncharged-work"
    description = (
        "NumPy work in a cost-aware traced function with no "
        "charge/step/primitive call and no tracer handed on"
    )

    #: The PRAM substrate *implements* the accounting; its own NumPy use
    #: is bookkeeping, not algorithm work.
    EXEMPT_PACKAGES = frozenset({"pram"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.traced:
            return
        package = ctx.module.split(".")[0] if ctx.module else ""
        if package in self.EXEMPT_PACKAGES:
            return
        for func in _functions(ctx.tree):
            if not _cost_aware(func):
                continue
            uses_numpy = False
            charges = False
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted(node.func)
                if dotted is not None and (
                    dotted.startswith("np.") or dotted.startswith("numpy.")
                ):
                    uses_numpy = True
                if isinstance(node.func, ast.Attribute):
                    if node.func.attr in CHARGE_ATTRS:
                        charges = True
                    if node.func.attr in CHARGED_CALLEES:
                        charges = True
                elif isinstance(node.func, ast.Name):
                    if node.func.id in CHARGED_CALLEES:
                        charges = True
                for kw in node.keywords:
                    if kw.arg in CHARGE_KEYWORDS:
                        charges = True
            if uses_numpy and not charges:
                yield self.finding(
                    ctx,
                    func.lineno,
                    f"function {func.name!r} has a tracer in scope but "
                    "does NumPy work without charging the cost model "
                    "(no charge/step/Cost/primitive call, no tracer "
                    "passed on)",
                )


#: Docstring phrases that claim a polylogarithmic depth bound.
_DEPTH_CLAIM = re.compile(
    r"O\([^)]*\blog\b[^)]*\)[^.\n]{0,60}\bdepth\b"
    r"|\bdepth\b[^.\n]{0,60}O\([^)]*\blog\b[^)]*\)"
    r"|\bpolylog(?:arithmic)?\b[^.\n]{0,60}\bdepth\b"
    r"|\bdepth\b[^.\n]{0,60}\bpolylog(?:arithmic)?\b",
    re.IGNORECASE,
)

#: Names/attributes that smell like a graph-sized quantity.
_SIZE_NAMES = frozenset({"n", "m", "num_nodes", "n_nodes", "num_vertices"})
_SIZE_ATTRS = frozenset({"n", "m", "size", "num_nodes"})


def _graph_sized(expr: ast.AST) -> bool:
    """Heuristic: does this expression scale with the graph size?"""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr in _SIZE_ATTRS:
            return True
        if isinstance(node, ast.Name) and node.id in _SIZE_NAMES:
            return True
    return False


def _is_parallel_idiom(loop: ast.For) -> bool:
    """True when the loop body opens parallel branches (simulated-parallel
    idiom: the loop *enumerates* branches, it is not a sequential chain)."""
    for node in ast.walk(loop):
        if isinstance(node, ast.With):
            for item in node.items:
                call = item.context_expr
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr in ("branch", "parallel")
                ):
                    return True
    return False


def _charged_const_depth_span(stmt: ast.With) -> bool:
    """True for ``with tracer.span(...)`` blocks that explicitly charge a
    ``Cost`` with a *constant* depth (``Cost(n, 1)``-shaped).

    Such a block models a data-parallel phase whose per-element loop is a
    simulation artifact — the declared depth already accounts for it, so
    RPR002 must not fire on loops inside it.
    """
    opens_span = any(
        isinstance(item.context_expr, ast.Call)
        and isinstance(item.context_expr.func, ast.Attribute)
        and item.context_expr.func.attr == "span"
        for item in stmt.items
    )
    if not opens_span:
        return False
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if not dotted:
            continue
        parts = dotted.split(".")
        if parts[-1] == "Cost":
            depth: "ast.expr | None" = None
            if len(node.args) > 1:
                depth = node.args[1]
            for kw in node.keywords:
                if kw.arg == "depth":
                    depth = kw.value
            if isinstance(depth, ast.Constant) and isinstance(
                depth.value, int
            ):
                return True
        elif len(parts) >= 2 and parts[-2] == "Cost" \
                and parts[-1] == "step":
            return True  # Cost.step is constant-depth by definition
    return False


class DepthHazard(Rule):
    """RPR002: sequential loop over graph-sized data under a polylog claim.

    When a function's docstring advertises an ``O(log ...)`` depth bound,
    a plain ``for``/``while`` over ``range(graph.n)``-like iterables is a
    Theta(n) sequential chain unless each iteration is a parallel branch
    or the loop sits in a span that explicitly charges a constant-depth
    ``Cost`` (the charged bound supersedes the syntactic heuristic).
    """

    id = "RPR002"
    name = "depth-hazard"
    description = (
        "sequential loop over a graph-sized iterable in a function whose "
        "docstring claims polylog depth"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.traced:
            return
        for func in _functions(ctx.tree):
            doc = ast.get_docstring(func)
            if not doc or not _DEPTH_CLAIM.search(doc):
                continue
            exempt: List[Tuple[int, int]] = [
                (node.lineno, node.end_lineno or node.lineno)
                for node in ast.walk(func)
                if isinstance(node, ast.With)
                and _charged_const_depth_span(node)
            ]
            for node in ast.walk(func):
                if isinstance(node, ast.For):
                    if _is_parallel_idiom(node):
                        continue
                    if any(
                        start <= node.lineno <= end
                        for start, end in exempt
                    ):
                        continue
                    if _graph_sized(node.iter):
                        yield self.finding(
                            ctx,
                            node.lineno,
                            f"function {func.name!r} claims polylog depth "
                            "but runs a sequential loop over a graph-sized "
                            "iterable",
                        )
                elif isinstance(node, ast.While):
                    if _graph_sized(node.test):
                        yield self.finding(
                            ctx,
                            node.lineno,
                            f"function {func.name!r} claims polylog depth "
                            "but runs a while-loop conditioned on a "
                            "graph-sized quantity",
                        )


#: ``np.random.<allowed>`` constructors of seeded generators.
_ALLOWED_RNG = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64"})


class Nondeterminism(Rule):
    """RPR003: module-level RNG state instead of a seeded Generator.

    ``random.*`` and legacy ``np.random.*`` functions draw from hidden
    global state, voiding the repo's per-seed reproducibility guarantee;
    all randomness must flow through ``np.random.default_rng(seed)``.
    """

    id = "RPR003"
    name = "nondeterminism"
    description = (
        "use of the random module or legacy np.random global state "
        "instead of a seeded np.random.default_rng Generator"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.finding(
                            ctx,
                            node.lineno,
                            "import of the stdlib random module (hidden "
                            "global state); use np.random.default_rng(seed)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        ctx,
                        node.lineno,
                        "import from the stdlib random module (hidden "
                        "global state); use np.random.default_rng(seed)",
                    )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted is None:
                    continue
                for prefix in ("np.random.", "numpy.random."):
                    if dotted.startswith(prefix):
                        tail = dotted[len(prefix):].split(".")[0]
                        if tail not in _ALLOWED_RNG:
                            yield self.finding(
                                ctx,
                                node.lineno,
                                f"legacy global-state RNG {dotted!r}; use "
                                "np.random.default_rng(seed)",
                            )
                        break


class UnsafeSpan(Rule):
    """RPR004: a Tracer span opened outside a ``with`` statement.

    ``span()``/``parallel()``/``branch()`` return context managers that
    close (and charge) on exit; calling one without ``with`` (or
    ``ExitStack.enter_context``) leaks an open span and corrupts the
    phase tree on exceptions.
    """

    id = "RPR004"
    name = "unsafe-span"
    description = (
        "Tracer span/parallel/branch opened without a with-statement"
    )

    _SPAN_ATTRS = frozenset({"span", "parallel", "branch"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        managed: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.With):
                for item in node.items:
                    managed.add(id(item.context_expr))
            elif isinstance(node, ast.Call):
                # ExitStack.enter_context(tracker.span(...)) is managed.
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "enter_context"
                ):
                    for arg in node.args:
                        managed.add(id(arg))
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._SPAN_ATTRS
                and id(node) not in managed
            ):
                yield self.finding(
                    ctx,
                    node.lineno,
                    f"{node.func.attr}() span opened without a "
                    "with-statement; the span never closes on exceptions",
                )


ALL_RULES: Tuple[Rule, ...] = (
    UnchargedWork(),
    DepthHazard(),
    Nondeterminism(),
    UnsafeSpan(),
)
