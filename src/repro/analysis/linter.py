"""Driver for the cost-soundness lint: discovery, noqa, baseline, output.

Suppression syntax (per line, at the reported line)::

    risky_call()  # repro: noqa[RPR001] -- justification
    risky_call()  # repro: noqa          (suppresses every rule)

``lint_paths`` walks ``.py`` files under the given roots (skipping
``__pycache__`` and ``.gitignore``-matched paths), runs the per-module
rules *and* the interprocedural project passes (cost contracts, static
CREW, task purity) over the whole file set, and returns findings in a
deterministic (path, line, rule) order.  ``lint_source`` lints one
in-memory module against a singleton project (the test fixtures use it).
``run`` is the CLI entry behind ``python -m repro lint`` and layers the
committed-baseline ratchet on top.
"""

from __future__ import annotations

import ast
import dataclasses
import fnmatch
import json
import re
import sys
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    TextIO,
    Tuple,
)

from .baseline import (
    Baseline,
    BaselineResult,
    apply_baseline,
    default_baseline_path,
    find_repo_root,
)
from .callgraph import ProjectContext, build_project, enclosing_symbol
from .cost_check import DEFAULT_REQUIRED_CONTRACTS, CostContractPass
from .crew_check import StaticCrewPass
from .findings import Finding
from .purity import TaskPurityPass
from .rules import ALL_RULES, TRACED_PACKAGES, ModuleContext, Rule
from .sarif import RULE_SUMMARIES, render_sarif

__all__ = [
    "default_project_passes",
    "lint_paths",
    "lint_source",
    "parse_noqa",
    "run",
]

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


def parse_noqa(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line numbers to suppressed rule-id sets.

    ``None`` means a bare ``# repro: noqa`` (suppress everything on the
    line); otherwise the set holds uppercase rule ids.
    """
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            ids = {r.strip().upper() for r in rules.split(",") if r.strip()}
            prev = out.get(lineno)
            if prev is None and lineno in out:
                continue  # bare noqa already suppresses everything
            out[lineno] = ids | (prev or set())
    return out


def _suppressed(finding: Finding, noqa: Dict[int, Optional[Set[str]]]) -> bool:
    if finding.line not in noqa:
        return False
    rules = noqa[finding.line]
    return rules is None or finding.rule in rules


def _module_name(path: Path) -> str:
    """Dotted name relative to the ``repro`` package root (best effort)."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_traced(module: str) -> bool:
    head = module.split(".")[0] if module else ""
    return head in TRACED_PACKAGES


def default_project_passes(
    required: Optional[Sequence[str]] = None,
):
    """The three interprocedural passes in their standard configuration."""
    return (
        CostContractPass(
            required if required is not None else DEFAULT_REQUIRED_CONTRACTS
        ),
        StaticCrewPass(),
        TaskPurityPass(),
    )


def _build_context(
    source: str, path: str, traced: Optional[bool]
) -> Tuple[Optional[ModuleContext], Optional[Finding]]:
    module = _module_name(Path(path)) if path != "<string>" else ""
    if traced is None:
        traced = _is_traced(module)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Finding(
            rule="RPR999",
            name="syntax-error",
            path=path,
            line=exc.lineno or 1,
            message=f"could not parse module: {exc.msg}",
        )
    return (
        ModuleContext(
            path=path, source=source, tree=tree, module=module,
            traced=traced,
        ),
        None,
    )


def _finalize(
    findings: List[Finding],
    contexts: Dict[str, ModuleContext],
    noqa_maps: Dict[str, Dict[int, Optional[Set[str]]]],
) -> List[Finding]:
    """noqa-filter, attach enclosing symbols, and sort deterministically."""
    out: List[Finding] = []
    for finding in findings:
        noqa = noqa_maps.get(finding.path, {})
        if _suppressed(finding, noqa):
            continue
        ctx = contexts.get(finding.path)
        if ctx is not None and not finding.symbol:
            finding = dataclasses.replace(
                finding, symbol=enclosing_symbol(ctx, finding.line)
            )
        out.append(finding)
    out.sort(key=lambda f: (f.path, f.line, f.rule, f.symbol))
    return out


def _lint_contexts(
    contexts: Sequence[ModuleContext],
    rules: Optional[Sequence[Rule]],
    passes: Optional[Sequence[object]],
) -> List[Finding]:
    findings: List[Finding] = []
    for ctx in contexts:
        for rule in rules if rules is not None else ALL_RULES:
            findings.extend(rule.check(ctx))
    project: Optional[ProjectContext] = None
    for pass_ in (
        passes if passes is not None else default_project_passes()
    ):
        if project is None:
            project = build_project(contexts)
        findings.extend(pass_.check_project(project))  # type: ignore[attr-defined]
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    traced: Optional[bool] = None,
    rules: Optional[Sequence[Rule]] = None,
    passes: Optional[Sequence[object]] = None,
) -> List[Finding]:
    """Lint one module given as a string; honors noqa comments.

    ``traced`` overrides the package-based classification (fixture files
    outside ``src/repro`` use ``traced=True`` to exercise RPR001/RPR002).
    The interprocedural passes run against a singleton project, so
    contract/CREW/purity fixtures work file-at-a-time too.
    """
    ctx, syntax_error = _build_context(source, path, traced)
    if ctx is None:
        assert syntax_error is not None
        return [syntax_error]
    findings = _lint_contexts([ctx], rules, passes)
    return _finalize(
        findings, {ctx.path: ctx}, {ctx.path: parse_noqa(source)}
    )


# -- file discovery ---------------------------------------------------------


def _load_gitignore(root: Path) -> List[str]:
    gitignore = root / ".gitignore"
    if not gitignore.exists():
        return []
    patterns: List[str] = []
    for raw in gitignore.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("!"):
            continue  # negations unsupported: better to lint too much
        patterns.append(line.rstrip("/"))
    return patterns


def _gitignored(rel_posix: str, patterns: Sequence[str]) -> bool:
    parts = rel_posix.split("/")
    for pattern in patterns:
        if "/" in pattern:
            anchored = pattern.lstrip("/")
            if fnmatch.fnmatch(rel_posix, anchored) or fnmatch.fnmatch(
                rel_posix, anchored + "/*"
            ):
                return True
        else:
            # An unanchored pattern matches any path segment.
            if any(fnmatch.fnmatch(part, pattern) for part in parts):
                return True
    return False


def _iter_py_files(roots: Sequence[str]) -> Iterable[Path]:
    seen: Set[Path] = set()
    for root in roots:
        p = Path(root)
        if p.is_dir():
            repo = find_repo_root(p)
            patterns = _load_gitignore(repo)
            files = []
            for f in sorted(p.rglob("*.py")):
                if "__pycache__" in f.parts:
                    continue
                if any(
                    part.startswith(".") and part not in (".", "..")
                    for part in f.parts
                ):
                    continue
                try:
                    rel = f.resolve().relative_to(repo).as_posix()
                except ValueError:
                    rel = f.as_posix()
                if _gitignored(rel, patterns):
                    continue
                files.append(f)
        else:
            files = [p]
        for f in files:
            r = f.resolve()
            if r not in seen:
                seen.add(r)
                yield f


def lint_paths(
    roots: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    passes: Optional[Sequence[object]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories.

    Per-module rules run file-by-file; the interprocedural passes run
    once over the full file set so cross-module contracts resolve.
    """
    contexts: List[ModuleContext] = []
    noqa_maps: Dict[str, Dict[int, Optional[Set[str]]]] = {}
    syntax_findings: List[Finding] = []
    for path in _iter_py_files(roots):
        source = path.read_text(encoding="utf-8")
        ctx, syntax_error = _build_context(source, str(path), None)
        if ctx is None:
            assert syntax_error is not None
            syntax_findings.append(syntax_error)
            continue
        contexts.append(ctx)
        noqa_maps[ctx.path] = parse_noqa(source)
    findings = syntax_findings + _lint_contexts(contexts, rules, passes)
    return _finalize(
        findings, {ctx.path: ctx for ctx in contexts}, noqa_maps
    )


# -- rendering --------------------------------------------------------------


def render_text(
    findings: List[Finding],
    stream: TextIO,
    result: Optional[BaselineResult] = None,
) -> None:
    for finding in findings:
        print(finding.render(), file=stream)
    n = len(findings)
    summary = f"{n} finding{'s' if n != 1 else ''}"
    if result is not None:
        summary += f" ({len(result.suppressed)} baselined)"
        for (rule, path, symbol), expected, actual in result.stale:
            print(
                f"stale baseline entry: {rule} at {path}"
                f"::{symbol or '<module>'} expected {expected}, "
                f"saw {actual}",
                file=stream,
            )
    if not n:
        summary += " — cost-soundness lint is clean"
    print(summary, file=stream)


def render_json(
    findings: List[Finding],
    stream: TextIO,
    result: Optional[BaselineResult] = None,
) -> None:
    payload = {
        "findings": [f.to_dict() for f in findings],
        "count": len(findings),
        "rules": dict(RULE_SUMMARIES),
    }
    if result is not None:
        payload["baselined"] = len(result.suppressed)
        payload["stale_baseline"] = [
            {
                "rule": rule,
                "path": path,
                "symbol": symbol,
                "expected": expected,
                "actual": actual,
            }
            for (rule, path, symbol), expected, actual in result.stale
        ]
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def run(
    roots: Sequence[str],
    format: str = "text",
    output: Optional[str] = None,
    baseline: Optional[str] = None,
    no_baseline: bool = False,
    write_baseline: bool = False,
    ratchet: bool = False,
) -> int:
    """CLI entry: lint ``roots``, print, return a process exit code.

    Exit 1 on any non-baselined finding; with ``ratchet`` also on stale
    baseline entries (the committed debt must only shrink).
    """
    if format not in ("text", "json", "sarif"):
        raise ValueError(f"unknown format {format!r}")
    findings = lint_paths(roots)
    baseline_path = (
        Path(baseline) if baseline is not None else default_baseline_path()
    )
    repo_root = find_repo_root(
        Path(roots[0]) if roots else baseline_path
    )
    if write_baseline:
        Baseline.from_findings(findings, repo_root).save(baseline_path)
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}",
            file=sys.stdout,
        )
        return 0
    loaded: Optional[Baseline] = None
    if not no_baseline and baseline_path.exists():
        loaded = Baseline.load(baseline_path)
    result = apply_baseline(findings, loaded, repo_root)

    def emit(stream: TextIO) -> None:
        if format == "json":
            render_json(result.new, stream, result)
        elif format == "sarif":
            stream.write(render_sarif(result.new, repo_root))
        else:
            render_text(result.new, stream, result)

    if output is not None:
        with open(output, "w", encoding="utf-8") as fh:
            emit(fh)
    else:
        emit(sys.stdout)
    failed = bool(result.new) or (ratchet and bool(result.stale))
    return 1 if failed else 0
