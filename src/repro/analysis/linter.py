"""Driver for the cost-soundness lint: file discovery, noqa, output.

Suppression syntax (per line, at the reported line)::

    risky_call()  # repro: noqa[RPR001] -- justification
    risky_call()  # repro: noqa          (suppresses every rule)

``lint_paths`` walks ``.py`` files under the given roots; ``lint_source``
lints one in-memory module (the test fixtures use it).  ``run`` is the
CLI entry behind ``python -m repro lint``.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, TextIO

from .findings import Finding
from .rules import ALL_RULES, TRACED_PACKAGES, ModuleContext, Rule

__all__ = ["lint_paths", "lint_source", "parse_noqa", "run"]

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


def parse_noqa(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line numbers to suppressed rule-id sets.

    ``None`` means a bare ``# repro: noqa`` (suppress everything on the
    line); otherwise the set holds uppercase rule ids.
    """
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            ids = {r.strip().upper() for r in rules.split(",") if r.strip()}
            prev = out.get(lineno)
            if prev is None and lineno in out:
                continue  # bare noqa already suppresses everything
            out[lineno] = ids | (prev or set())
    return out


def _suppressed(finding: Finding, noqa: Dict[int, Optional[Set[str]]]) -> bool:
    if finding.line not in noqa:
        return False
    rules = noqa[finding.line]
    return rules is None or finding.rule in rules


def _module_name(path: Path) -> str:
    """Dotted name relative to the ``repro`` package root (best effort)."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro") + 1:]
    return ".".join(parts)


def _is_traced(module: str) -> bool:
    head = module.split(".")[0] if module else ""
    return head in TRACED_PACKAGES


def lint_source(
    source: str,
    path: str = "<string>",
    traced: Optional[bool] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one module given as a string; honors noqa comments.

    ``traced`` overrides the package-based classification (fixture files
    outside ``src/repro`` use ``traced=True`` to exercise RPR001/RPR002).
    """
    module = _module_name(Path(path)) if path != "<string>" else ""
    if traced is None:
        traced = _is_traced(module)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="RPR999",
                name="syntax-error",
                path=path,
                line=exc.lineno or 1,
                message=f"could not parse module: {exc.msg}",
            )
        ]
    ctx = ModuleContext(
        path=path, source=source, tree=tree, module=module, traced=traced
    )
    noqa = parse_noqa(source)
    found: List[Finding] = []
    for rule in rules if rules is not None else ALL_RULES:
        for finding in rule.check(ctx):
            if not _suppressed(finding, noqa):
                found.append(finding)
    found.sort(key=lambda f: (f.path, f.line, f.rule))
    return found


def _iter_py_files(roots: Sequence[str]) -> Iterable[Path]:
    seen: Set[Path] = set()
    for root in roots:
        p = Path(root)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            r = f.resolve()
            if r not in seen:
                seen.add(r)
                yield f


def lint_paths(
    roots: Sequence[str], rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: List[Finding] = []
    for path in _iter_py_files(roots):
        source = path.read_text(encoding="utf-8")
        findings.extend(
            lint_source(source, path=str(path), rules=rules)
        )
    return findings


def render_text(findings: List[Finding], stream: TextIO) -> None:
    for finding in findings:
        print(finding.render(), file=stream)
    n = len(findings)
    print(
        f"{n} finding{'s' if n != 1 else ''}"
        + ("" if n else " — cost-soundness lint is clean"),
        file=stream,
    )


def render_json(findings: List[Finding], stream: TextIO) -> None:
    json.dump(
        {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
            "rules": {
                r.id: {"name": r.name, "description": r.description}
                for r in ALL_RULES
            },
        },
        stream,
        indent=2,
    )
    stream.write("\n")


def run(
    roots: Sequence[str],
    format: str = "text",
    output: Optional[str] = None,
) -> int:
    """CLI entry: lint ``roots``, print, return a process exit code."""
    if format not in ("text", "json"):
        raise ValueError(f"unknown format {format!r}")
    findings = lint_paths(roots)
    if output is not None:
        with open(output, "w", encoding="utf-8") as fh:
            (render_json if format == "json" else render_text)(findings, fh)
    else:
        stream = sys.stdout
        (render_json if format == "json" else render_text)(findings, stream)
    return 1 if findings else 0
