"""Task-purity analysis for remote-shippable entry points (RPR030-RPR032).

A ``@task_pure`` function (and everything reachable from it through the
call graph) is a candidate for execution on a remote worker: the "ship
pieces over a socket" roadmap item needs its behaviour to depend only on
its arguments.  This pass walks the transitive closure of every purity
root and flags the three ways the repo's code could smuggle in ambient
state:

RPR030  the function reads or writes a *mutable module global* (a
        module-level dict/list/set that some code in the module mutates)
RPR031  the function constructs an *unseeded* RNG (``np.random.*``
        module-level calls, ``default_rng()`` / ``Random()`` without a
        seed) — remote re-execution would not be reproducible
RPR032  the function touches the environment: filesystem, network,
        clock, process state (``open``, ``time.*``, ``os.environ``, ...)

Module-level constants assigned once and never mutated (lookup tables
like ``_KIND_CODES``) are *not* flagged: immutably-used data is fine to
pickle along.  ``ContextVar.set`` is likewise exempt — context variables
are task-scoped by design.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .callgraph import FunctionInfo, ProjectContext, dotted_name
from .findings import Finding
from .rules import ModuleContext

__all__ = ["TaskPurityPass", "mutable_globals"]

#: Dotted-call prefixes that reach outside the task (RPR032).
_EFFECT_PREFIXES: Tuple[str, ...] = (
    "time.",
    "socket.",
    "subprocess.",
    "urllib.",
    "requests.",
    "shutil.",
    "tempfile.",
)
_EFFECT_EXACT = frozenset(
    {
        "open",
        "input",
        "os.getenv",
        "os.putenv",
        "os.system",
        "os.popen",
        "os.remove",
        "os.unlink",
        "os.mkdir",
        "os.makedirs",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
)
#: Methods whose *receiver* makes them effects (``Path(...).read_text()``).
_EFFECT_METHODS = frozenset(
    {
        "read_text", "write_text", "read_bytes", "write_bytes",
        "urlopen", "perf_counter", "monotonic", "process_time",
    }
)

#: Mutating method names on dict/list/set globals (RPR030 evidence).
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "pop", "popitem",
        "remove", "discard", "clear", "setdefault", "sort", "reverse",
        "appendleft",
    }
)

_RNG_FACTORIES = frozenset({"default_rng", "RandomState", "Random"})
_NP_RANDOM_FNS = frozenset(
    {
        "rand", "randn", "randint", "random", "choice", "shuffle",
        "permutation", "uniform", "normal", "random_sample", "seed",
    }
)


def _module_mutable_globals(ctx: ModuleContext) -> Set[str]:
    """Module-level names bound to mutable literals/constructors."""
    out: Set[str] = set()
    for stmt in ctx.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                                     ast.ListComp, ast.SetComp))
        if isinstance(value, ast.Call):
            tail = (dotted_name(value.func) or "").split(".")[-1]
            mutable = tail in ("dict", "list", "set", "defaultdict",
                               "OrderedDict", "deque", "Counter")
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
    return out


def _module_mutations(ctx: ModuleContext, candidates: Set[str]) -> Set[str]:
    """Which candidate globals does *any* code in the module mutate?"""
    mutated: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                list(node.targets)
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript):
                    base = target.value
                    if isinstance(base, ast.Name) and base.id in candidates:
                        mutated.add(base.id)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in _MUTATORS \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in candidates:
                mutated.add(func.value.id)
        elif isinstance(node, ast.Global):
            mutated.update(set(node.names) & candidates)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id in candidates:
                    mutated.add(target.value.id)
    return mutated


def mutable_globals(ctx: ModuleContext) -> Set[str]:
    """Module-level mutable names that the module actually mutates."""
    candidates = _module_mutable_globals(ctx)
    if not candidates:
        return set()
    return _module_mutations(ctx, candidates)


def _local_names(func: ast.FunctionDef) -> Set[str]:
    """Names bound inside the function (params, assigns, loops, withs)."""
    names: Set[str] = set()
    args = func.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            if node is not func:
                names.add(node.name)
    return names


def _rng_violation(call: ast.Call) -> Optional[str]:
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    tail = parts[-1]
    if tail in _RNG_FACTORIES:
        if not call.args and not call.keywords:
            return f"{dotted}() constructs an unseeded RNG"
        return None
    if len(parts) >= 2 and parts[-2] == "random" \
            and tail in _NP_RANDOM_FNS:
        return (
            f"{dotted}() uses the global numpy RNG stream "
            f"(unseeded, process-wide state)"
        )
    if dotted.startswith("random.") and len(parts) == 2 \
            and tail not in ("Random", "SystemRandom"):
        return f"{dotted}() uses the global random module state"
    return None


def _effect_violation(call: ast.Call) -> Optional[str]:
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    if dotted in _EFFECT_EXACT:
        return f"{dotted}() touches the environment"
    for prefix in _EFFECT_PREFIXES:
        if dotted.startswith(prefix):
            return f"{dotted}() touches the environment"
    tail = dotted.split(".")[-1]
    if tail in _EFFECT_METHODS:
        return f"{dotted}() touches the environment"
    return None


class TaskPurityPass:
    """Project pass producing RPR030-RPR032 findings."""

    rules = ("RPR030", "RPR031", "RPR032")

    def check_project(self, project: ProjectContext) -> List[Finding]:
        roots = project.pure_roots()
        if not roots:
            return []
        findings: List[Finding] = []
        mutable_cache: Dict[str, Set[str]] = {}
        root_label = ", ".join(roots)
        for qual in project.reachable(roots):
            info = project.functions[qual]
            module = info.module
            if module not in mutable_cache:
                mutable_cache[module] = mutable_globals(info.ctx)
            findings.extend(
                self._check_function(
                    info, mutable_cache[module], root_label
                )
            )
        return findings

    def _check_function(
        self,
        info: FunctionInfo,
        mutated_globals: Set[str],
        root_label: str,
    ) -> List[Finding]:
        findings: List[Finding] = []
        local = _local_names(info.node)
        reported_globals: Set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load) \
                    and node.id in mutated_globals \
                    and node.id not in local \
                    and node.id not in reported_globals:
                reported_globals.add(node.id)
                findings.append(
                    Finding(
                        rule="RPR030",
                        name="mutable-global",
                        path=info.ctx.path,
                        line=node.lineno,
                        message=(
                            f"{info.qualname} (reachable from task-pure "
                            f"{root_label}) closes over mutable module "
                            f"global {node.id!r}"
                        ),
                    )
                )
            elif isinstance(node, ast.Global):
                for name in node.names:
                    if name not in reported_globals:
                        reported_globals.add(name)
                        findings.append(
                            Finding(
                                rule="RPR030",
                                name="mutable-global",
                                path=info.ctx.path,
                                line=node.lineno,
                                message=(
                                    f"{info.qualname} (reachable from "
                                    f"task-pure {root_label}) rebinds "
                                    f"module global {name!r}"
                                ),
                            )
                        )
            elif isinstance(node, ast.Call):
                rng = _rng_violation(node)
                if rng is not None:
                    findings.append(
                        Finding(
                            rule="RPR031",
                            name="unseeded-rng",
                            path=info.ctx.path,
                            line=node.lineno,
                            message=(
                                f"{info.qualname} (reachable from "
                                f"task-pure {root_label}): {rng}"
                            ),
                        )
                    )
                    continue
                effect = _effect_violation(node)
                if effect is not None:
                    findings.append(
                        Finding(
                            rule="RPR032",
                            name="environment-effect",
                            path=info.ctx.path,
                            line=node.lineno,
                            message=(
                                f"{info.qualname} (reachable from "
                                f"task-pure {root_label}): {effect}"
                            ),
                        )
                    )
        return findings
