"""Intraprocedural alias / may-write dataflow over ndarray targets.

The static-CREW pass needs to know, for every ``with region.branch()``
body, *which shared arrays the body may write*.  That question reduces to
three facts this module computes per function, in a single program-order
walk:

* **array classification** — which local names provably hold a numpy
  ndarray (``np.zeros(...)``, ``arr.copy()``, an ``np.ndarray``-annotated
  parameter) or a sanitizer :class:`~repro.pram.sanitize.ShadowArray`;
* **alias tracking** — which names are *views* of another array
  (``row = table[i]``, ``v = arr.reshape(...)``, plain ``b = a``), folded
  down to a canonical *root* name so a write through any view counts as a
  write to the root;
* **may-write sites** — every subscript store whose base resolves to a
  classified root, plus indirect writes through calls whose callee
  summary says it writes the corresponding parameter.

Everything is deliberately *may* analysis: reassignments kill facts in
straight-line order only, branches union.  Python ``list`` subscripts are
never classified, so list-typed DP scratch (``valid_codes[node] = ...``)
stays out of CREW findings by construction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .callgraph import FunctionInfo, ProjectContext, dotted_name

__all__ = [
    "AliasFrame",
    "WriteSite",
    "build_frame",
    "collect_writes",
    "param_write_summaries",
    "subscript_root",
]

#: numpy top-level constructors that return a fresh ndarray.
_NP_CREATORS = frozenset(
    {
        "zeros", "ones", "empty", "full", "arange", "array", "asarray",
        "ascontiguousarray", "zeros_like", "ones_like", "empty_like",
        "full_like", "copy", "concatenate", "stack", "where", "cumsum",
        "repeat", "tile", "argsort", "sort", "unique", "diff", "minimum",
        "maximum", "clip", "searchsorted", "flatnonzero", "frombuffer",
    }
)
#: ndarray methods that return a *view* of the receiver.
_VIEW_METHODS = frozenset({"reshape", "view", "ravel", "transpose", "T"})
#: ndarray methods that return a fresh buffer.
_FRESH_METHODS = frozenset({"copy", "astype", "take", "compress"})

_ARRAY_ANNOTATIONS = ("ndarray", "NDArray", "ShadowArray")


@dataclass(frozen=True)
class WriteSite:
    """One may-write to a classified array root."""

    root: str
    line: int
    #: Qualname of the callee for indirect writes (``None`` = direct store).
    via_call: Optional[str] = None


@dataclass
class AliasFrame:
    """Array classification + alias state for one function body."""

    #: name -> canonical root name (roots map to themselves).
    roots: Dict[str, str] = field(default_factory=dict)
    #: roots created by ``ShadowArray("label", ...)`` -> declared label.
    shadow_labels: Dict[str, str] = field(default_factory=dict)
    #: root -> line of the creating statement (0 for parameters).
    created_at: Dict[str, int] = field(default_factory=dict)

    def resolve(self, name: str) -> Optional[str]:
        """Canonical array root for ``name``, or ``None`` if unclassified."""
        seen: Set[str] = set()
        while name in self.roots and name not in seen:
            seen.add(name)
            nxt = self.roots[name]
            if nxt == name:
                return name
            name = nxt
        return name if name in self.roots else None

    def add_root(self, name: str, line: int) -> None:
        self.roots[name] = name
        self.created_at.setdefault(name, line)

    def add_alias(self, name: str, of: str) -> None:
        root = self.resolve(of)
        if root is not None and name != root:
            self.roots[name] = root

    def kill(self, name: str) -> None:
        self.roots.pop(name, None)
        self.shadow_labels.pop(name, None)


def subscript_root(node: ast.expr) -> Optional[str]:
    """Peel ``a[i][j]...`` / ``a.attr[...]`` chains down to the base Name."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_array_annotation(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    text = ast.dump(annotation)
    return any(marker in text for marker in _ARRAY_ANNOTATIONS)


def _classify_value(value: ast.expr, frame: AliasFrame) -> Tuple[str, Optional[str]]:
    """Classify an RHS: ``("fresh", None)``, ``("view", root)``,
    ``("shadow", label)``, or ``("other", None)``."""
    if isinstance(value, ast.Name):
        root = frame.resolve(value.id)
        return ("view", root) if root is not None else ("other", None)
    if isinstance(value, ast.Subscript):
        base = subscript_root(value)
        root = frame.resolve(base) if base is not None else None
        return ("view", root) if root is not None else ("other", None)
    if isinstance(value, ast.Attribute):
        # ``arr.T`` — a view through an attribute.
        base = value.value
        if isinstance(base, ast.Name) and value.attr in _VIEW_METHODS:
            root = frame.resolve(base.id)
            if root is not None:
                return ("view", root)
        return ("other", None)
    if isinstance(value, ast.Call):
        dotted = dotted_name(value.func)
        if dotted is None:
            return ("other", None)
        head, _, tail = dotted.rpartition(".")
        if tail == "ShadowArray" or dotted == "ShadowArray":
            label: Optional[str] = None
            if value.args and isinstance(value.args[0], ast.Constant) and \
                    isinstance(value.args[0].value, str):
                label = value.args[0].value
            return ("shadow", label)
        if head in ("np", "numpy") and tail in _NP_CREATORS:
            return ("fresh", None)
        if head:  # method call: receiver.method(...)
            recv = frame.resolve(head.split(".")[0])
            if recv is not None and tail in _VIEW_METHODS:
                return ("view", recv)
            if recv is not None and tail in _FRESH_METHODS:
                return ("fresh", None)
        return ("other", None)
    return ("other", None)


def _apply_assign(
    targets: Sequence[ast.expr], value: ast.expr, frame: AliasFrame
) -> None:
    kind, payload = _classify_value(value, frame)
    for target in targets:
        if not isinstance(target, ast.Name):
            continue
        name = target.id
        frame.kill(name)
        if kind == "fresh":
            frame.add_root(name, value.lineno)
        elif kind == "view" and payload is not None:
            frame.add_alias(name, payload)
        elif kind == "shadow":
            frame.add_root(name, value.lineno)
            if payload is not None:
                frame.shadow_labels[name] = payload


def build_frame(
    func: ast.FunctionDef, *, until_line: Optional[int] = None
) -> AliasFrame:
    """Array/alias state of ``func``, walked in program order.

    ``until_line`` stops the walk before that line, yielding the state
    visible at a nested region (the walk still descends into compound
    statements whose body precedes the cutoff).
    """
    frame = AliasFrame()
    args = func.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        if _is_array_annotation(arg.annotation):
            frame.add_root(arg.arg, 0)

    def walk(body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            if until_line is not None and stmt.lineno > until_line:
                return
            if isinstance(stmt, ast.Assign):
                _apply_assign(stmt.targets, stmt.value, frame)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name) and _is_array_annotation(
                    stmt.annotation
                ):
                    frame.kill(stmt.target.id)
                    frame.add_root(stmt.target.id, stmt.lineno)
                else:
                    _apply_assign([stmt.target], stmt.value, frame)
            elif isinstance(stmt, ast.For):
                if isinstance(stmt.target, ast.Name):
                    frame.kill(stmt.target.id)
                walk(stmt.body)
                walk(stmt.orelse)
            elif isinstance(stmt, (ast.If, ast.While)):
                walk(stmt.body)
                walk(stmt.orelse)
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    if isinstance(item.optional_vars, ast.Name):
                        frame.kill(item.optional_vars.id)
                walk(stmt.body)
            elif isinstance(stmt, ast.Try):
                walk(stmt.body)
                for handler in stmt.handlers:
                    walk(handler.body)
                walk(stmt.orelse)
                walk(stmt.finalbody)

    walk(func.body)
    return frame


def _param_names(func: ast.FunctionDef) -> List[str]:
    args = func.args
    return [
        a.arg
        for a in list(args.posonlyargs) + list(args.args)
        + list(args.kwonlyargs)
    ]


def _direct_param_writes(func: ast.FunctionDef) -> Set[str]:
    """Parameters written through a subscript anywhere in ``func``."""
    params = set(_param_names(func))
    written: Set[str] = set()
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                targets.extend(target.elts)
                continue
            if isinstance(target, ast.Subscript):
                base = subscript_root(target)
                if base in params:
                    written.add(base)
    return written


def param_write_summaries(project: ProjectContext) -> Dict[str, Set[str]]:
    """``qualname -> parameter names the function may write through``.

    Seeded with direct subscript stores, then propagated to a fixpoint
    through resolved calls (an argument passed into a written parameter
    position is itself written).
    """
    summaries: Dict[str, Set[str]] = {
        qual: _direct_param_writes(info.node)
        for qual, info in project.functions.items()
    }
    changed = True
    rounds = 0
    while changed and rounds < 10:
        changed = False
        rounds += 1
        for qual in sorted(project.functions):
            info = project.functions[qual]
            params = set(_param_names(info.node))
            mine = summaries[qual]
            for site in project.calls(info):
                if site.callee is None:
                    continue
                callee_written = summaries.get(site.callee, set())
                if not callee_written:
                    continue
                for name in _written_arguments(
                    site.node, project.functions[site.callee].node,
                    callee_written,
                ):
                    if name in params and name not in mine:
                        mine.add(name)
                        changed = True
    return summaries


def _written_arguments(
    call: ast.Call, callee: ast.FunctionDef, written_params: Set[str]
) -> List[str]:
    """Caller-side Name arguments that land in written callee parameters."""
    params = _param_names(callee)
    # Drop ``self`` when the call syntax does not pass it explicitly.
    if params and params[0] == "self":
        params = params[1:]
    out: List[str] = []
    for idx, arg in enumerate(call.args):
        if isinstance(arg, ast.Name) and idx < len(params) \
                and params[idx] in written_params:
            out.append(arg.id)
    for kw in call.keywords:
        if kw.arg in written_params and isinstance(kw.value, ast.Name):
            out.append(kw.value.id)
    return out


def collect_writes(
    nodes: Iterable[ast.stmt],
    frame: AliasFrame,
    *,
    project: Optional[ProjectContext] = None,
    info: Optional[FunctionInfo] = None,
    summaries: Optional[Dict[str, Set[str]]] = None,
) -> List[WriteSite]:
    """Every may-write to a classified root within ``nodes``.

    Direct subscript stores always count; when ``project``/``info``/
    ``summaries`` are given, calls passing a classified array into a
    written parameter position count too (``via_call`` set to the callee).
    """
    sites: List[WriteSite] = []
    seen: Set[Tuple[str, int, Optional[str]]] = set()

    def record(root: str, line: int, via: Optional[str]) -> None:
        key = (root, line, via)
        if key not in seen:
            seen.add(key)
            sites.append(WriteSite(root=root, line=line, via_call=via))

    for stmt in nodes:
        for node in ast.walk(stmt):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Call) and project is not None \
                    and info is not None and summaries is not None:
                callee = project.resolve_call(info, node)
                if callee is not None and callee in project.functions:
                    written = summaries.get(callee, set())
                    if written:
                        for name in _written_arguments(
                            node, project.functions[callee].node, written
                        ):
                            root = frame.resolve(name)
                            if root is not None:
                                record(root, node.lineno, callee)
            for target in targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    targets.extend(target.elts)
                    continue
                if isinstance(target, ast.Subscript):
                    base = subscript_root(target)
                    root = frame.resolve(base) if base is not None else None
                    if root is not None:
                        record(root, target.lineno, None)
    return sites
