"""Interprocedural cost-contract checking (RPR010-RPR014).

Every ``@cost_contract(work=..., depth=...)`` declaration is verified by
*composing* cost through the function body's seq/par structure:

* sequential statements add work and add depth (asymptotic union);
* ``for`` loops over graph-sized iterables multiply both by ``n`` —
  unless the loop fans out ``region.branch`` arms inside a
  ``tracer.parallel`` region, in which case only work multiplies and
  depth takes the max over arms (Brent composition);
* explicit :class:`~repro.pram.cost.Cost` constructions
  (``Cost.scan(n)``, ``Cost.step(3 * n)``, ``Cost(w, d)``) contribute
  their own work/depth, whether charged directly or routed through a
  helper;
* calls resolved to *contracted* callees contribute the callee's
  declared bound.

The inference is one-sided: anything the analyzer cannot size rounds
down to ``O(1)``, so the inferred bound is a **lower bound** on the real
cost and ``inferred > declared`` is a proof of violation, never a guess.

Rules
-----
RPR010  body provably exceeds the declared *work* bound
RPR011  body provably exceeds the declared *depth* bound
RPR012  malformed ``@cost_contract`` (syntax or unparseable bound)
RPR013  contracted function forwards its tracer to an uncontracted
        traced-package callee (a hole in the composition argument)
RPR014  registry function (driver / primitive) lacks a contract
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .bounds import (
    CONST,
    LOG,
    N,
    Bound,
    BoundParseError,
    Term,
    parse_bound,
)
from .callgraph import FunctionInfo, ProjectContext, dotted_name
from .findings import Finding
from .rules import _graph_sized

__all__ = [
    "DEFAULT_REQUIRED_CONTRACTS",
    "CostContractPass",
    "infer_cost",
]

#: Functions that must carry a verified ``@cost_contract`` (RPR014):
#: the six paper drivers plus the pram substrate they compose.
DEFAULT_REQUIRED_CONTRACTS: Tuple[str, ...] = (
    "isomorphism.planar_si.decide_subgraph_isomorphism",
    "isomorphism.planar_si.find_occurrence",
    "isomorphism.listing.list_occurrences",
    "isomorphism.counting.count_occurrences_exact",
    "isomorphism.disconnected.decide_disconnected",
    "separating.driver.decide_separating_isomorphism",
    "connectivity.planar_vc.planar_vertex_connectivity",
    "pram.primitives.prefix_sum",
    "pram.primitives.exclusive_prefix_sum",
    "pram.primitives.parallel_reduce",
    "pram.primitives.pack",
    "pram.primitives.pack_indices",
    "pram.primitives.pointer_jump_roots",
    "pram.list_ranking.list_rank",
    "pram.list_ranking.list_rank_optimal",
    "pram.tree_contraction.evaluate_expression_tree",
    "cluster.est.est_clustering",
)

_SIZE_NAMES = frozenset(
    {"n", "m", "num_nodes", "n_nodes", "num_vertices", "num_edges"}
)
_SIZE_ATTRS = frozenset(
    {"n", "m", "num_nodes", "n_nodes", "num_vertices", "num_edges"}
)
_LOG_CALLS = frozenset({"log2_ceil", "log2", "log", "log1p", "ceil_log2"})


def _size_term(expr: ast.expr) -> Bound:
    """Lower-bound a scalar cost expression as a :class:`Bound`.

    Unknown quantities (``len(events)``, function results, ``min`` arms)
    round down to ``O(1)`` so the result stays a provable lower bound.
    """
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, (int, float)) and expr.value == 0:
            return Bound.zero()
        return Bound.of(CONST)
    if isinstance(expr, ast.Name):
        if expr.id in _SIZE_NAMES:
            return Bound.of(Term(n_exp=1.0, provenance=expr.lineno))
        return Bound.of(CONST)
    if isinstance(expr, ast.Attribute):
        if expr.attr in _SIZE_ATTRS:
            return Bound.of(Term(n_exp=1.0, provenance=expr.lineno))
        return Bound.of(CONST)
    if isinstance(expr, ast.BinOp):
        left = _size_term(expr.left)
        right = _size_term(expr.right)
        if isinstance(expr.op, ast.Add):
            return left.plus(right)
        if isinstance(expr.op, (ast.Mult,)):
            out = Bound.zero()
            for lt in left.terms or (CONST,):
                for rt in right.terms or (CONST,):
                    out = out.plus(Bound.of(lt.times(rt, expr.lineno)))
            return out
        if isinstance(expr.op, (ast.Sub, ast.FloorDiv, ast.Div, ast.Mod)):
            return Bound.of(CONST)  # could be arbitrarily small
        return Bound.of(CONST)
    if isinstance(expr, ast.Call):
        dotted = dotted_name(expr.func) or ""
        tail = dotted.split(".")[-1]
        if tail == "max":
            out = Bound.zero()
            for arg in expr.args:
                out = out.plus(_size_term(arg))
            return out
        if tail in ("min",):
            return Bound.of(CONST)
        if tail in ("int", "float", "abs", "round"):
            return _size_term(expr.args[0]) if expr.args else Bound.of(CONST)
        if tail in _LOG_CALLS:
            inner = (
                _size_term(expr.args[0]) if expr.args else Bound.zero()
            )
            if any(t.n_exp > 0 for t in inner.terms):
                return Bound.of(
                    Term(log_exp=1.0, provenance=expr.lineno)
                )
            return Bound.of(CONST)
        if tail == "len":
            return Bound.of(CONST)
        return Bound.of(CONST)
    if isinstance(expr, (ast.IfExp,)):
        return Bound.of(CONST)  # either arm might be the small one
    return Bound.of(CONST)


def _cost_call_bounds(node: ast.Call) -> Optional[Tuple[Bound, Bound]]:
    """(work, depth) of an explicit ``Cost`` construction, else ``None``."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    if parts[-1] == "Cost" or dotted == "Cost":
        args = list(node.args)
        kwargs = {kw.arg: kw.value for kw in node.keywords}
        work_expr = args[0] if args else kwargs.get("work")
        depth_expr = args[1] if len(args) > 1 else kwargs.get("depth")
        work = _size_term(work_expr) if work_expr is not None else Bound.zero()
        depth = (
            _size_term(depth_expr) if depth_expr is not None else Bound.zero()
        )
        return work, depth
    if len(parts) >= 2 and parts[-2] == "Cost":
        factory = parts[-1]
        arg = _size_term(node.args[0]) if node.args else Bound.of(CONST)
        line = node.lineno
        if factory == "zero":
            return Bound.zero(), Bound.zero()
        if factory == "step":
            return arg, Bound.of(Term(provenance=line))
        if factory in ("scan", "reduction"):
            return arg, Bound.of(Term(log_exp=1.0, provenance=line))
        if factory == "sequential_loop":
            return arg, arg
        if factory == "repeated":
            return arg, arg
    return None


class _BodyCost:
    """Recursive seq/par cost composition over one function body."""

    def __init__(
        self,
        project: ProjectContext,
        info: FunctionInfo,
        contracts: Dict[str, Tuple[Bound, Bound]],
    ) -> None:
        self.project = project
        self.info = info
        self.contracts = contracts

    def infer(
        self, body: Sequence[ast.stmt], par: bool
    ) -> Tuple[Bound, Bound]:
        work = Bound.zero()
        depth = Bound.zero()
        for stmt in body:
            w, d = self.stmt(stmt, par)
            work = work.plus(w)
            depth = depth.plus(d)
        return work, depth

    def stmt(self, stmt: ast.stmt, par: bool) -> Tuple[Bound, Bound]:
        if isinstance(stmt, ast.For):
            inner_w, inner_d = self.infer(stmt.body, par)
            ow, od = self.infer(stmt.orelse, par)
            factor = (
                Term(n_exp=1.0, provenance=stmt.lineno)
                if _graph_sized(stmt.iter)
                else CONST
            )
            w = inner_w.times(factor, stmt.lineno).plus(ow)
            if par:
                # Parallel fan-out: the loop only *spawns* arms, so depth
                # is the max over arms, not the sum.
                d = inner_d.plus(od)
            else:
                d = inner_d.times(factor, stmt.lineno).plus(od)
            ew, ed = self.exprs_of(stmt.iter)
            return w.plus(ew), d.plus(ed)
        if isinstance(stmt, ast.While):
            # Iteration count unprovable: charge one iteration (lower bound).
            w, d = self.infer(stmt.body, par)
            ow, od = self.infer(stmt.orelse, par)
            return w.plus(ow), d.plus(od)
        if isinstance(stmt, ast.If):
            # Either side may run; lower bound = the cheaper side, but for
            # usefulness we keep the union (sound for one-sided O-compare
            # only when both sides are reachable; guarded serial fallbacks
            # are the common repo idiom and share the driver's bound).
            w1, d1 = self.infer(stmt.body, par)
            w2, d2 = self.infer(stmt.orelse, par)
            tw, td = self.exprs_of(stmt.test)
            return w1.plus(w2).plus(tw), d1.plus(d2).plus(td)
        if isinstance(stmt, ast.With):
            mode = par
            for item in stmt.items:
                dotted = dotted_name(
                    item.context_expr.func
                ) if isinstance(item.context_expr, ast.Call) else None
                if dotted is not None:
                    tail = dotted.split(".")[-1]
                    if tail == "parallel":
                        mode = True
                    elif tail in ("branch", "span"):
                        mode = False
            ew = Bound.zero()
            ed = Bound.zero()
            for item in stmt.items:
                w, d = self.exprs_of(item.context_expr)
                ew = ew.plus(w)
                ed = ed.plus(d)
            bw, bd = self.infer(stmt.body, mode)
            return bw.plus(ew), bd.plus(ed)
        if isinstance(stmt, ast.Try):
            work = Bound.zero()
            depth = Bound.zero()
            for group in (
                [stmt.body]
                + [h.body for h in stmt.handlers]
                + [stmt.orelse, stmt.finalbody]
            ):
                w, d = self.infer(group, par)
                work = work.plus(w)
                depth = depth.plus(d)
            return work, depth
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return Bound.zero(), Bound.zero()  # nested defs cost at call
        # Expression statements, assignments, returns...
        return self.exprs_of(stmt)

    def exprs_of(self, node: ast.AST) -> Tuple[Bound, Bound]:
        """Cost carried by the expressions of a non-compound statement."""
        work = Bound.zero()
        depth = Bound.zero()
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            cost = _cost_call_bounds(sub)
            if cost is not None:
                work = work.plus(cost[0])
                depth = depth.plus(cost[1])
                continue
            callee = self.project.resolve_call(self.info, sub)
            if callee is None or callee == self.info.qualname:
                continue
            declared = self.contracts.get(callee)
            if declared is not None:
                cw = Bound(
                    tuple(
                        Term(t.n_exp, t.log_exp, t.atoms, sub.lineno)
                        for t in declared[0].terms
                    )
                )
                cd = Bound(
                    tuple(
                        Term(t.n_exp, t.log_exp, t.atoms, sub.lineno)
                        for t in declared[1].terms
                    )
                )
                work = work.plus(cw)
                depth = depth.plus(cd)
        return work, depth


def infer_cost(
    project: ProjectContext,
    info: FunctionInfo,
    contracts: Dict[str, Tuple[Bound, Bound]],
) -> Tuple[Bound, Bound]:
    """Provable lower bound on (work, depth) incurred by ``info``'s body."""
    return _BodyCost(project, info, contracts).infer(info.node.body, False)


_TRACER_NAMES = frozenset({"tracer", "tracker", "branch", "region"})


def _forwards_tracer(call: ast.Call) -> bool:
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id in _TRACER_NAMES:
            return True
    for kw in call.keywords:
        if kw.arg in ("tracer", "tracker"):
            return True
        if isinstance(kw.value, ast.Name) and kw.value.id in _TRACER_NAMES:
            return True
    return False


class CostContractPass:
    """Project pass producing RPR010-RPR014 findings."""

    rules = ("RPR010", "RPR011", "RPR012", "RPR013", "RPR014")

    def __init__(
        self, required: Sequence[str] = DEFAULT_REQUIRED_CONTRACTS
    ) -> None:
        self.required = tuple(required)

    def check_project(self, project: ProjectContext) -> List[Finding]:
        findings: List[Finding] = []
        parsed: Dict[str, Tuple[Bound, Bound]] = {}

        # Pass 1: parse every declared contract (RPR012 on failure).
        for info in project.contracted():
            if info.contract_error is not None:
                line, message = info.contract_error
                findings.append(
                    Finding(
                        rule="RPR012",
                        name="malformed-contract",
                        path=info.ctx.path,
                        line=line,
                        message=f"{info.qualname}: {message}",
                    )
                )
                continue
            assert info.contract is not None
            try:
                parsed[info.qualname] = (
                    parse_bound(info.contract["work"]),
                    parse_bound(info.contract["depth"]),
                )
            except BoundParseError as exc:
                findings.append(
                    Finding(
                        rule="RPR012",
                        name="malformed-contract",
                        path=info.ctx.path,
                        line=info.contract_line,
                        message=f"{info.qualname}: {exc}",
                    )
                )

        # Pass 2: verify each parsed contract against its body (RPR010/011)
        # and audit tracer forwarding (RPR013).
        for qual in sorted(parsed):
            info = project.functions[qual]
            declared_work, declared_depth = parsed[qual]
            inferred_work, inferred_depth = infer_cost(project, info, parsed)
            excess = inferred_work.excess(declared_work)
            if excess is not None:
                findings.append(
                    Finding(
                        rule="RPR010",
                        name="work-bound-violation",
                        path=info.ctx.path,
                        line=excess.provenance or info.node.lineno,
                        message=(
                            f"{qual} declares work "
                            f"{declared_work.render()} but its body "
                            f"provably incurs O({excess.render()}) work"
                        ),
                    )
                )
            excess = inferred_depth.excess(declared_depth)
            if excess is not None:
                findings.append(
                    Finding(
                        rule="RPR011",
                        name="depth-bound-violation",
                        path=info.ctx.path,
                        line=excess.provenance or info.node.lineno,
                        message=(
                            f"{qual} declares depth "
                            f"{declared_depth.render()} but its body "
                            f"provably incurs O({excess.render()}) depth"
                        ),
                    )
                )
            for site in project.calls(info):
                if site.callee is None or not _forwards_tracer(site.node):
                    continue
                callee = project.functions[site.callee]
                if not callee.ctx.traced:
                    continue
                if callee.contract is not None \
                        or callee.contract_error is not None:
                    continue
                findings.append(
                    Finding(
                        rule="RPR013",
                        name="uncontracted-callee",
                        path=info.ctx.path,
                        line=site.node.lineno,
                        message=(
                            f"{qual} forwards its tracer to "
                            f"{site.callee}, which has no @cost_contract; "
                            f"the composition argument for "
                            f"{qual}'s bound has a hole"
                        ),
                    )
                )

        # Pass 3: registry coverage (RPR014).
        for qual in self.required:
            info = project.functions.get(qual)
            if info is None:
                continue  # partial lint runs only see some modules
            if info.contract is None and info.contract_error is None:
                findings.append(
                    Finding(
                        rule="RPR014",
                        name="missing-contract",
                        path=info.ctx.path,
                        line=info.node.lineno,
                        message=(
                            f"{qual} is a registry function (driver or "
                            f"pram primitive) and must declare a "
                            f"@cost_contract"
                        ),
                    )
                )
        return findings
