"""Static CREW discipline for ``tracer.parallel`` regions (RPR020-RPR022).

The dynamic sanitizer (:mod:`repro.pram.sanitize`) catches concurrent-
write violations *on the executions we happen to run*.  This pass is its
static complement: for every ``with <tracer>.parallel(...) as region:``
block it infers, per branch arm, the set of shared ndarray roots the arm
may write (via :mod:`repro.analysis.dataflow` alias tracking, including
writes routed through helper calls), and checks the inferred set against
the ``record_writes`` declarations the sanitizer would enforce.

Rules
-----
RPR020  a branch arm writes a shared array with no covering
        ``record_writes`` declaration (the sanitizer would be blind)
RPR021  arm writes that provably overlap across arms: a constant or
        full-slice index repeated across spawned arms of one region
RPR022  a branch arm passes a shared array into a callee that writes
        the corresponding parameter, again without a declaration
        (escaped write)

Arrays *created inside* a branch arm are private to that arm and exempt.
Python lists are never classified as arrays, so list-typed DP scratch
does not fire.  :func:`region_reports` exposes the same analysis as data
for the static/dynamic cross-validation test.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .callgraph import FunctionInfo, ProjectContext, dotted_name
from .dataflow import (
    AliasFrame,
    build_frame,
    collect_writes,
    param_write_summaries,
    subscript_root,
)
from .findings import Finding

__all__ = [
    "ArmWrite",
    "BranchArm",
    "RegionReport",
    "StaticCrewPass",
    "region_reports",
]


@dataclass(frozen=True)
class ArmWrite:
    """One may-write of a branch arm to a shared root."""

    root: str
    line: int
    #: ``ast.dump`` of the subscript index; None for indirect writes.
    index: Optional[str]
    #: True when the index is a compile-time constant or a full slice.
    constant_index: bool
    via_call: Optional[str] = None


@dataclass
class BranchArm:
    """One ``with region.branch(...)`` block inside a parallel region."""

    node: ast.With
    #: True when the arm is spawned from an enclosing loop (it repeats).
    spawned_in_loop: bool
    writes: List[ArmWrite] = field(default_factory=list)
    declared: Set[str] = field(default_factory=set)


@dataclass
class RegionReport:
    """Everything the pass learned about one parallel region."""

    function: str
    node: ast.With
    region_name: Optional[str]
    arms: List[BranchArm] = field(default_factory=list)
    #: All roots declared via record_writes anywhere in the region
    #: (covers the region-level ``arm=`` dispatch idiom too).
    declared_roots: Set[str] = field(default_factory=set)
    #: root -> ShadowArray label, for roots with a literal label.
    shadow_labels: Dict[str, str] = field(default_factory=dict)


def _region_var(stmt: ast.With) -> Tuple[Optional[str], Optional[str]]:
    """(bound name, region label) when ``stmt`` opens a parallel region."""
    for item in stmt.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            dotted = dotted_name(expr.func)
            if dotted is not None and dotted.split(".")[-1] == "parallel":
                name = (
                    item.optional_vars.id
                    if isinstance(item.optional_vars, ast.Name)
                    else None
                )
                label = None
                if expr.args and isinstance(expr.args[0], ast.Constant) \
                        and isinstance(expr.args[0].value, str):
                    label = expr.args[0].value
                return name, label
    return None, None


def _is_branch_with(stmt: ast.With) -> bool:
    for item in stmt.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            dotted = dotted_name(expr.func)
            if dotted is not None and dotted.split(".")[-1] == "branch":
                return True
    return False


def _record_writes_targets(
    nodes: Sequence[ast.stmt], frame: AliasFrame
) -> Set[str]:
    """Roots declared by ``*.record_writes(target, ...)`` calls in nodes."""
    declared: Set[str] = set()
    for stmt in nodes:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None or not dotted.endswith("record_writes"):
                continue
            if node.args and isinstance(node.args[0], ast.Name):
                root = frame.resolve(node.args[0].id)
                if root is not None:
                    declared.add(root)
    return declared


def _index_signature(target: ast.Subscript) -> Tuple[Optional[str], bool]:
    """(dump of the index, is it constant-or-full-slice?)."""
    index = target.slice
    dump = ast.dump(index)
    if isinstance(index, ast.Constant):
        return dump, True
    if isinstance(index, ast.Slice) and index.lower is None \
            and index.upper is None and index.step is None:
        return dump, True
    return dump, False


def _direct_arm_writes(
    arm_body: Sequence[ast.stmt], frame: AliasFrame
) -> List[Tuple[str, int, Optional[str], bool]]:
    out: List[Tuple[str, int, Optional[str], bool]] = []
    for stmt in arm_body:
        for node in ast.walk(stmt):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    targets.extend(target.elts)
                    continue
                if isinstance(target, ast.Subscript):
                    base = subscript_root(target)
                    root = frame.resolve(base) if base else None
                    if root is not None:
                        dump, const = _index_signature(target)
                        out.append((root, target.lineno, dump, const))
    return out


def _private_roots(
    frame: AliasFrame, start: int, end: int
) -> Set[str]:
    """Roots created inside the [start, end] line span (arm-private)."""
    return {
        root
        for root, line in frame.created_at.items()
        if start <= line <= end
    }


def region_reports(
    project: ProjectContext,
    info: FunctionInfo,
    summaries: Optional[Dict[str, Set[str]]] = None,
) -> List[RegionReport]:
    """Analyze every parallel region in ``info``."""
    frame = build_frame(info.node)
    reports: List[RegionReport] = []
    if summaries is None:
        summaries = {}

    def visit(
        body: Sequence[ast.stmt],
        region: Optional[RegionReport],
        in_loop: bool,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.With):
                name, label = _region_var(stmt)
                if name is not None or label is not None:
                    report = RegionReport(
                        function=info.qualname,
                        node=stmt,
                        region_name=label,
                    )
                    report.declared_roots = _record_writes_targets(
                        stmt.body, frame
                    )
                    for root in report.declared_roots:
                        if root in frame.shadow_labels:
                            report.shadow_labels[root] = (
                                frame.shadow_labels[root]
                            )
                    reports.append(report)
                    visit(stmt.body, report, False)
                    continue
                if region is not None and _is_branch_with(stmt):
                    arm = BranchArm(node=stmt, spawned_in_loop=in_loop)
                    end = stmt.end_lineno or stmt.lineno
                    private = _private_roots(frame, stmt.lineno, end)
                    for root, line, dump, const in _direct_arm_writes(
                        stmt.body, frame
                    ):
                        if root in private:
                            continue
                        arm.writes.append(
                            ArmWrite(root, line, dump, const)
                        )
                    for site in collect_writes(
                        stmt.body, frame,
                        project=project, info=info, summaries=summaries,
                    ):
                        if site.via_call is None or site.root in private:
                            continue
                        arm.writes.append(
                            ArmWrite(
                                site.root, site.line, None, False,
                                via_call=site.via_call,
                            )
                        )
                    arm.declared = _record_writes_targets(
                        stmt.body, frame
                    )
                    if region is not None:
                        region.arms.append(arm)
                    # Nested regions inside an arm analyze independently.
                    visit(stmt.body, None, False)
                    continue
                visit(stmt.body, region, in_loop)
            elif isinstance(stmt, ast.For):
                visit(stmt.body, region, True)
                visit(stmt.orelse, region, in_loop)
            elif isinstance(stmt, ast.While):
                visit(stmt.body, region, True)
                visit(stmt.orelse, region, in_loop)
            elif isinstance(stmt, ast.If):
                visit(stmt.body, region, in_loop)
                visit(stmt.orelse, region, in_loop)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body, region, in_loop)
                for handler in stmt.handlers:
                    visit(handler.body, region, in_loop)
                visit(stmt.orelse, region, in_loop)
                visit(stmt.finalbody, region, in_loop)

    visit(info.node.body, None, False)
    return reports


class StaticCrewPass:
    """Project pass producing RPR020-RPR022 findings."""

    rules = ("RPR020", "RPR021", "RPR022")

    def check_project(self, project: ProjectContext) -> List[Finding]:
        findings: List[Finding] = []
        summaries = param_write_summaries(project)
        for qual in sorted(project.functions):
            info = project.functions[qual]
            for report in region_reports(project, info, summaries):
                findings.extend(self._check_region(info, report))
        return findings

    def _check_region(
        self, info: FunctionInfo, report: RegionReport
    ) -> List[Finding]:
        findings: List[Finding] = []
        covered = report.declared_roots
        # (root, index dump) -> first arm node seen, for overlap detection.
        seen_const: Dict[Tuple[str, str], ast.With] = {}
        for arm in report.arms:
            for write in arm.writes:
                if write.root not in covered \
                        and write.root not in arm.declared:
                    if write.via_call is not None:
                        findings.append(
                            Finding(
                                rule="RPR022",
                                name="escaped-branch-write",
                                path=info.ctx.path,
                                line=write.line,
                                message=(
                                    f"{info.qualname}: branch arm passes "
                                    f"shared array {write.root!r} to "
                                    f"{write.via_call}, which writes it, "
                                    f"with no record_writes declaration"
                                ),
                            )
                        )
                    else:
                        findings.append(
                            Finding(
                                rule="RPR020",
                                name="undeclared-branch-write",
                                path=info.ctx.path,
                                line=write.line,
                                message=(
                                    f"{info.qualname}: branch arm writes "
                                    f"shared array {write.root!r} with no "
                                    f"record_writes declaration (the "
                                    f"dynamic sanitizer cannot see it)"
                                ),
                            )
                        )
                if write.constant_index and write.index is not None:
                    key = (write.root, write.index)
                    prior = seen_const.get(key)
                    overlap = (
                        arm.spawned_in_loop
                        or (prior is not None and prior is not arm.node)
                    )
                    if overlap:
                        findings.append(
                            Finding(
                                rule="RPR021",
                                name="overlapping-arm-writes",
                                path=info.ctx.path,
                                line=write.line,
                                message=(
                                    f"{info.qualname}: arms of parallel "
                                    f"region "
                                    f"{report.region_name or '<anon>'} "
                                    f"write {write.root!r} at the same "
                                    f"loop-invariant index — concurrent "
                                    f"arms would collide (CREW violation)"
                                ),
                            )
                        )
                    seen_const.setdefault(key, arm.node)
        return findings
