"""Zero-cost annotation decorators consumed by the static analyzer.

``@cost_contract`` declares the asymptotic work/depth bound a function
promises (the paper's per-lemma contracts); ``@task_pure`` marks an entry
point whose transitive callees must be pure enough to ship to a remote
worker (no mutable module globals, no unseeded RNG, no environment
effects).  Both decorators return the function **unchanged** apart from
two introspection attributes — they never wrap, so call overhead is zero,
pickling-by-reference still works, and the attributes double as runtime
documentation::

    >>> from repro.analysis.contracts import cost_contract
    >>> @cost_contract(work="O(n)", depth="O(log n)")
    ... def scan(values): ...
    >>> scan.__cost_contract__
    {'work': 'O(n)', 'depth': 'O(log n)'}

The static checkers (``repro.analysis.cost_check``,
``repro.analysis.purity``) read the *decorator syntax* from the AST — they
never import the annotated modules — so the contracts are verified even
for modules whose imports would fail in the analysis environment.
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

__all__ = ["cost_contract", "task_pure"]

F = TypeVar("F", bound=Callable[..., Any])

#: Attribute set by :func:`cost_contract` (read by tests and tooling).
CONTRACT_ATTR = "__cost_contract__"
#: Attribute set by :func:`task_pure`.
PURE_ATTR = "__task_pure__"


def cost_contract(*, work: str, depth: str) -> Callable[[F], F]:
    """Declare the work/depth bound this function is accountable to.

    ``work`` and ``depth`` are bound strings parsed by
    :func:`repro.analysis.bounds.parse_bound` (``"O(n log n)"``,
    ``"O(log^2 n)"``, opaque symbols like ``k`` allowed).  The analyzer's
    RPR010/RPR011 rules verify the body against the declaration by
    composing callee contracts through the seq/par structure; RPR012
    rejects malformed declarations.
    """

    def mark(func: F) -> F:
        setattr(func, CONTRACT_ATTR, {"work": work, "depth": depth})
        return func

    return mark


def task_pure(func: F) -> F:
    """Mark a purity root: everything reachable from here must be pure.

    The analyzer's RPR030-RPR032 rules walk the call graph from every
    ``@task_pure`` function and flag closures over mutable module globals,
    unseeded RNG construction, and filesystem/network/clock effects —
    the gate for shipping :class:`~repro.exec.task.PieceTask` bodies to
    remote workers.
    """
    setattr(func, PURE_ATTR, True)
    return func
