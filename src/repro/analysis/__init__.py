"""Cost-soundness analysis: a static companion to the PRAM substrate.

The cost model (``repro.pram``) is only as trustworthy as the discipline
of the code charging into it: a NumPy call outside any ``charge``/``step``
is *free* work, a Python loop over a graph-sized iterable inside a
"polylog depth" routine silently voids the depth bound, and an unseeded
RNG voids reproducibility.  This package provides a small, pluggable AST
lint (``python -m repro lint``) that flags those hazards; its dynamic
counterpart — the CREW write-race sanitizer — lives in
``repro.pram.sanitize``.

See DESIGN.md, "Cost-soundness analysis" for the rule catalog.
"""

from .findings import Finding
from .linter import lint_paths, lint_source, run
from .rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Finding",
    "Rule",
    "lint_paths",
    "lint_source",
    "run",
]
