"""Cost-soundness analysis: a static companion to the PRAM substrate.

The cost model (``repro.pram``) is only as trustworthy as the discipline
of the code charging into it: a NumPy call outside any ``charge``/``step``
is *free* work, a Python loop over a graph-sized iterable inside a
"polylog depth" routine silently voids the depth bound, and an unseeded
RNG voids reproducibility.  This package provides a static verifier
(``python -m repro lint``) with two layers:

* per-module AST rules (RPR001-RPR004) — syntactic hazards;
* interprocedural project passes sharing one call-graph substrate
  (:mod:`repro.analysis.callgraph`, :mod:`repro.analysis.dataflow`):
  cost-contract checking (RPR010-RPR014, declared via
  :func:`cost_contract`), static CREW write-set inference
  (RPR020-RPR022, the static complement of ``repro.pram.sanitize``),
  and task purity for remote-shippable entry points (RPR030-RPR032,
  rooted at :func:`task_pure`).

Existing debt is frozen in ``analysis/baseline.json`` and ratchets down;
see DESIGN.md, "Cost-soundness analysis" for the rule catalog and the
contract-composition rules.
"""

from .baseline import Baseline, apply_baseline, default_baseline_path
from .bounds import Bound, BoundParseError, Term, parse_bound
from .callgraph import ProjectContext, build_project, enclosing_symbol
from .contracts import cost_contract, task_pure
from .cost_check import DEFAULT_REQUIRED_CONTRACTS, CostContractPass
from .crew_check import StaticCrewPass, region_reports
from .findings import Finding
from .linter import (
    default_project_passes,
    lint_paths,
    lint_source,
    parse_noqa,
    run,
)
from .purity import TaskPurityPass
from .rules import ALL_RULES, Rule
from .sarif import RULE_SUMMARIES, render_sarif

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Bound",
    "BoundParseError",
    "CostContractPass",
    "DEFAULT_REQUIRED_CONTRACTS",
    "Finding",
    "ProjectContext",
    "RULE_SUMMARIES",
    "Rule",
    "StaticCrewPass",
    "TaskPurityPass",
    "Term",
    "apply_baseline",
    "build_project",
    "cost_contract",
    "default_baseline_path",
    "default_project_passes",
    "enclosing_symbol",
    "lint_paths",
    "lint_source",
    "parse_bound",
    "parse_noqa",
    "region_reports",
    "render_sarif",
    "run",
    "task_pure",
]
