"""SARIF 2.1.0 rendering for ``repro lint`` (CI code-scanning annotations)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence

from .baseline import repo_relative
from .findings import Finding

__all__ = ["RULE_SUMMARIES", "render_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: One-line catalog of every rule the analyzer can emit.
RULE_SUMMARIES: Dict[str, str] = {
    "RPR001": "Graph-sized work with no tracer charge",
    "RPR002": "Sequential graph-sized loop under a polylog-depth claim",
    "RPR003": "Nondeterministic iteration order in traced code",
    "RPR004": "tracer.span misuse that can corrupt the span tree",
    "RPR010": "Body provably exceeds the declared work bound",
    "RPR011": "Body provably exceeds the declared depth bound",
    "RPR012": "Malformed @cost_contract declaration",
    "RPR013": "Tracer forwarded to a callee with no @cost_contract",
    "RPR014": "Registry function missing its @cost_contract",
    "RPR020": "Branch arm writes a shared array with no record_writes",
    "RPR021": "Arms write the same loop-invariant index (CREW overlap)",
    "RPR022": "Shared array escapes a branch into a writing callee",
    "RPR030": "Task-pure code closes over a mutable module global",
    "RPR031": "Task-pure code constructs an unseeded RNG",
    "RPR032": "Task-pure code touches filesystem/network/clock state",
    "RPR999": "File does not parse",
}


def render_sarif(findings: Sequence[Finding], root: Path) -> str:
    """Render findings as a SARIF 2.1.0 log (paths repo-relative)."""
    fired = sorted({f.rule for f in findings})
    rules: List[Dict[str, Any]] = [
        {
            "id": rule,
            "shortDescription": {
                "text": RULE_SUMMARIES.get(rule, rule),
            },
        }
        for rule in fired
    ]
    rule_index = {rule: idx for idx, rule in enumerate(fired)}
    results: List[Dict[str, Any]] = []
    for f in findings:
        results.append(
            {
                "ruleId": f.rule,
                "ruleIndex": rule_index[f.rule],
                "level": "error",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": repo_relative(f.path, root),
                                "uriBaseId": "REPOROOT",
                            },
                            "region": {"startLine": max(1, f.line)},
                        }
                    }
                ],
            }
        )
    log = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro-lint"
                        ),
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "REPOROOT": {"uri": root.resolve().as_uri() + "/"}
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2) + "\n"
