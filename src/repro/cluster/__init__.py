"""Low-diameter decomposition: exponential start time clustering."""

from .est import Clustering, est_clustering

__all__ = ["Clustering", "est_clustering"]
