"""Exponential Start Time Clustering (Miller--Peng--Vladu--Xu [37]).

Lemma 2.3: with O(n) work and O(beta log n) depth, EST beta-clustering
produces (w.h.p.) clusters of diameter O(beta log n) where each edge crosses
the clusters with probability at most 1/beta.

Every vertex u draws an independent shift ``delta_u ~ Exponential(1/beta)``
and joins the cluster of the vertex v maximizing ``delta_v - d(v, u)``.  The
exponential's memorylessness gives the per-edge cut bound; the shifts' max
is O(beta log n) w.h.p., which bounds both the cluster radius and the depth
of the start-time-staggered parallel BFS that computes the clustering.

We execute the clustering as a multi-source Dijkstra over start times (the
output is identical to the staggered BFS) and charge the lemma's cost with
the *measured* radius: work O(n + m), depth O(max cluster radius).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..graphs.csr import Graph
from ..pram import Cost, Tracer

from ..analysis.contracts import cost_contract

__all__ = ["Clustering", "est_clustering"]


@dataclass(frozen=True)
class Clustering:
    """A partition of the vertices into connected low-diameter clusters.

    Attributes
    ----------
    labels:
        ``labels[v]`` = cluster id in ``0..count-1``.
    count:
        Number of clusters.
    centers:
        ``centers[c]`` = the vertex whose shifted BFS claimed cluster ``c``.
    radius:
        Maximum (shifted) hop-distance from a center to a cluster member —
        every cluster has (unshifted) radius at most this.
    """

    labels: np.ndarray
    count: int
    centers: np.ndarray
    radius: int

    def crossing_edges(self, graph: Graph) -> np.ndarray:
        """Boolean mask over ``graph.edges()``: does the edge cross clusters?"""
        e = graph.edges()
        if e.size == 0:
            return np.zeros(0, dtype=bool)
        return self.labels[e[:, 0]] != self.labels[e[:, 1]]

    def cut_fraction(self, graph: Graph) -> float:
        """Fraction of edges crossing the clusters."""
        if graph.m == 0:
            return 0.0
        return float(self.crossing_edges(graph).mean())


@cost_contract(work="O(n + m)", depth="O(beta log n)")
def est_clustering(
    graph: Graph,
    beta: float,
    seed: int,
    tracer: Optional[Tracer] = None,
    label: str = "clustering",
) -> Tuple[Clustering, Cost]:
    """Run EST beta-clustering (Lemma 2.3).

    Parameters
    ----------
    graph:
        The target graph (any graph; the lemma needs no planarity).
    beta:
        The clustering parameter; the paper uses ``beta = 2k`` so that a
        k-vertex connected subgraph stays inside one cluster with
        probability >= 1/2 (Observation 1).
    seed:
        RNG seed for the exponential shifts (reproducible Monte Carlo).
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    n = graph.n
    if n == 0:
        if tracer is not None:
            tracer.charge(Cost.zero(), label=label, clusters=0)
        return (
            Clustering(
                labels=np.empty(0, dtype=np.int64),
                count=0,
                centers=np.empty(0, dtype=np.int64),
                radius=0,
            ),
            Cost.zero(),
        )
    rng = np.random.default_rng(seed)
    shifts = rng.exponential(scale=beta, size=n)
    # Vertex u joins argmax_v (shift_v - d(v, u)); equivalently a shortest
    # path computation with initial keys (max_shift - shift_v).
    top = float(shifts.max())
    start = top - shifts

    dist = np.full(n, np.inf)
    owner = np.full(n, -1, dtype=np.int64)
    heap = [(float(start[v]), int(v), int(v)) for v in range(n)]
    heapq.heapify(heap)
    while heap:
        d, v, src = heapq.heappop(heap)
        if owner[v] != -1:
            continue
        owner[v] = src
        dist[v] = d
        for w in graph.neighbors(v):
            w = int(w)
            if owner[w] == -1:
                heapq.heappush(heap, (d + 1.0, w, src))

    centers, labels = np.unique(owner, return_inverse=True)
    # Measured radius: hops from each vertex to its center's start time.
    radius = int(np.ceil(float(np.max(dist - start[owner]))))
    clustering = Clustering(
        labels=labels.astype(np.int64),
        count=int(centers.size),
        centers=centers,
        radius=radius,
    )
    # Lemma 2.3 accounting: linear work, one parallel round per BFS level.
    cost = Cost(
        max(4 * (n + graph.m), 1),
        max(1, min(radius + 2, 4 * (n + graph.m))),
    )
    if tracer is not None:
        tracer.charge(
            cost, label=label, clusters=clustering.count, radius=radius
        )
    return clustering, cost
