"""Planar embedding substrate: rotation systems, faces, surgery, G'."""

from .embedding import PlanarEmbedding
from .geometric import embed_geometric, embedding_cost
from .dmp import PlanarityError, embed_planar, try_embed_planar
from .triangulate import StellationResult, stellate
from .contract import contract_vertex_sets, relabel_embedding
from .face_vertex import FaceVertexGraph, build_face_vertex_graph

__all__ = [
    "PlanarEmbedding",
    "embed_geometric",
    "embedding_cost",
    "PlanarityError",
    "embed_planar",
    "try_embed_planar",
    "StellationResult",
    "stellate",
    "contract_vertex_sets",
    "relabel_embedding",
    "FaceVertexGraph",
    "build_face_vertex_graph",
]
