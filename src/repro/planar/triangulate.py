"""Face stellation: triangulating an embedded multigraph.

The Baker/Eppstein tree-decomposition construction (Section 2) requires all
faces to be triangles.  Fan triangulation (adding chords) breaks on
non-simple face walks (bridges, contracted minors), so we *stellate*: place
one new vertex inside every face and join it to every corner occurrence of
the face walk.  Stellation works on arbitrary connected embedded multigraphs,
always yields a triangulation, keeps the embedding planar, and increases the
BFS radius by at most one — costing only a small additive constant in the
3d width bound (width ≤ 3(d + 2) - 1 instead of 3(d + 1) - 1; DESIGN.md
records the slack and the E2 benchmark measures the widths actually
achieved).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..pram import Cost, log2_ceil
from .embedding import PlanarEmbedding

__all__ = ["StellationResult", "stellate"]


@dataclass(frozen=True)
class StellationResult:
    """Outcome of stellating every face of an embedding.

    Attributes
    ----------
    embedding:
        The triangulated embedding (original vertices keep their ids; face
        vertices are appended after them).
    num_original:
        Number of original vertices (face vertices are ``>= num_original``).
    face_of_vertex:
        For each face vertex (indexed from 0), the face id it stellates.
    """

    embedding: PlanarEmbedding
    num_original: int
    face_of_vertex: np.ndarray

    def is_face_vertex(self, v: int) -> bool:
        return v >= self.num_original


def stellate(embedding: PlanarEmbedding) -> Tuple[StellationResult, Cost]:
    """Stellate every face; returns the triangulated embedding and cost.

    Work is linear in the number of darts (each dart gains one stellation
    edge); depth is O(log n) — each face is stellated independently and the
    per-face fan is a balanced insertion.
    """
    emb = embedding.copy()
    num_original = emb.n
    faces = emb.faces()
    total_darts = sum(len(w) for w in faces)
    face_ids = []
    for face_index, walk in enumerate(faces):
        if not walk:
            continue
        center = emb.add_vertex()
        face_ids.append(face_index)
        # Join the center to every corner occurrence.  At a corner (the tail
        # of walk dart d) the wedge of this face lies immediately before d
        # in the rotation, so the new corner-side dart goes right there.
        # The center's rotation must be the *reverse* of the walk order for
        # the split faces to close into triangles; anchoring every insert
        # after the first center dart produces exactly that.
        anchor = -1
        for d in walk:
            corner = emb.tail(d)
            nd = emb._new_dart_pair(center, corner)
            # nd: center->corner; nd^1: corner->center.
            emb.insert_dart_after(emb.prv[d], nd ^ 1, corner)
            emb.insert_dart_after(anchor, nd, center)
            if anchor == -1:
                anchor = nd
    result = StellationResult(
        embedding=emb,
        num_original=num_original,
        face_of_vertex=np.asarray(face_ids, dtype=np.int64),
    )
    n = emb.n
    cost = Cost(
        max(2 * total_darts + num_original, 1),
        max(1, log2_ceil(max(n, 2))),
    )
    return result, cost
