"""Embedding surgery: contracting connected vertex sets, relabeling.

Section 5.2.1 builds *minors* of the clusters: "merge all neighboring
clusters into a single vertex each" and "merge all connected components of
the cluster that result after removing V(Gi) into a single vertex each".
Contracting a connected vertex set of an embedded graph keeps the embedding
planar; this module performs the surgery dart-by-dart (each single-edge
contraction splices the absorbed vertex's rotation into the survivor's, as
described in ``PlanarEmbedding.contract_edge``).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..pram import Cost, log2_ceil
from .embedding import NIL, PlanarEmbedding

__all__ = ["contract_vertex_sets", "relabel_embedding"]


def contract_vertex_sets(
    embedding: PlanarEmbedding, groups: Sequence[Sequence[int]]
) -> Tuple[PlanarEmbedding, np.ndarray, Cost]:
    """Contract each (connected) vertex group to a single vertex, in place on
    a copy of the embedding.

    Returns ``(embedding, representative, cost)`` where ``representative[v]``
    is the surviving vertex that ``v`` was merged into (itself if untouched).
    Raises ``ValueError`` if a group is not connected in the embedding.
    The charged cost is linear work and O(log n) depth per the parallel
    connected-contraction primitive the paper cites [27].
    """
    emb = embedding.copy()
    rep = np.arange(emb.n, dtype=np.int64)
    touched_darts = 0
    for group in groups:
        verts = np.unique(np.asarray(list(group), dtype=np.int64))
        if verts.size <= 1:
            continue
        in_group = set(int(v) for v in verts)
        root = int(verts[0])
        # BFS inside the group over the current embedding, collecting a
        # spanning arborescence of tree darts (tail outside->in order).
        tree_darts: List[int] = []
        seen = {root}
        queue = [root]
        while queue:
            u = queue.pop()
            for d in emb.darts_from(u):
                w = emb.head[d]
                if w in in_group and w not in seen:
                    seen.add(w)
                    tree_darts.append(d)
                    queue.append(w)
        if len(seen) != verts.size:
            raise ValueError("contraction group is not connected")
        for d in tree_darts:
            touched_darts += 1
            emb.contract_edge(d)
        for v in verts:
            rep[v] = root
    n = emb.n
    work = max(4 * (touched_darts + 1), 1)
    cost = Cost(work, min(work, max(1, log2_ceil(max(n, 2)))))
    return emb, rep, cost


def relabel_embedding(
    embedding: PlanarEmbedding, keep: Sequence[int]
) -> Tuple[PlanarEmbedding, np.ndarray]:
    """Compact an embedding to the vertex subset ``keep``.

    Unlike ``induced_subembedding`` this never re-pairs darts (safe for
    multigraph embeddings produced by contraction), but it requires that no
    live dart touches a dropped vertex — i.e., dropped vertices must already
    be isolated.  Returns ``(embedding, originals)``.
    """
    verts = np.unique(np.asarray(list(keep), dtype=np.int64))
    remap = np.full(embedding.n, NIL, dtype=np.int64)
    remap[verts] = np.arange(verts.size)
    emb = PlanarEmbedding(int(verts.size))
    emb.head = [
        int(remap[h]) if alive else NIL
        for h, alive in zip(embedding.head, embedding.alive)
    ]
    if any(
        h == NIL and alive
        for h, alive in zip(emb.head, embedding.alive)
    ):
        raise ValueError("a live dart touches a dropped vertex")
    emb.nxt = list(embedding.nxt)
    emb.prv = list(embedding.prv)
    emb.alive = list(embedding.alive)
    emb.first_dart = [int(embedding.first_dart[v]) for v in verts]
    return emb, verts
