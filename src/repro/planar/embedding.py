"""Combinatorial planar embeddings as dart-based rotation systems.

A *rotation system* fixes, for every vertex, the cyclic (counterclockwise)
order of its incident edge-ends ("darts").  On a planar graph a rotation
system induced by any crossing-free drawing determines the set of faces, and
Euler's formula ``V - E + F = 1 + C`` certifies that the system is genus-0
(i.e., actually planar).  Everything downstream of the covering machinery —
Baker-style tree decompositions (Section 2), the face--vertex graph of the
vertex connectivity reduction (Section 5.1, Figure 6), and the minor
construction of the separating cover (Section 5.2.1, Figure 7) — consumes
this object.

The structure is a *multigraph* embedding: edge contraction (needed by the
separating cover) and face stellation (needed for triangulation) create
parallel edges, which are perfectly fine for every consumer.  Self-loops are
never stored (contraction removes them eagerly).

Representation
--------------
Each undirected edge owns two darts ``2e`` and ``2e + 1`` (``twin`` = xor 1).
Per dart: ``head`` (the vertex pointed at), ``nxt``/``prv`` (circular
doubly-linked rotation list around the dart's *tail*).  Per vertex:
``first_dart`` (any incident dart, ``-1`` if isolated).  Darts can be marked
dead (surgery: deletion, contraction).  The face permutation is
``phi(d) = nxt[twin(d)]``; its orbits are the faces.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..graphs.csr import Graph

__all__ = ["PlanarEmbedding"]

NIL = -1


class PlanarEmbedding:
    """A mutable dart-based rotation system (multigraph, no self-loops)."""

    def __init__(self, n: int) -> None:
        self.n = int(n)
        self.head: List[int] = []
        self.nxt: List[int] = []
        self.prv: List[int] = []
        self.alive: List[bool] = []
        self.first_dart: List[int] = [NIL] * self.n

    # -- construction ------------------------------------------------------

    @staticmethod
    def from_rotations(
        n: int, rotations: Sequence[Sequence[int]]
    ) -> "PlanarEmbedding":
        """Build from per-vertex CCW neighbor orders.

        ``rotations[v]`` lists v's neighbors in rotation order; every edge
        ``{u, v}`` must appear exactly once in each endpoint's list (parallel
        edges: once per copy — matched up greedily).
        """
        if len(rotations) != n:
            raise ValueError("need a rotation for every vertex")
        emb = PlanarEmbedding(n)
        # Dart allocation: pair up occurrences (u->v) with (v->u).
        pending: Dict[Tuple[int, int], List[int]] = {}
        dart_of_slot: List[List[int]] = [[] for _ in range(n)]
        for u in range(n):
            for v in rotations[u]:
                v = int(v)
                if not 0 <= v < n:
                    raise ValueError("neighbor out of range")
                if v == u:
                    raise ValueError("self-loops are not supported")
                partner = pending.get((v, u))
                if partner:
                    d = partner.pop()
                    mine = d ^ 1
                    if not partner:
                        del pending[(v, u)]
                else:
                    mine = emb._new_dart_pair(u, v)
                    pending.setdefault((u, v), []).append(mine)
                    dart_of_slot[u].append(mine)
                    continue
                # ``mine`` is the twin slot reserved earlier for (v, u).
                emb.head[mine] = v
                # record actual tail ordering below via dart_of_slot
                dart_of_slot[u].append(mine)
        if pending:
            raise ValueError("unmatched edge occurrence in rotations")
        # Wire the circular rotation lists following the given orders.
        for u in range(n):
            darts = dart_of_slot[u]
            if not darts:
                continue
            emb.first_dart[u] = darts[0]
            k = len(darts)
            for i, d in enumerate(darts):
                emb.nxt[d] = darts[(i + 1) % k]
                emb.prv[d] = darts[(i - 1) % k]
        return emb

    def _new_dart_pair(self, u: int, v: int) -> int:
        """Allocate darts d (u->v) and d+1 (v->u); returns d.  Rotation links
        are left dangling — the caller wires them."""
        d = len(self.head)
        self.head.extend([v, u])
        self.nxt.extend([NIL, NIL])
        self.prv.extend([NIL, NIL])
        self.alive.extend([True, True])
        return d

    # -- basic queries -----------------------------------------------------

    @staticmethod
    def twin(d: int) -> int:
        return d ^ 1

    def tail(self, d: int) -> int:
        return self.head[d ^ 1]

    def darts_from(self, v: int) -> List[int]:
        """Darts with tail ``v`` in rotation order."""
        start = self.first_dart[v]
        if start == NIL:
            return []
        out = [start]
        d = self.nxt[start]
        while d != start:
            out.append(d)
            d = self.nxt[d]
        return out

    def rotation(self, v: int) -> List[int]:
        """Neighbors of ``v`` in rotation order (with multiplicity)."""
        return [self.head[d] for d in self.darts_from(v)]

    def degree(self, v: int) -> int:
        return len(self.darts_from(v))

    def num_darts_alive(self) -> int:
        return sum(self.alive)

    def num_edges(self) -> int:
        return self.num_darts_alive() // 2

    def face_next(self, d: int) -> int:
        """The dart following ``d`` along its face walk."""
        return self.nxt[d ^ 1]

    # -- faces -------------------------------------------------------------

    def face_of_darts(self) -> Tuple[np.ndarray, int]:
        """Assign a face id to every live dart; returns (face_id, count)."""
        total = len(self.head)
        face_id = np.full(total, NIL, dtype=np.int64)
        count = 0
        for d0 in range(total):
            if not self.alive[d0] or face_id[d0] != NIL:
                continue
            d = d0
            while face_id[d] == NIL:
                face_id[d] = count
                d = self.face_next(d)
            count += 1
        return face_id, count

    def faces(self) -> List[List[int]]:
        """All faces, each as its dart walk (in order)."""
        total = len(self.head)
        seen = np.zeros(total, dtype=bool)
        out: List[List[int]] = []
        for d0 in range(total):
            if not self.alive[d0] or seen[d0]:
                continue
            walk = []
            d = d0
            while not seen[d]:
                seen[d] = True
                walk.append(d)
                d = self.face_next(d)
            out.append(walk)
        return out

    def face_vertices(self, walk: Sequence[int]) -> List[int]:
        """The corner sequence of a face walk (tails of its darts)."""
        return [self.tail(d) for d in walk]

    # -- validation --------------------------------------------------------

    def euler_genus(self) -> int:
        """Total Euler-characteristic deficiency, ``sum_c (2 - V_c + E_c - F_c)``.

        The sum ranges over connected components; for an orientable rotation
        system it equals twice the total genus, so 0 certifies a planar
        (sphere) embedding of every component.  Components without edges
        (isolated vertices) contribute their single trivial face.
        """
        labels = self._component_labels()
        comp_count = int(labels.max(initial=-1)) + 1
        v_per = np.bincount(labels, minlength=comp_count)
        e_per = np.zeros(comp_count, dtype=np.int64)
        for d in range(0, len(self.head), 2):
            if self.alive[d]:
                e_per[labels[self.head[d]]] += 1
        face_id, f = self.face_of_darts()
        f_per = np.zeros(comp_count, dtype=np.int64)
        face_seen = np.zeros(f, dtype=bool)
        for d in range(len(self.head)):
            if self.alive[d] and not face_seen[face_id[d]]:
                face_seen[face_id[d]] = True
                f_per[labels[self.head[d]]] += 1
        # Edgeless components have exactly one (trivial) face.
        f_per[e_per == 0] = 1
        return int(np.sum(2 - v_per + e_per - f_per))

    def check(self) -> None:
        """Validate structural invariants; raises AssertionError on damage."""
        for d in range(len(self.head)):
            if not self.alive[d]:
                continue
            assert self.alive[d ^ 1], "half-dead edge"
            assert self.nxt[self.prv[d]] == d, "broken rotation links"
            assert self.prv[self.nxt[d]] == d, "broken rotation links"
            assert self.head[d ^ 1] != self.head[d], "self-loop stored"
        for v in range(self.n):
            fd = self.first_dart[v]
            if fd != NIL:
                assert self.alive[fd], "first_dart points at dead dart"
                assert self.tail(fd) == v, "first_dart tail mismatch"

    def is_planar(self) -> bool:
        return self.euler_genus() == 0

    def _component_labels(self) -> np.ndarray:
        """Compact component labels (0..C-1) for every vertex."""
        label = np.arange(self.n, dtype=np.int64)

        def find(x: int) -> int:
            while label[x] != x:
                label[x] = label[label[x]]
                x = int(label[x])
            return x

        for d in range(0, len(self.head), 2):
            if not self.alive[d]:
                continue
            a, b = find(self.head[d]), find(self.head[d ^ 1])
            if a != b:
                label[a] = b
        roots = np.array([find(v) for v in range(self.n)], dtype=np.int64)
        _, compact = np.unique(roots, return_inverse=True)
        return compact.astype(np.int64)

    def _component_count(self) -> int:
        if self.n == 0:
            return 0
        return int(self._component_labels().max()) + 1

    # -- conversion --------------------------------------------------------

    def to_graph(self) -> Graph:
        """The underlying *simple* graph (parallel edges collapsed)."""
        edges = []
        for d in range(0, len(self.head), 2):
            if self.alive[d]:
                edges.append((self.head[d ^ 1], self.head[d]))
        return Graph(self.n, edges)

    def copy(self) -> "PlanarEmbedding":
        emb = PlanarEmbedding(self.n)
        emb.head = list(self.head)
        emb.nxt = list(self.nxt)
        emb.prv = list(self.prv)
        emb.alive = list(self.alive)
        emb.first_dart = list(self.first_dart)
        return emb

    # -- surgery -----------------------------------------------------------

    def insert_dart_after(self, position: int, dart: int, tail: int) -> None:
        """Splice ``dart`` (tail ``tail``) into the rotation right after
        ``position`` (which must share the tail), or make it the sole dart
        if ``position`` is NIL."""
        if position == NIL:
            self.nxt[dart] = dart
            self.prv[dart] = dart
            self.first_dart[tail] = dart
            return
        nxt = self.nxt[position]
        self.nxt[position] = dart
        self.prv[dart] = position
        self.nxt[dart] = nxt
        self.prv[nxt] = dart

    def remove_dart(self, d: int) -> None:
        """Unlink one dart from its rotation (does not touch its twin)."""
        t = self.tail(d)
        if self.nxt[d] == d:
            self.first_dart[t] = NIL
        else:
            self.nxt[self.prv[d]] = self.nxt[d]
            self.prv[self.nxt[d]] = self.prv[d]
            if self.first_dart[t] == d:
                self.first_dart[t] = self.nxt[d]
        self.alive[d] = False

    def delete_edge(self, d: int) -> None:
        """Delete the undirected edge owning dart ``d``."""
        self.remove_dart(d)
        self.remove_dart(d ^ 1)

    def add_edge_in_face(self, d_after_u: int, d_after_v: int) -> int:
        """Add an edge splitting a face.

        The new edge runs from ``tail(d_after_u)`` to ``tail(d_after_v)``;
        the new dart at each endpoint is inserted into the rotation so that
        it lies inside the face *preceding* the given dart in rotation order
        (i.e., the new dart becomes ``prv`` of the given dart).  Both darts
        must border the same face for planarity to be preserved; this is the
        caller's responsibility (checked cheaply in triangulation code via
        Euler validation in tests).

        Returns the new dart from u's side.
        """
        u = self.tail(d_after_u)
        v = self.tail(d_after_v)
        d = self._new_dart_pair(u, v)
        # Insert d before d_after_u in u's rotation.
        self.insert_dart_after(self.prv[d_after_u], d, u)
        self.insert_dart_after(self.prv[d_after_v], d ^ 1, v)
        return d

    def add_vertex(self) -> int:
        """Append an isolated vertex; returns its id."""
        self.first_dart.append(NIL)
        self.n += 1
        return self.n - 1

    def contract_edge(self, d: int) -> None:
        """Contract the edge owning dart ``d``: merge ``head(d)`` into
        ``tail(d)``, preserving the embedding.

        The merged rotation at the surviving vertex is u's rotation with the
        slot of ``d`` replaced by v's rotation starting after ``twin(d)``.
        Any resulting self-loops (parallel edges between u and v) are
        removed.  The absorbed vertex keeps its id but becomes isolated;
        callers typically relabel via :meth:`to_graph` + quotient maps.
        """
        u = self.tail(d)
        v = self.head[d]
        if u == v:
            raise ValueError("self-loop contraction")
        # Re-tail all of v's darts to u by rewriting their twins' heads.
        v_darts = self.darts_from(v)
        for dv in v_darts:
            self.head[dv ^ 1] = u
        # Splice v's rotation (starting after twin(d)) into u's at d's slot.
        td = d ^ 1
        before = self.prv[d]
        after = self.nxt[d]
        ring = [x for x in self._ring_from(td) if x != td]
        # Remove d from u's ring and td conceptually from v's ring.
        if after == d:  # d was u's only dart
            self.first_dart[u] = NIL
            before = NIL
        else:
            self.nxt[before] = after
            self.prv[after] = before
            if self.first_dart[u] == d:
                self.first_dart[u] = after
        self.alive[d] = False
        self.alive[td] = False
        self.first_dart[v] = NIL
        # Splice the ring in.
        insert_pos = before
        for x in ring:
            self.insert_dart_after(insert_pos, x, u)
            insert_pos = x
        # Remove self-loops created by parallel u-v edges.
        for x in list(self.darts_from(u)):
            if self.alive[x] and self.head[x] == u:
                self.remove_dart(x)
                self.remove_dart(x ^ 1)

    def _ring_from(self, start: int) -> List[int]:
        out = [start]
        d = self.nxt[start]
        while d != start:
            out.append(d)
            d = self.nxt[d]
        return out

    def induced_subembedding(
        self, vertices: Sequence[int]
    ) -> Tuple["PlanarEmbedding", np.ndarray]:
        """The embedding induced on a vertex subset.

        Kept darts retain their relative rotation order (a sub-rotation of a
        planar rotation system is planar).  Returns ``(embedding,
        originals)`` with ``originals[i]`` = original id of new vertex ``i``.
        """
        verts = np.unique(np.asarray(list(vertices), dtype=np.int64))
        if verts.size and (verts[0] < 0 or verts[-1] >= self.n):
            raise ValueError("vertex out of range")
        remap = np.full(self.n, NIL, dtype=np.int64)
        remap[verts] = np.arange(verts.size)
        rotations: List[List[int]] = []
        for v in verts:
            rotations.append(
                [
                    int(remap[self.head[d]])
                    for d in self.darts_from(int(v))
                    if remap[self.head[d]] != NIL
                ]
            )
        return (
            PlanarEmbedding.from_rotations(int(verts.size), rotations),
            verts,
        )
