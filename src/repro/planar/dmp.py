"""Planarity testing + embedding for abstract graphs (DMP algorithm).

The Demoucron--Malgrange--Pertuiset incremental algorithm: start from a
cycle, repeatedly choose a *fragment* (bridge) of the remaining graph, and
embed a path of it into an admissible face.  O(n^2) — perfectly adequate for
the abstract inputs we must embed without coordinates (pattern graphs, the
icosahedron, user-supplied targets); geometric inputs take the O(n)-work
fast path in ``repro.planar.geometric`` instead.  This module is our
substitute for the Klein--Reif parallel embedding primitive [31] (DESIGN.md,
Substitutions); the pipeline charges that primitive's cost via
``embedding_cost``.

The returned object is a rotation system reconstructed from the final face
set: with every dart lying on exactly one (consistently oriented) face, the
rotation successor of a dart d is phi(twin(d)) where phi follows faces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..graphs.csr import Graph
from .embedding import PlanarEmbedding

__all__ = ["embed_planar", "try_embed_planar", "PlanarityError"]


class PlanarityError(ValueError):
    """Raised when a graph admits no planar embedding."""


def embed_planar(graph: Graph) -> PlanarEmbedding:
    """A planar embedding of ``graph``; raises :class:`PlanarityError`."""
    emb = try_embed_planar(graph)
    if emb is None:
        raise PlanarityError("graph is not planar")
    return emb


def try_embed_planar(graph: Graph) -> Optional[PlanarEmbedding]:
    """A planar embedding of ``graph``, or ``None`` if it has none."""
    n = graph.n
    if n == 0:
        return PlanarEmbedding(0)
    if graph.m > max(3 * n - 6, n - 1):
        return None  # Euler bound: too dense to be planar

    rotations: List[List[int]] = [[] for _ in range(n)]
    # Decompose into biconnected pieces; embed each; splice rotations at
    # shared (articulation) vertices — any interleaving is planar because
    # pieces meet in single vertices.
    for piece_vertices, piece_edges in _biconnected_pieces(graph):
        piece_rot = _embed_piece(piece_vertices, piece_edges)
        if piece_rot is None:
            return None
        for v, order in piece_rot.items():
            rotations[v].extend(order)
    return PlanarEmbedding.from_rotations(n, rotations)


# -- biconnected decomposition ----------------------------------------------


def _biconnected_pieces(
    graph: Graph,
) -> List[Tuple[List[int], List[Tuple[int, int]]]]:
    """Split into biconnected components (each a vertex + edge list)."""
    n = graph.n
    indptr, indices = graph.indptr, graph.indices
    visited = np.zeros(n, dtype=bool)
    disc = np.zeros(n, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    timer = 0
    pieces: List[Tuple[List[int], List[Tuple[int, int]]]] = []
    edge_stack: List[Tuple[int, int]] = []

    for root in range(n):
        if visited[root]:
            continue
        stack: List[List[int]] = [[root, -1, int(indptr[root])]]
        visited[root] = True
        disc[root] = low[root] = timer
        timer += 1
        while stack:
            v, parent, ptr = stack[-1]
            if ptr < indptr[v + 1]:
                stack[-1][2] += 1
                w = int(indices[ptr])
                if not visited[w]:
                    visited[w] = True
                    disc[w] = low[w] = timer
                    timer += 1
                    edge_stack.append((v, w))
                    stack.append([w, v, int(indptr[w])])
                elif w != parent and disc[w] < disc[v]:
                    edge_stack.append((v, w))
                    if disc[w] < low[v]:
                        low[v] = disc[w]
            else:
                stack.pop()
                if stack:
                    pv = stack[-1][0]
                    if low[v] < low[pv]:
                        low[pv] = low[v]
                    if low[v] >= disc[pv]:
                        # pv is a cut vertex (or the root): pop a component.
                        comp: List[Tuple[int, int]] = []
                        while edge_stack and edge_stack[-1] != (pv, v):
                            comp.append(edge_stack.pop())
                        if edge_stack:
                            comp.append(edge_stack.pop())
                        if comp:
                            verts = sorted(
                                {u for e in comp for u in e}
                            )
                            pieces.append((verts, comp))
    return pieces


# -- DMP on a biconnected piece ----------------------------------------------


def _embed_piece(
    vertices: Sequence[int], edges: Sequence[Tuple[int, int]]
) -> Optional[Dict[int, List[int]]]:
    """Embed one biconnected piece; returns per-vertex rotations (in the
    original vertex ids) or ``None`` when non-planar."""
    if len(edges) == 1:
        (u, v), = edges
        return {u: [v], v: [u]}

    adj: Dict[int, Set[int]] = {v: set() for v in vertices}
    for u, v in edges:
        adj[u].add(v)
        adj[v].add(u)

    cycle = _find_cycle(adj)
    # Embedded subgraph state: set of embedded vertices, set of embedded
    # edges, and the face list (directed vertex cycles; every dart on
    # exactly one face).
    embedded_vertices: Set[int] = set(cycle)
    embedded_edges: Set[Tuple[int, int]] = set()

    def canon(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a < b else (b, a)

    for a, b in zip(cycle, cycle[1:] + cycle[:1]):
        embedded_edges.add(canon(a, b))
    faces: List[List[int]] = [list(cycle), list(reversed(cycle))]
    total_edges = len(edges)

    while len(embedded_edges) < total_edges:
        fragments = _fragments(adj, embedded_vertices, embedded_edges, canon)
        # Compute admissible faces per fragment.
        face_sets = [set(f) for f in faces]
        choice = None
        for frag in fragments:
            attach = frag[1]
            admissible = [
                i for i, fs in enumerate(face_sets) if attach <= fs
            ]
            if not admissible:
                return None  # non-planar
            if choice is None or len(admissible) == 1:
                choice = (frag, admissible)
                if len(admissible) == 1:
                    break
        assert choice is not None
        (frag_vertices, attach), admissible = choice
        face_idx = admissible[0]
        path = _fragment_path(adj, frag_vertices, attach, embedded_vertices)
        _embed_path(faces, face_idx, path)
        for x in path[1:-1]:
            embedded_vertices.add(x)
        for a, b in zip(path, path[1:]):
            embedded_edges.add(canon(a, b))

    # Reconstruct rotations from the faces: rotation successor of dart
    # (u -> v) is the face-successor of dart (v -> u).
    face_succ: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for f in faces:
        k = len(f)
        for i in range(k):
            d = (f[i], f[(i + 1) % k])
            face_succ[d] = (f[(i + 1) % k], f[(i + 2) % k])
    rotations: Dict[int, List[int]] = {}
    placed: Set[Tuple[int, int]] = set()
    for u in vertices:
        order: List[int] = []
        start = next(
            ((a, b) for (a, b) in face_succ if a == u), None
        )
        if start is None:
            continue
        d = start
        while d not in placed:
            placed.add(d)
            order.append(d[1])
            d = face_succ[(d[1], d[0])]
        rotations[u] = order
    return rotations


def _find_cycle(adj: Dict[int, Set[int]]) -> List[int]:
    """Any simple cycle of a biconnected graph: take an edge (u, v) and a
    shortest u--v path avoiding that edge (one exists — no bridges)."""
    u = next(iter(adj))
    v = next(iter(adj[u]))
    parent: Dict[int, int] = {u: -1}
    queue = [u]
    while queue and v not in parent:
        nxt: List[int] = []
        for x in queue:
            for w in adj[x]:
                if w in parent or (x == u and w == v):
                    continue
                parent[w] = x
                nxt.append(w)
        queue = nxt
    if v not in parent:
        raise AssertionError("biconnected piece with a bridge edge")
    path = [v]
    x = v
    while parent[x] != -1:
        x = parent[x]
        path.append(x)
    return path


def _fragments(
    adj: Dict[int, Set[int]],
    embedded_vertices: Set[int],
    embedded_edges: Set[Tuple[int, int]],
    canon,
) -> List[Tuple[Set[int], Set[int]]]:
    """Bridges of G relative to the embedded subgraph H.

    Each fragment is ``(vertex set incl. attachments, attachment set)``.
    Chords (edges between two embedded vertices not yet embedded) are their
    own fragments.
    """
    out: List[Tuple[Set[int], Set[int]]] = []
    seen: Set[int] = set()
    for v in adj:
        if v in embedded_vertices or v in seen:
            continue
        # Flood a component of G - V(H).
        comp = {v}
        attach: Set[int] = set()
        queue = [v]
        seen.add(v)
        while queue:
            x = queue.pop()
            for w in adj[x]:
                if w in embedded_vertices:
                    attach.add(w)
                elif w not in seen:
                    seen.add(w)
                    comp.add(w)
                    queue.append(w)
        out.append((comp | attach, attach))
    for u in adj:
        if u not in embedded_vertices:
            continue
        for w in adj[u]:
            if (
                w in embedded_vertices
                and u < w
                and canon(u, w) not in embedded_edges
            ):
                out.append(({u, w}, {u, w}))
    return out


def _fragment_path(
    adj: Dict[int, Set[int]],
    frag_vertices: Set[int],
    attach: Set[int],
    embedded_vertices: Set[int],
) -> List[int]:
    """A path between two distinct attachments through the fragment."""
    attach_list = sorted(attach)
    a = attach_list[0]
    interior = frag_vertices - embedded_vertices
    targets = attach - {a}
    if not interior:
        # Chord fragment: the path is the edge itself.
        return [a, attach_list[1]]
    # BFS from a *through interior vertices only* to any other attachment
    # (every path edge must belong to the fragment, so the first hop must
    # enter the interior — a direct embedded edge a-b is not fragment path).
    parent: Dict[int, int] = {a: -1}
    queue = [w for w in adj[a] if w in interior]
    for w in queue:
        parent[w] = a
    found = None
    while queue and found is None:
        nxt: List[int] = []
        for x in queue:
            for w in adj[x]:
                if w in parent:
                    continue
                if w in targets:
                    parent[w] = x
                    found = w
                    break
                if w in interior:
                    parent[w] = x
                    nxt.append(w)
            if found is not None:
                break
        queue = nxt
    assert found is not None, "fragment must connect two attachments"
    path = [found]
    x = found
    while parent[x] != -1:
        x = parent[x]
        path.append(x)
    return list(reversed(path))


def _embed_path(faces: List[List[int]], face_idx: int, path: List[int]) -> None:
    """Split ``faces[face_idx]`` by the path (endpoints on the face)."""
    face = faces[face_idx]
    a, b = path[0], path[-1]
    ia = face.index(a)
    ib = face.index(b)
    # Arc from a forward to b, and from b forward to a (cyclically).
    if ia <= ib:
        arc_ab = face[ia : ib + 1]
        arc_ba = face[ib:] + face[: ia + 1]
    else:
        arc_ab = face[ia:] + face[: ib + 1]
        arc_ba = face[ib : ia + 1]
    interior = path[1:-1]
    # New directed cycles: a..b along the face then the path reversed, and
    # b..a along the face then the path forward.
    faces[face_idx] = arc_ab + list(reversed(interior))
    faces.append(arc_ba + interior)
