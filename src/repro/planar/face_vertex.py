"""The bipartite face--vertex graph G' of Section 5.1 (Figure 6).

"Place a vertex inside every face f of G and connect it to all the vertices
of the face (remove the original edges)."  Cycles of G' alternate between
original and face vertices, so all cycles are even, and Lemma 5.1 relates
the shortest cycle separating the original vertices to the vertex
connectivity of G.

Implementation: stellate the embedding (``repro.planar.triangulate``) and
delete the original edges — this yields both the graph *and* a planar
embedding of G', which the separating-cover pipeline needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..graphs.csr import Graph
from ..pram import Cost
from .embedding import PlanarEmbedding
from .triangulate import stellate

__all__ = ["FaceVertexGraph", "build_face_vertex_graph"]


@dataclass(frozen=True)
class FaceVertexGraph:
    """G' with its embedding and the original-vertex marking.

    Vertices ``0..num_original-1`` are the original vertices of G (the set
    ``S`` of the separating-cycle problem); the rest are face vertices.
    """

    graph: Graph
    embedding: PlanarEmbedding
    num_original: int

    @property
    def original_vertices(self) -> np.ndarray:
        return np.arange(self.num_original, dtype=np.int64)

    def is_original(self, v: int) -> bool:
        return v < self.num_original


def build_face_vertex_graph(
    embedding: PlanarEmbedding,
) -> Tuple[FaceVertexGraph, Cost]:
    """Construct G' from an embedding of G.

    Work O(n + m), depth O(log n): stellation plus one edge-deletion round.
    Note G' is simple even when a face visits a vertex twice — the underlying
    ``Graph`` collapses parallel face--vertex incidences (Lemma 5.1 is stated
    for 2-connected G, where face walks are simple anyway).
    """
    num_original = embedding.n
    original_edge_darts = [
        d for d in range(0, len(embedding.head), 2) if embedding.alive[d]
    ]
    stell, cost = stellate(embedding)
    emb = stell.embedding
    for d in original_edge_darts:
        emb.delete_edge(d)
    cost = cost + Cost.step(max(len(original_edge_darts), 1))
    return (
        FaceVertexGraph(
            graph=emb.to_graph(),
            embedding=emb,
            num_original=num_original,
        ),
        cost,
    )
