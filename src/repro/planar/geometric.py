"""Embeddings from straight-line drawings (the generators' fast path).

Any crossing-free straight-line drawing induces a rotation system: sort each
vertex's neighbors counterclockwise by angle.  All geometric generators in
``repro.graphs.generators`` carry coordinates, so this plays the role of the
Klein--Reif parallel embedding primitive (O(n) work, O(log^2 n) depth [31]),
whose cost is charged analytically by :func:`embedding_cost` (see DESIGN.md,
Substitutions).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graphs.generators import GeometricGraph
from ..pram import Cost, log2_ceil
from .embedding import PlanarEmbedding

__all__ = ["embed_geometric", "embedding_cost"]


def embedding_cost(n: int) -> Cost:
    """The charged cost of planar embedding (Klein--Reif): O(n) work,
    O(log^2 n) depth."""
    lg = log2_ceil(max(n, 2))
    work = max(4 * n, 1)
    return Cost(work, min(max(1, lg * lg), work))


def embed_geometric(
    geometric: GeometricGraph, validate: bool = True
) -> Tuple[PlanarEmbedding, Cost]:
    """Rotation system of a straight-line planar drawing.

    Raises ``ValueError`` when the drawing is not planar (Euler check), which
    catches generator bugs early; pass ``validate=False`` to skip.
    """
    graph, pos = geometric.graph, np.asarray(geometric.positions, dtype=float)
    if pos.shape != (graph.n, 2):
        raise ValueError("positions must be n x 2")
    rotations = []
    for v in range(graph.n):
        nbrs = graph.neighbors(v)
        if nbrs.size == 0:
            rotations.append([])
            continue
        delta = pos[nbrs] - pos[v]
        angles = np.arctan2(delta[:, 1], delta[:, 0])
        rotations.append(nbrs[np.argsort(angles, kind="stable")].tolist())
    emb = PlanarEmbedding.from_rotations(graph.n, rotations)
    if validate and emb.euler_genus() != 0:
        raise ValueError(
            "straight-line drawing is not planar (nonzero Euler genus)"
        )
    return emb, embedding_cost(graph.n)
