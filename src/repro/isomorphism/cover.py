"""The Parallel Treewidth k-d Cover (Section 2.1, Theorem 2.4, Figures 2-3).

1. Exponential Start Time 2k-clustering splits the target into low-diameter
   clusters; a fixed occurrence of a connected k-vertex pattern survives
   inside one cluster with probability >= 1/2 (Observation 1).
2. A BFS from an arbitrary root of each cluster assigns levels; for each
   window of d + 1 consecutive levels [i, i + d] the induced subgraph G_i is
   one cover piece (Figure 3).  Windows beyond ``max_level - d`` are subsets
   of the last full window and are skipped (the Figure 3 note).
3. Each piece receives a width <= 3(d + 1) + 2 tree decomposition: for
   i = 0 the piece contains the root and Baker's construction applies
   directly; for i > 0 the levels below the window are *contracted* into a
   super-root (the BFS depth of the contracted graph is <= d + 1), Baker's
   construction runs from the super-root, and the super-root is dropped
   from every bag (still a valid decomposition of the piece).

Guarantees (measured by the E2 benchmark, proved in Theorem 2.4): every
piece has treewidth O(d); every vertex is in at most d + 1 pieces; every
fixed occurrence is captured with probability >= 1/2; O(nd) work and
O(k log n) depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..cluster.est import est_clustering
from ..graphs.bfs import parallel_bfs
from ..graphs.components import component_members
from ..graphs.csr import Graph
from ..planar.contract import contract_vertex_sets, relabel_embedding
from ..planar.embedding import PlanarEmbedding
from ..pram import Cost, ShadowArray, Span, Tracer
from ..treedecomp.baker import baker_decomposition
from ..treedecomp.decomposition import TreeDecomposition

__all__ = ["CoverPiece", "TreewidthCover", "treewidth_cover"]

NIL = -1


@dataclass
class CoverPiece:
    """One subgraph of the cover, with its decomposition.

    ``originals[v]`` maps the piece's local vertex ``v`` to the target
    graph's vertex id; ``decomposition`` is over local ids.
    """

    graph: Graph
    originals: np.ndarray
    decomposition: TreeDecomposition
    cluster: int
    window_start: int


@dataclass
class TreewidthCover:
    """The full cover: pieces plus the clustering diagnostics.

    ``trace`` is the cover's phase subtree (root named ``"cover"``); its
    total equals ``cost``.
    """

    pieces: List[CoverPiece]
    num_clusters: int
    cost: Cost
    trace: Optional[Span] = None

    def max_width(self) -> int:
        return max(
            (p.decomposition.width() for p in self.pieces), default=0
        )

    def pieces_per_vertex(self, n: int) -> np.ndarray:
        counts = np.zeros(n, dtype=np.int64)
        for piece in self.pieces:
            counts[piece.originals] += 1
        return counts


def treewidth_cover(
    graph: Graph,
    embedding: PlanarEmbedding,
    k: int,
    d: int,
    seed: int,
    tracer: Optional[Tracer] = None,
    clustering=None,
) -> TreewidthCover:
    """Build a Parallel Treewidth k-d Cover of ``graph`` (see module doc).

    ``embedding`` must be a genus-0 embedding of ``graph`` (vertex ids
    aligned).  ``d`` is the pattern diameter; ``k`` its vertex count.
    When a ``tracer`` is given, the construction records its phases
    (``clustering``, one branch per cluster with its ``bfs`` and per-window
    ``baker``/``contract`` charges) under a ``cover`` span of that trace.

    ``clustering`` optionally supplies a prebuilt EST 2k-clustering of the
    same ``(graph, seed)`` (the target session's amortization); its
    construction is then neither repeated nor re-charged — the caller
    accounts for it.  The resulting cover is byte-identical to an inline
    build because :func:`est_clustering` is deterministic per seed.
    """
    if k < 1 or d < 0:
        raise ValueError("need k >= 1 and d >= 0")
    if embedding.n != graph.n:
        raise ValueError("embedding does not match the graph")
    tracker = tracer if tracer is not None else Tracer("cover-run")
    with tracker.span("cover", k=k, d=d) as cover_span:
        if clustering is None:
            clustering, _ = est_clustering(
                graph, beta=2.0 * k, seed=seed, tracer=tracker
            )

        pieces: List[CoverPiece] = []
        members_per_cluster = component_members(
            clustering.labels, clustering.count
        )
        with tracker.parallel("clusters") as clusters_region:
            # Each cluster branch writes the cover-piece cells of its own
            # member vertices; the sanitizer thereby checks that the EST
            # clustering really partitions the vertex set (Lemma 2.3).
            vertex_cells = ShadowArray("cluster-vertices", graph.n)
            for cluster_id, members in enumerate(members_per_cluster):
                with clusters_region.branch("cluster") as branch:
                    branch.record_writes(vertex_cells, members)
                    pieces.extend(
                        _cover_cluster(
                            graph, embedding, members, d, cluster_id, branch
                        )
                    )
        tracker.count(pieces=len(pieces))
    return TreewidthCover(
        pieces=pieces,
        num_clusters=clustering.count,
        cost=cover_span.cost,
        trace=cover_span,
    )


def _cover_cluster(
    graph: Graph,
    embedding: PlanarEmbedding,
    members: np.ndarray,
    d: int,
    cluster_id: int,
    tracker: Tracer,
) -> List[CoverPiece]:
    """Windows + decompositions for one cluster."""
    sub_emb, originals = embedding.induced_subembedding(members)
    cluster_graph = sub_emb.to_graph()
    tracker.charge(
        Cost.step(max(int(members.size), 1)), label="subembed"
    )

    if cluster_graph.n == 1:
        td = TreeDecomposition(
            bags=[np.array([0])], parent=np.array([NIL]), root=0
        )
        return [
            CoverPiece(
                graph=cluster_graph,
                originals=originals,
                decomposition=td,
                cluster=cluster_id,
                window_start=0,
            )
        ]

    root = 0
    bfs, _ = parallel_bfs(cluster_graph, [root], tracer=tracker)
    max_level = bfs.depth
    level = bfs.level

    out: List[CoverPiece] = []
    last_start = max(0, max_level - d)
    with tracker.parallel("windows") as windows:
        window_cells = ShadowArray("window-pieces", last_start + 1)
        for i in range(last_start + 1):
            with windows.branch("window") as wbranch:
                wbranch.record_writes(window_cells, i)
                piece = _build_window_piece(
                    sub_emb, cluster_graph, originals, level,
                    i, d, root, cluster_id, wbranch,
                )
                if piece is not None:
                    out.append(piece)
    return out


def _build_window_piece(
    cluster_emb: PlanarEmbedding,
    cluster_graph: Graph,
    originals: np.ndarray,
    level: np.ndarray,
    i: int,
    d: int,
    root: int,
    cluster_id: int,
    tracker: Tracer,
) -> Optional[CoverPiece]:
    window_mask = (level >= i) & (level <= i + d)
    window = np.flatnonzero(window_mask)
    if window.size == 0:
        return None
    if i == 0:
        piece_emb, local_originals = cluster_emb.induced_subembedding(window)
        tracker.charge(
            Cost.step(max(int(window.size), 1)), label="subembed"
        )
        piece_root = int(np.flatnonzero(local_originals == root)[0])
        td, _ = baker_decomposition(piece_emb, piece_root, tracer=tracker)
        return CoverPiece(
            graph=piece_emb.to_graph(),
            originals=originals[local_originals],
            decomposition=td,
            cluster=cluster_id,
            window_start=i,
        )
    # i > 0: contract the inner levels into a super-root, decompose the
    # contracted (still planar) graph, then drop the super-root from bags.
    keep_mask = level <= i + d
    keep = np.flatnonzero(keep_mask)
    sub_emb2, orig2 = cluster_emb.induced_subembedding(keep)
    inner = np.flatnonzero(level[orig2] < i)
    contracted, rep, cost = contract_vertex_sets(sub_emb2, [inner.tolist()])
    tracker.charge(cost, label="contract")
    super_root_old = int(rep[inner[0]])
    live = sorted(
        set(int(v) for v in np.flatnonzero(level[orig2] >= i))
        | {super_root_old}
    )
    small, kept = relabel_embedding(contracted, live)
    super_root = int(np.flatnonzero(kept == super_root_old)[0])
    td, _ = baker_decomposition(small, super_root, tracer=tracker)
    # Drop the super-root from every bag and relabel to the window's ids.
    window_local = [v for j, v in enumerate(kept) if j != super_root]
    remap = np.full(small.n, NIL, dtype=np.int64)
    for new_id, j in enumerate(
        j for j in range(small.n) if j != super_root
    ):
        remap[j] = new_id
    bags = []
    for bag in td.bags:
        trimmed = bag[bag != super_root]
        bags.append(remap[trimmed])
    td2 = TreeDecomposition(bags=bags, parent=td.parent, root=td.root)
    piece_vertices = orig2[np.asarray(window_local, dtype=np.int64)]
    piece_graph, piece_orig = cluster_graph.induced_subgraph(piece_vertices)
    return CoverPiece(
        graph=piece_graph,
        originals=originals[piece_orig],
        decomposition=td2,
        cluster=cluster_id,
        window_start=i,
    )
