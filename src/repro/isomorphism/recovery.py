"""Occurrence recovery: turn DP valid-state tables into explicit matches.

Section 4.2.1: a valid accepting match of the root is attributed to concrete
subgraph isomorphisms by walking the graph of partial matches in reverse,
extending the isomorphism through each edge; only the k match-introducing
edges change the mapping, all shortcut/translation edges leave it alone.

The walker below is engine-agnostic: it needs only the per-node valid-state
tables (produced identically by the sequential and the parallel engine) and
the state space's backward transitions.  Enumeration is an iterative AND-OR
search (joins fork two subgoals), streaming witnesses so callers can stop at
any limit.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..treedecomp.nice import FORGET, INTRODUCE, JOIN, LEAF, NiceDecomposition

__all__ = ["iter_witnesses", "first_witness", "witness_images"]


def iter_witnesses(
    space,
    nice: NiceDecomposition,
    valid: List[Dict[tuple, int]],
) -> Iterator[Dict[int, int]]:
    """Yield every subgraph isomorphism (pattern vertex -> target vertex)
    recorded by the DP tables.

    Each witness is yielded exactly once (the derivation of a fixed
    isomorphism through the decomposition is unique).
    """
    kids = nice.children()
    root = nice.root
    accepting = [s for s in valid[root] if space.is_accepting(s)]
    # DFS over (pending subgoals, assignment so far).
    stack: List[Tuple[Tuple[Tuple[int, tuple], ...], Dict[int, int]]] = [
        (((root, s),), {}) for s in accepting
    ]
    while stack:
        goals, assignment = stack.pop()
        if not goals:
            yield dict(assignment)
            continue
        (node, state), rest = goals[0], goals[1:]
        kind = nice.kinds[node]
        cs = kids[node]
        if kind == LEAF:
            stack.append((rest, assignment))
            continue
        if kind == INTRODUCE:
            v = int(nice.vertex[node])
            for child_state, newly in space.introduce_preimage_candidates(
                v, state
            ):
                if child_state not in valid[cs[0]]:
                    continue
                if not any(
                    t == state for t in space.introduce(v, child_state)
                ):
                    continue
                asg = assignment
                if newly is not None:
                    asg = dict(assignment)
                    asg[newly] = v
                stack.append((((cs[0], child_state),) + rest, asg))
            continue
        if kind == FORGET:
            v = int(nice.vertex[node])
            for cand in space.forget_preimage_candidates(v, state):
                if cand in valid[cs[0]] and space.forget(v, cand) == state:
                    stack.append((((cs[0], cand),) + rest, assignment))
            continue
        if kind == JOIN:
            left, right = cs
            for sl, sr in space.join_splits(state):
                if sl in valid[left] and sr in valid[right]:
                    if space.join(sl, sr) == state:
                        stack.append(
                            (((left, sl), (right, sr)) + rest, assignment)
                        )
            continue
        raise ValueError(f"unknown node kind {kind!r}")  # pragma: no cover


def first_witness(
    space, nice: NiceDecomposition, valid: List[Dict[tuple, int]]
) -> Optional[Dict[int, int]]:
    """One subgraph isomorphism, or None."""
    return next(iter_witnesses(space, nice, valid), None)


def witness_images(
    space, nice: NiceDecomposition, valid: List[Dict[tuple, int]]
) -> set:
    """The set of *occurrences* (frozen target-vertex sets with their edge
    realization irrelevant): witnesses deduplicated by image."""
    return {
        frozenset(w.values())
        for w in iter_witnesses(space, nice, valid)
    }
