"""Disconnected patterns by random vertex coloring (Section 4.1, Lemma 4.1).

Color every target vertex independently and uniformly with one of ``l``
colors (one per pattern component); search component ``i`` inside the color-
``i`` induced subgraph; succeed when every component is found.  A fixed
occurrence is colored consistently with probability ``l^-k``, so ``O(l^k)``
repetitions find it with constant probability and ``O(l^k log n)``
repetitions certify absence w.h.p. — the reduction is black-box over the
connected driver, exactly as the paper notes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..exec.backends import backend_scope
from ..graphs.csr import Graph
from ..planar.embedding import PlanarEmbedding
from ..pram import Cost, ShadowArray, Tracker
from .pattern import Pattern
from .planar_si import decide_subgraph_isomorphism

from ..analysis.contracts import cost_contract

__all__ = ["DisconnectedSIResult", "decide_disconnected"]


@dataclass
class DisconnectedSIResult:
    """Monte Carlo outcome for a (possibly) disconnected pattern."""

    found: bool
    witness: Optional[Dict[int, int]]
    colorings_used: int
    cost: Cost
    plan: Optional[object] = None


@cost_contract(work="O(n log n)", depth="O(log^2 n)")
def decide_disconnected(
    graph: Graph,
    embedding: PlanarEmbedding,
    pattern: Pattern,
    seed: int,
    engine: Optional[str] = None,
    colorings: Optional[int] = None,
    rounds_per_component: Optional[int] = 4,
    want_witness: bool = False,
    backend=None,
    plan=None,
) -> DisconnectedSIResult:
    """Decide (w.h.p.) occurrence of an arbitrary pattern (Lemma 4.1).

    ``colorings`` defaults to ``ceil(l^k * log2 n)`` — the lemma's bound;
    pass a smaller number to trade confidence for work (the E7 benchmark
    sweeps this).  ``rounds_per_component`` bounds the connected driver's
    rounds inside each coloring (a small constant suffices because failures
    are retried by the outer coloring loop).  ``backend`` is resolved once
    here and shared by every inner connected-driver call (one pool for the
    whole coloring loop; see :mod:`repro.exec`).
    """
    from ..engine.artifacts import ColdArtifacts
    from ..engine.planner import apply_plan

    components = pattern.component_patterns()
    l = len(components)
    k = pattern.k
    if l == 1:
        inner = decide_subgraph_isomorphism(
            graph, embedding, pattern, seed,
            engine=engine, want_witness=want_witness, backend=backend,
            plan=plan,
        )
        return DisconnectedSIResult(
            found=inner.found,
            witness=inner.witness,
            colorings_used=1,
            cost=inner.cost,
            plan=inner.plan,
        )
    # Plan against the largest component (the dominant inner search);
    # the resolved engine/backend then apply to every component solve.
    rep = max((c for c, _ids in components), key=lambda c: c.k)
    plan_obj, engine, _kernel, backend = apply_plan(
        plan, ColdArtifacts(graph, embedding), rep, "decide", seed,
        rounds_per_component, engine, None, backend,
    )
    if colorings is None:
        colorings = max(
            1, math.ceil(l**k * math.log2(max(graph.n, 2)))
        )
    tracker = Tracker()
    rng = np.random.default_rng(seed)
    with backend_scope(backend) as executor:
        for attempt in range(colorings):
            colors = rng.integers(0, l, size=graph.n)
            tracker.charge(Cost.step(max(graph.n, 1)))
            witness: Dict[int, int] = {}
            all_found = True
            with tracker.parallel() as region:
                component_cells = ShadowArray("component-results", l)
                for color, (component, original_ids) in enumerate(
                    components
                ):
                    vertices = np.flatnonzero(colors == color)
                    if vertices.size < component.k:
                        all_found = False
                        break
                    sub_emb, originals = embedding.induced_subembedding(
                        vertices
                    )
                    with region.branch() as branch:
                        branch.record_writes(component_cells, color)
                        inner = decide_subgraph_isomorphism(
                            sub_emb.to_graph(),
                            sub_emb,
                            component,
                            seed=seed + 7919 * attempt + color,
                            engine=engine,
                            rounds=rounds_per_component,
                            want_witness=want_witness,
                            backend=executor,
                        )
                        branch.charge(inner.cost)
                    if not inner.found:
                        all_found = False
                        break
                    if want_witness and inner.witness is not None:
                        for p_local, target_local in inner.witness.items():
                            witness[int(original_ids[p_local])] = int(
                                originals[target_local]
                            )
            if all_found:
                if plan_obj is not None:
                    plan_obj.record_actual(tracker.cost)
                return DisconnectedSIResult(
                    found=True,
                    witness=witness if want_witness else None,
                    colorings_used=attempt + 1,
                    cost=tracker.cost,
                    plan=plan_obj,
                )
    if plan_obj is not None:
        plan_obj.record_actual(tracker.cost)
    return DisconnectedSIResult(
        found=False,
        witness=None,
        colorings_used=colorings,
        cost=tracker.cost,
        plan=plan_obj,
    )
