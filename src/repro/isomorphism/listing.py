"""Listing all occurrences (Section 4.2, Theorem 4.2).

Repeatedly run the cover + DP round, recover *every* witness of every cover
piece (Section 4.2.1 — the recovery walker over the valid-state tables),
dedup by hashing, and stop once ``log2(j) + Theta(log n)`` consecutive
iterations produced nothing new after ``j`` total iterations (Observation 2:
a run of that many heads is unlikely while occurrences remain unfound, since
each missing occurrence is found with probability >= 1/2 per iteration).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Set, Tuple

from ..engine.artifacts import ColdArtifacts
from ..exec.backends import backend_scope
from ..exec.dispatch import PieceDispatch, collect_into
from ..exec.task import make_piece_task
from ..graphs.csr import Graph
from ..planar.embedding import PlanarEmbedding
from ..pram import Cost, ShadowArray, Span, Tracer
from .packed import overflow_warning_scope
from .pattern import Pattern
from .parallel_dp import parallel_dp
from .recovery import iter_witnesses
from .sequential_dp import sequential_dp
from .state_space import SubgraphStateSpace

from ..analysis.contracts import cost_contract

__all__ = ["ListingResult", "list_occurrences", "count_occurrences"]

Witness = Tuple[Tuple[int, int], ...]


@dataclass
class ListingResult:
    """All occurrences found, with the stopping-rule trace.

    ``witnesses`` holds every subgraph isomorphism as a sorted tuple of
    (pattern vertex, target vertex) pairs; ``occurrences`` dedups witnesses
    by their target-vertex image (automorphic copies collapse).
    """

    witnesses: Set[Witness]
    iterations: int
    cost: Cost
    trace: Optional[Span] = None
    amortized: bool = False
    cold_equivalent_cost: Optional[Cost] = None
    plan: Optional[object] = None

    @property
    def occurrences(self) -> Set[frozenset]:
        return {frozenset(v for _, v in w) for w in self.witnesses}


@cost_contract(work="O(c_k n log n + c_k p + occ)", depth="O(log^2 n + c_k p)")
def list_occurrences(
    graph: Graph,
    embedding: PlanarEmbedding,
    pattern: Pattern,
    seed: int,
    engine: Optional[str] = None,
    confidence_log_factor: float = 1.0,
    max_iterations: Optional[int] = None,
    artifacts=None,
    backend=None,
    plan=None,
) -> ListingResult:
    """List (w.h.p.) every occurrence of a connected pattern (Theorem 4.2).

    ``artifacts`` optionally supplies a provider/session for the covers and
    nice decompositions; ``backend`` how the per-piece solves execute, and
    ``plan`` an optional query plan (``"auto"`` or a ``QueryPlan``) whose
    engine/backend choices apply where not explicitly overridden
    (see :func:`decide_subgraph_isomorphism` for all three).
    """
    from ..engine.planner import apply_plan

    if not pattern.is_connected():
        raise ValueError("listing requires a connected pattern")
    provider = (
        artifacts if artifacts is not None else ColdArtifacts(graph, embedding)
    )
    plan_obj, engine, _kernel, backend = apply_plan(
        plan, provider, pattern, "list", seed, None, engine, None, backend,
    )
    mark = provider.amortization_mark()
    k, d = pattern.k, pattern.diameter()
    tracker = Tracer("list-occurrences")
    tracker.count(n=graph.n, k=k, d=d)
    found: Set[Witness] = set()
    dry_streak = 0
    iterations = 0
    log_n = math.log2(max(graph.n, 2))
    with backend_scope(backend) as executor:
        while True:
            iterations += 1
            with overflow_warning_scope(provider.overflow_warned), \
                    tracker.span("round"):
                cover = provider.cover(k, d, seed + iterations, tracker)
                new_here = 0
                with tracker.parallel("pieces") as region:
                    results = ShadowArray(
                        "piece-witnesses", len(cover.pieces)
                    )
                    if executor.serial:
                        for piece_idx, piece in enumerate(cover.pieces):
                            if piece.graph.n < k:
                                continue
                            with region.branch("dp-solve") as branch:
                                branch.record_writes(results, piece_idx)
                                for w in _piece_witnesses(
                                    piece, pattern, engine, branch, provider
                                ):
                                    if w not in found:
                                        found.add(w)
                                        new_here += 1
                    else:
                        executor.check_sanitizer()
                        dispatches = []
                        for piece_idx, piece in enumerate(cover.pieces):
                            if piece.graph.n < k:
                                continue
                            region.record_writes(
                                results, piece_idx, arm=f"piece-{piece_idx}"
                            )
                            branch = Tracer("dp-solve")
                            disp = PieceDispatch(piece=piece, tracer=branch)
                            nice = None
                            if provider.caching:
                                nice = provider.nice(
                                    piece.decomposition, branch
                                )
                            disp.handle = executor.submit(
                                make_piece_task(
                                    piece, pattern, "witnesses",
                                    "subgraph", engine, "packed",
                                    nice=nice, include_originals=True,
                                )
                            )
                            dispatches.append(disp)
                        for disp in dispatches:
                            result = collect_into(disp, provider, executor)
                            region.attach(disp.tracer.root)
                            for w in result.witnesses:
                                if w not in found:
                                    found.add(w)
                                    new_here += 1
                # Dedup cost: hashing all newly produced witnesses.
                tracker.charge(Cost.step(max(k, 1)), label="dedup")
            if new_here:
                dry_streak = 0
            else:
                dry_streak += 1
            threshold = (
                math.log2(iterations + 1) + confidence_log_factor * log_n
            )
            if dry_streak >= threshold:
                break
            if max_iterations is not None and iterations >= max_iterations:
                break
    tracker.count(iterations=iterations, witnesses=len(found))
    hits, saved = provider.amortization_since(mark)
    if plan_obj is not None:
        plan_obj.record_actual(tracker.cost)
    return ListingResult(
        witnesses=found,
        iterations=iterations,
        cost=tracker.cost,
        trace=tracker.root,
        amortized=hits > 0,
        cold_equivalent_cost=tracker.cost + saved,
        plan=plan_obj,
    )


@cost_contract(work="O(c_k n log n + c_k p + occ)", depth="O(log^2 n + c_k p)")
def _piece_witnesses(piece, pattern, engine, tracker: Tracer, provider):
    nice = provider.nice(piece.decomposition, tracker)
    space = SubgraphStateSpace(pattern, piece.graph)
    if engine == "parallel":
        result = parallel_dp(space, nice, tracer=tracker)
    else:
        result = sequential_dp(space, nice, tracer=tracker)
    if not result.found:
        return
    count = 0
    for w in iter_witnesses(space, nice, result.valid):
        count += 1
        yield tuple(
            sorted((p, int(piece.originals[v])) for p, v in w.items())
        )
    tracker.charge(
        Cost.step(max(count * pattern.k, 1)), label="recover",
        witnesses=count,
    )


def count_occurrences(
    graph: Graph,
    embedding: PlanarEmbedding,
    pattern: Pattern,
    seed: int,
    engine: Optional[str] = None,
    distinct_images: bool = False,
    artifacts=None,
    backend=None,
    plan=None,
) -> int:
    """Count occurrences via listing (the paper's conclusion notes this is
    the non-work-efficient route; exact nonetheless w.h.p.)."""
    result = list_occurrences(
        graph, embedding, pattern, seed, engine=engine, artifacts=artifacts,
        backend=backend, plan=plan,
    )
    if distinct_images:
        return len(result.occurrences)
    return len(result.witnesses)
