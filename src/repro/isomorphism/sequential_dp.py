"""Sequential bottom-up DP over a nice tree decomposition (Section 3.2).

This is the library's rendition of Eppstein's sequential algorithm: traverse
the decomposition tree bottom-up, maintaining the valid partial matches of
every node.  It serves three roles:

* the work-comparison baseline for the parallel engine (Table 1, row
  "Eppstein": Theta(k n) depth because the traversal is sequential in the
  tree height);
* the reference implementation the parallel engine is property-tested
  against (identical valid-state sets at every node);
* the multiplicity-carrying variant counts subgraph isomorphisms exactly.

The engine is generic over the state space (plain or separating — Section
5.2), which only has to provide the transition protocol described in
``repro.isomorphism.state_space``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..pram import Cost, Tracer
from ..treedecomp.nice import FORGET, INTRODUCE, JOIN, LEAF, NiceDecomposition
from .packed import PackedValidTables, dedup_accumulate, packed_ops_for

from ..analysis.contracts import cost_contract

__all__ = ["DPResult", "sequential_dp"]


@dataclass
class DPResult:
    """Valid partial matches of every nice-decomposition node.

    ``valid[i]`` maps each valid state of node ``i`` to its multiplicity
    (the number of distinct partial assignments below ``i`` inducing it).
    ``accepting_count`` sums the multiplicities of accepting root states —
    for the plain state space that is exactly the number of subgraph
    isomorphisms H -> G covered by this decomposition.
    """

    valid: List[Dict[tuple, int]]
    root: int
    accepting_count: int
    found: bool
    cost: Cost


@cost_contract(work="O(c_k p)", depth="O(c_k p)")
def sequential_dp(
    space,
    nice: NiceDecomposition,
    tracer: Optional[Tracer] = None,
    label: str = "sequential-dp",
    engine: str = "packed",
) -> DPResult:
    """Run the bottom-up DP; see :class:`DPResult`.

    Work is the number of state transitions examined; depth charges the
    heaviest root-to-leaf chain (the algorithm is sequential along the
    tree, the paper's Theta(k n) depth bottleneck that Section 3.3 removes).
    When a ``tracer`` is given the cost is charged to it as a labeled leaf.

    ``engine`` selects the table representation: ``"packed"`` (default)
    runs the vectorized int64 kernels of ``repro.isomorphism.packed``,
    ``"reference"`` the tuple-dict transitions.  Both produce identical
    valid tables, accepting counts and charged costs; packed silently
    falls back to reference when the space has no kernels or a bag does
    not fit int64 codes.
    """
    if engine not in ("packed", "reference"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "packed":
        ops = packed_ops_for(space, nice, tracer=tracer)
        if ops is not None:
            return _sequential_dp_packed(space, nice, ops, tracer, label)
    order = nice.topological_order()
    kids = nice.children()
    valid: List[Dict[tuple, int]] = [dict() for _ in range(nice.num_nodes)]
    node_work = np.zeros(nice.num_nodes, dtype=np.int64)

    for i in reversed(order):
        kind = nice.kinds[i]
        cs = kids[i]
        table: Dict[tuple, int] = {}
        if kind == LEAF:
            table[space.leaf_state()] = 1
            node_work[i] = 1
        elif kind == INTRODUCE:
            v = int(nice.vertex[i])
            work = 0
            for s, mult in valid[cs[0]].items():
                for t in space.introduce(v, s):
                    work += 1
                    table[t] = table.get(t, 0) + mult
            node_work[i] = max(work, 1)
        elif kind == FORGET:
            v = int(nice.vertex[i])
            work = 0
            for s, mult in valid[cs[0]].items():
                work += 1
                t = space.forget(v, s)
                if t is not None:
                    table[t] = table.get(t, 0) + mult
            node_work[i] = max(work, 1)
        elif kind == JOIN:
            left, right = cs
            work = 0
            buckets: Dict[tuple, List[tuple]] = {}
            for sr in valid[right]:
                buckets.setdefault(space.join_key(sr), []).append(sr)
            for sl, ml in valid[left].items():
                for sr in buckets.get(space.join_key(sl), ()):
                    work += 1
                    t = space.join(sl, sr)
                    if t is not None:
                        mr = valid[right][sr]
                        table[t] = table.get(t, 0) + ml * mr
            node_work[i] = max(work, 1)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown node kind {kind!r}")
        valid[i] = table

    # Depth: heaviest root-to-leaf accumulation of per-node work.
    depth = np.zeros(nice.num_nodes, dtype=np.int64)
    for i in reversed(order):
        cs = kids[i]
        depth[i] = node_work[i] + max(
            (int(depth[c]) for c in cs), default=0
        )
    total_work = int(node_work.sum())
    cost = Cost(total_work, min(int(depth[nice.root]), total_work))

    if tracer is not None:
        tracer.charge(
            cost, label=label, nodes=nice.num_nodes, transitions=total_work
        )

    accepting = sum(
        mult
        for s, mult in valid[nice.root].items()
        if space.is_accepting(s)
    )
    return DPResult(
        valid=valid,
        root=nice.root,
        accepting_count=int(accepting),
        found=accepting > 0,
        cost=cost,
    )


@cost_contract(work="O(c_k p)", depth="O(c_k p)")
def _sequential_dp_packed(
    space,
    nice: NiceDecomposition,
    ops,
    tracer: Optional[Tracer],
    label: str,
) -> DPResult:
    """The same DP over sorted ``(codes, mults)`` tables.

    Candidate multisets (hence work, depth and the charged cost) match the
    reference loop transition-for-transition; only the host execution is
    batched.
    """
    order = nice.topological_order()
    kids = nice.children()
    n_nodes = nice.num_nodes
    codes_per: List[Optional[np.ndarray]] = [None] * n_nodes
    mults_per: List[Optional[np.ndarray]] = [None] * n_nodes
    node_work = np.zeros(n_nodes, dtype=np.int64)

    for i in reversed(order):
        kind = nice.kinds[i]
        cs = kids[i]
        if kind == LEAF:
            codes = ops.leaf_codes()
            mults = np.ones(1, dtype=np.int64)
            work = 1
        elif kind == INTRODUCE:
            c = cs[0]
            v = int(nice.vertex[i])
            src, out, _ = ops.introduce(
                ops.ctx(nice.bags[c]), ops.ctx(nice.bags[i]), v, codes_per[c]
            )
            work = int(src.size)
            codes, mults = dedup_accumulate(out, mults_per[c][src])
        elif kind == FORGET:
            c = cs[0]
            v = int(nice.vertex[i])
            src, out, _ = ops.forget(
                ops.ctx(nice.bags[c]), ops.ctx(nice.bags[i]), v, codes_per[c]
            )
            work = int(codes_per[c].size)
            codes, mults = dedup_accumulate(out, mults_per[c][src])
        elif kind == JOIN:
            left, right = cs
            li, ri, out, ok = ops.join(
                ops.ctx(nice.bags[i]), codes_per[left], codes_per[right]
            )
            work = int(li.size)
            codes, mults = dedup_accumulate(
                out[ok], mults_per[left][li[ok]] * mults_per[right][ri[ok]]
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown node kind {kind!r}")
        codes_per[i] = codes
        mults_per[i] = mults
        node_work[i] = max(work, 1)

    depth = np.zeros(n_nodes, dtype=np.int64)
    for i in reversed(order):
        cs = kids[i]
        depth[i] = node_work[i] + max(
            (int(depth[c]) for c in cs), default=0
        )
    total_work = int(node_work.sum())
    cost = Cost(total_work, min(int(depth[nice.root]), total_work))

    if tracer is not None:
        tracer.charge(
            cost, label=label, nodes=n_nodes, transitions=total_work
        )

    root_codes = codes_per[nice.root]
    acc = ops.accepting_mask(ops.ctx(nice.bags[nice.root]), root_codes)
    accepting = int(mults_per[nice.root][acc].sum()) if root_codes.size else 0
    return DPResult(
        valid=PackedValidTables(ops, nice.bags, codes_per, mults_per),
        root=nice.root,
        accepting_count=accepting,
        found=accepting > 0,
        cost=cost,
    )
