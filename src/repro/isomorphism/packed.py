"""Packed-state NumPy kernels for the DP table engines.

Every table engine in the reproduction (Eppstein-style ``sequential_dp``,
the Section 3.3 path/DAG/shortcut engine, and the Section 5.2 separating
variant) manipulates DP tables whose states are the paper's ``(phi, C, U)``
triples.  The reference implementation stores them as ``dict[tuple, int]``
and pays the ``(tau + 3)^k`` state explosion in Python interpreter overhead
on top of the charged work.  The paper's cost model already observes that
transitions are *data-parallel over states* — so this module executes them
as batched array kernels instead:

**Codec.**  A state of a decomposition node with bag ``X`` (sorted) is a
single ``int64`` code in base ``b = |X| + 2``: pattern vertex ``p``
contributes digit ``0`` (unmatched, the set U), ``1`` (matched in a child,
the set C) or ``2 + j`` (mapped onto the ``j``-th bag vertex), weighted by
``b^p``.  Encoding is bag-relative — every mapped target of a valid state
lies in the bag, so the codec is total on DP tables — and strictly monotone
with respect to the colexicographic order of the digit vectors, which makes
sorted code arrays canonical.

**Tables.**  A DP table is a pair ``(codes, mults)`` of equally long int64
arrays with ``codes`` sorted and unique.  Duplicate accumulation is
sort + ``np.add.reduceat``; join compatibility is ``join_key`` bucketing by
``np.searchsorted``; membership filters are ``np.searchsorted`` probes.

**Engine invariance.**  The kernels generate exactly the same candidate
multisets as the tuple-dict reference transitions, so the charged
``Cost``/trace totals are *identical* between ``engine="packed"`` and
``engine="reference"`` — only host wall-clock changes.  The extended
separating space packs its side sets and boolean history into the high bits
above the base code (see ``repro.separating.packed``).

``PackedValidTables`` re-exposes packed per-node tables through the
list-of-``dict[tuple, int]`` facade the recovery walker and the tests
consume, decoding lazily per visited node.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.contracts import cost_contract

__all__ = [
    "dedup_accumulate",
    "member_positions",
    "match_key_pairs",
    "overflow_warning_scope",
    "packed_ops_for",
    "table_from_buffers",
    "table_to_buffers",
    "PackedOverflowWarning",
    "PackedSubgraphOps",
    "PackedValidTables",
]

NIL = -1

_EMPTY = np.zeros(0, dtype=np.int64)


def table_to_buffers(
    codes: np.ndarray, mults: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Stable buffer form of one packed ``(codes, mults)`` table.

    Validates the canonical-table invariants (int64 dtypes, equal lengths,
    ``codes`` strictly increasing) so a table cannot cross a pickle or
    shared-memory boundary in a corrupted form; returns contiguous int64
    arrays suitable for raw-byte transport.  Empty tables round-trip to
    two zero-length buffers.  Inverse: :func:`table_from_buffers`.
    """
    codes = np.ascontiguousarray(codes, dtype=np.int64)
    mults = np.ascontiguousarray(mults, dtype=np.int64)
    if codes.ndim != 1 or mults.ndim != 1 or codes.shape != mults.shape:
        raise ValueError("a packed table is two equally long 1-d arrays")
    if codes.size > 1 and not bool(np.all(codes[1:] > codes[:-1])):
        raise ValueError("packed table codes must be strictly increasing")
    return codes, mults


def table_from_buffers(
    codes: np.ndarray, mults: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Rebuild a packed table from transported buffers (any buffer-like
    int64 source, e.g. a shared-memory view); re-validates the canonical
    invariants.  Inverse of :func:`table_to_buffers`."""
    return table_to_buffers(
        np.frombuffer(codes, dtype=np.int64)
        if not isinstance(codes, np.ndarray)
        else codes,
        np.frombuffer(mults, dtype=np.int64)
        if not isinstance(mults, np.ndarray)
        else mults,
    )


# ---------------------------------------------------------------------------
# shared table helpers
# ---------------------------------------------------------------------------


def dedup_accumulate(
    codes: np.ndarray, mults: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse duplicate codes, summing multiplicities.

    Returns ``(unique_sorted_codes, summed_mults)`` — the canonical packed
    table form (sort + ``np.add.reduceat``).
    """
    if codes.size == 0:
        return _EMPTY, _EMPTY
    order = np.argsort(codes, kind="stable")
    codes = codes[order]
    mults = mults[order]
    boundaries = np.flatnonzero(
        np.concatenate([[True], codes[1:] != codes[:-1]])
    )
    return codes[boundaries], np.add.reduceat(mults, boundaries)


def member_positions(
    sorted_codes: np.ndarray, queries: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Locate ``queries`` inside a sorted unique code array.

    Returns ``(pos, found)``: ``pos[i]`` is the index of ``queries[i]`` in
    ``sorted_codes`` (valid only where ``found[i]``).
    """
    if sorted_codes.size == 0:
        z = np.zeros(queries.shape, dtype=np.int64)
        return z, np.zeros(queries.shape, dtype=bool)
    pos = np.searchsorted(sorted_codes, queries)
    clipped = np.minimum(pos, sorted_codes.size - 1)
    found = sorted_codes[clipped] == queries
    return clipped, found


def expand_buckets(
    lo: np.ndarray, hi: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand per-query bucket ranges ``[lo, hi)`` into flat pair indices.

    Returns ``(query_idx, bucket_offset)`` such that iterating the pairs
    enumerates every (query, bucket member) combination.
    """
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    qi = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    resets = np.repeat(np.cumsum(counts) - counts, counts)
    offsets = np.arange(total, dtype=np.int64) - resets
    return qi, starts + offsets


def match_key_pairs(
    kl: np.ndarray, kr: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """All index pairs ``(li, ri)`` with ``kl[li] == kr[ri]``.

    The join-compatibility bucketing: sort the right keys once, then locate
    each left key's bucket with two ``np.searchsorted`` probes and expand.
    """
    order = np.argsort(kr, kind="stable")
    krs = kr[order]
    lo = np.searchsorted(krs, kl, side="left")
    hi = np.searchsorted(krs, kl, side="right")
    li, bucket = expand_buckets(lo, hi)
    ri = order[bucket] if bucket.size else bucket
    return li, ri


# ---------------------------------------------------------------------------
# the plain (phi, C, U) space
# ---------------------------------------------------------------------------


class _BagCtx:
    """Per-bag packing context: base, digit weights and bag-local lookups."""

    __slots__ = (
        "bag",
        "size",
        "base",
        "pows",
        "bag_adj",
        "host_positions",
        "class_ok",
        "local_digits",
        "local_codes",
        "skel_luts",
    )

    def __init__(self, bag: np.ndarray, k: int) -> None:
        self.bag = bag
        self.size = int(bag.size)
        self.base = self.size + 2
        pows = np.empty(k, dtype=np.int64)
        acc = 1
        for p in range(k):
            pows[p] = acc
            acc *= self.base
        self.pows = pows
        self.bag_adj: Optional[np.ndarray] = None
        self.host_positions: Optional[List[int]] = None
        self.class_ok: Optional[np.ndarray] = None
        self.local_digits: Optional[np.ndarray] = None
        self.local_codes: Optional[np.ndarray] = None
        self.skel_luts: Optional[List[np.ndarray]] = None


class PackedSubgraphOps:
    """Vectorized kernels for :class:`SubgraphStateSpace` tables."""

    def __init__(self, space) -> None:
        self.space = space
        self.k = space.k
        self.graph = space.graph
        self.pattern = space.pattern
        self.nbr = [
            space.pattern.neighbor_array(p) for p in range(self.k)
        ]
        self.hedges = space.pattern.edge_list()
        self._ctxs: dict = {}

    # -- feasibility -------------------------------------------------------

    def code_bits(self, bag_size: int) -> int:
        """Bits needed for codes of a bag of the given size."""
        return ((bag_size + 2) ** self.k - 1).bit_length()

    def fits(self, nice) -> bool:
        """Do all of ``nice``'s bags pack into int64 codes?"""
        max_bag = max((int(b.size) for b in nice.bags), default=0)
        return self.code_bits(max_bag) <= 62

    # -- contexts ----------------------------------------------------------

    def ctx(self, bag) -> _BagCtx:
        bag = np.asarray(bag, dtype=np.int64)
        key = bag.tobytes()
        ctx = self._ctxs.get(key)
        if ctx is None:
            ctx = _BagCtx(bag, self.k)
            self._ctxs[key] = ctx
        return ctx

    def _bag_adj(self, ctx: _BagCtx) -> np.ndarray:
        if ctx.bag_adj is None:
            if ctx.size:
                ctx.bag_adj = self.graph.has_edges(
                    ctx.bag[:, None], ctx.bag[None, :]
                )
            else:
                ctx.bag_adj = np.zeros((0, 0), dtype=bool)
        return ctx.bag_adj

    def _host_positions(self, ctx: _BagCtx) -> List[int]:
        if ctx.host_positions is None:
            space = self.space
            ctx.host_positions = [
                j
                for j in range(ctx.size)
                if space._can_host(int(ctx.bag[j]))
            ]
        return ctx.host_positions

    def _class_ok(self, ctx: _BagCtx) -> np.ndarray:
        if ctx.class_ok is None:
            space = self.space
            ok = np.ones((self.k, ctx.size), dtype=bool)
            if space.pattern_classes is not None and ctx.size:
                host = space.host_classes[ctx.bag]
                for p in range(self.k):
                    want = space.pattern_classes[p]
                    if want is not None:
                        ok[p] = host == want
            ctx.class_ok = ok
        return ctx.class_ok

    # -- codec -------------------------------------------------------------

    def digits(self, ctx: _BagCtx, codes: np.ndarray) -> np.ndarray:
        """Unpack codes into an ``(N, k)`` digit matrix."""
        out = np.empty((codes.size, self.k), dtype=np.int64)
        rest = codes.copy()
        for p in range(self.k):
            out[:, p] = rest % ctx.base
            rest //= ctx.base
        return out

    def codes_from_digits(self, ctx: _BagCtx, digits: np.ndarray) -> np.ndarray:
        return digits @ ctx.pows

    def encode(self, ctx: _BagCtx, states: Sequence[tuple]) -> np.ndarray:
        """Encode tuple states (same order) to codes."""
        if not len(states):
            return _EMPTY
        arr = np.asarray(list(states), dtype=np.int64).reshape(-1, self.k)
        mapped = 2 + np.searchsorted(ctx.bag, np.maximum(arr, 0))
        digits = np.where(arr == -1, 0, np.where(arr == -2, 1, mapped))
        return self.codes_from_digits(ctx, digits)

    def decode(self, ctx: _BagCtx, codes: np.ndarray) -> List[tuple]:
        """Decode codes back to tuple states (same order)."""
        if codes.size == 0:
            return []
        lut = np.concatenate(
            [np.asarray([-1, -2], dtype=np.int64), ctx.bag]
        )
        vals = lut[self.digits(ctx, codes)]
        return [tuple(row) for row in vals.tolist()]

    def cmask(self, digits: np.ndarray) -> np.ndarray:
        """Bitmask (over pattern vertices) of the IN_CHILD positions."""
        weights = np.int64(1) << np.arange(self.k, dtype=np.int64)
        return (digits == 1) @ weights

    def occupied_bits(self, ctx: _BagCtx, codes: np.ndarray) -> np.ndarray:
        """Bitmask (over bag positions) of the phi-occupied bag vertices."""
        digits = self.digits(ctx, codes)
        occ = np.zeros(codes.size, dtype=np.int64)
        one = np.int64(1)
        for p in range(self.k):
            d = digits[:, p]
            occ |= np.where(d >= 2, one << np.maximum(d - 2, 0), 0)
        return occ

    # -- basic states ------------------------------------------------------

    def leaf_codes(self) -> np.ndarray:
        """The single all-unmatched state of an empty-bag leaf."""
        return np.zeros(1, dtype=np.int64)

    def accepting_mask(self, ctx: _BagCtx, codes: np.ndarray) -> np.ndarray:
        """All pattern vertices matched in a child (root acceptance)."""
        return codes == int(ctx.pows.sum())

    def trivial_source_mask(
        self, ctx: _BagCtx, codes: np.ndarray
    ) -> np.ndarray:
        """States with empty C are unconditionally valid (Section 3.3.2)."""
        return self.cmask(self.digits(ctx, codes)) == 0

    def admissible_mask(
        self,
        ctx: _BagCtx,
        codes: np.ndarray,
        forgotten_count: int,
        marked_forgotten: bool,
    ) -> np.ndarray:
        """Vectorized ``admissible_at``: |C| bounded by forget steps below."""
        digits = self.digits(ctx, codes)
        return (digits == 1).sum(axis=1) <= forgotten_count

    # -- transitions -------------------------------------------------------

    def introduce(
        self, cctx: _BagCtx, pctx: _BagCtx, v: int, codes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All parent candidates when ``v`` joins the bag.

        Returns ``(src, out, lift)``: candidate ``i`` extends child state
        ``src[i]`` into parent code ``out[i]`` (the multiset matches the
        reference ``space.introduce`` yields exactly); ``lift[n]`` is child
        state ``n``'s canonical no-new-match lift (here: itself, re-encoded
        relative to the parent bag).
        """
        n = codes.size
        jv = int(np.searchsorted(pctx.bag, v))
        digits = self.digits(cctx, codes)
        remap = np.empty(cctx.base, dtype=np.int64)
        remap[0] = 0
        remap[1] = 1
        if cctx.size:
            j = np.arange(cctx.size, dtype=np.int64)
            remap[2:] = 2 + j + (j >= jv)
        pdigits = remap[digits]
        rem_codes = self.codes_from_digits(pctx, pdigits)
        src_parts = [np.arange(n, dtype=np.int64)]
        out_parts = [rem_codes]
        if self.space._can_host(v) and n:
            adj_v = self._bag_adj(pctx)[jv]
            # okq[d]: pattern neighbor q with parent digit d blocks the new
            # match iff q is in C (d == 1) or mapped to a non-neighbor of v.
            okq = np.concatenate([[True, False], adj_v])
            vdigit = np.int64(2 + jv)
            for p in range(self.k):
                if not self.space._class_ok(p, v):
                    continue
                mask = pdigits[:, p] == 0
                for q in self.nbr[p]:
                    if not mask.any():
                        break
                    mask &= okq[pdigits[:, q]]
                idx = np.flatnonzero(mask)
                if idx.size:
                    src_parts.append(idx)
                    out_parts.append(rem_codes[idx] + vdigit * pctx.pows[p])
        return (
            np.concatenate(src_parts),
            np.concatenate(out_parts),
            rem_codes,
        )

    def forget(
        self, cctx: _BagCtx, pctx: _BagCtx, v: int, codes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The unique parent candidate (if any) when ``v`` leaves the bag.

        Returns ``(src, out, lift)``: kept child indices, their parent
        codes, and a per-child lift array (``-1`` where the state dies).
        """
        n = codes.size
        jv = int(np.searchsorted(cctx.bag, v))
        dv = 2 + jv
        digits = self.digits(cctx, codes)
        remap = np.empty(cctx.base, dtype=np.int64)
        remap[0] = 0
        remap[1] = 1
        if cctx.size:
            j = np.arange(cctx.size, dtype=np.int64)
            remap[2:] = 2 + j - (j > jv)
        remap[dv] = 1  # the forgotten vertex's pattern vertex moves to C
        pdigits = remap[digits]
        keep = np.ones(n, dtype=bool)
        for p in range(self.k):
            mp = digits[:, p] == dv
            if not mp.any():
                continue
            ok = mp.copy()
            for q in self.nbr[p]:
                ok &= digits[:, q] != 0
            keep &= ~mp | ok
        src = np.flatnonzero(keep)
        out = self.codes_from_digits(pctx, pdigits[src])
        lift = np.full(n, NIL, dtype=np.int64)
        lift[src] = out
        return src, out, lift

    def join_keys(self, ctx: _BagCtx, codes: np.ndarray) -> np.ndarray:
        """Bucketing key: the mapped part of phi (C folded into U)."""
        digits = self.digits(ctx, codes)
        keymap = np.arange(ctx.base, dtype=np.int64)
        keymap[1] = 0
        return self.codes_from_digits(ctx, keymap[digits])

    def join(
        self, ctx: _BagCtx, lcodes: np.ndarray, rcodes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """All key-compatible (left, right) pairs and their join results.

        Returns ``(li, ri, out, valid)`` over every pair whose join keys
        agree (the pairs the reference engine *examines*); ``valid`` marks
        pairs with disjoint C sets (the pairs that actually join), and
        ``out`` is the joined code (meaningful where ``valid``).
        """
        kl = self.join_keys(ctx, lcodes)
        kr = self.join_keys(ctx, rcodes)
        li, ri = match_key_pairs(kl, kr)
        if li.size == 0:
            return li, ri, _EMPTY, np.zeros(0, dtype=bool)
        ccl = lcodes - kl  # the C contribution: digit 1 at C positions
        ccr = rcodes - kr
        cml = self.cmask(self.digits(ctx, lcodes))
        cmr = self.cmask(self.digits(ctx, rcodes))
        valid = (cml[li] & cmr[ri]) == 0
        out = kl[li] + ccl[li] + ccr[ri]
        return li, ri, out, valid

    def join_lift(self, ctx: _BagCtx, codes: np.ndarray) -> np.ndarray:
        """Canonical lift through a join: combine with the empty-C twin."""
        return codes

    # -- local enumeration (Section 3.3.2) ----------------------------------

    def _skel_luts(self, ctx: _BagCtx) -> List[np.ndarray]:
        if ctx.skel_luts is None:
            adj = self._bag_adj(ctx)
            ctx.skel_luts = [
                np.concatenate([[True, True], adj[j]])
                for j in range(ctx.size)
            ]
        return ctx.skel_luts

    def local_digit_matrix(self, ctx: _BagCtx) -> np.ndarray:
        """Digit matrix of every locally plausible state of the bag.

        Incremental column-wise expansion with vectorized pruning — the
        same state set (and the same ``(tau + 3)^k`` bound) as the
        reference recursive enumeration, without per-state Python frames.
        """
        if ctx.local_digits is not None:
            return ctx.local_digits
        k = self.k
        luts = self._skel_luts(ctx)
        class_ok = self._class_ok(ctx)
        host = self._host_positions(ctx)
        digits = np.zeros((1, k), dtype=np.int64)
        occ = np.zeros(1, dtype=np.int64)
        # Mapped skeletons: each pattern vertex either stays off the bag or
        # lands on a free, class-compatible bag vertex consistent with its
        # already-placed pattern neighbors.
        for p in range(k):
            rows = digits.shape[0]
            sel = [np.arange(rows, dtype=np.int64)]
            val = [np.zeros(rows, dtype=np.int64)]
            earlier = [int(q) for q in self.nbr[p] if q < p]
            for j in host:
                if not class_ok[p, j]:
                    continue
                mask = (occ >> j) & 1 == 0
                for q in earlier:
                    if not mask.any():
                        break
                    mask &= luts[j][digits[:, q]]
                idx = np.flatnonzero(mask)
                if idx.size:
                    sel.append(idx)
                    val.append(np.full(idx.size, 2 + j, dtype=np.int64))
            sel_all = np.concatenate(sel)
            val_all = np.concatenate(val)
            digits = digits[sel_all]
            digits[:, p] = val_all
            occ = occ[sel_all] | np.where(
                val_all >= 2,
                np.int64(1) << np.maximum(val_all - 2, 0),
                np.int64(0),
            )
        # U/C refinement: each off-bag pattern vertex independently stays
        # unmatched or moves to C ...
        for p in range(k):
            idx = np.flatnonzero(digits[:, p] == 0)
            if idx.size:
                twin = digits[idx].copy()
                twin[:, p] = 1
                digits = np.concatenate([digits, twin])
        # ... pruning C members adjacent (in H) to a U member — the edge
        # between them could never be realized.
        ok = np.ones(digits.shape[0], dtype=bool)
        for p, q in self.hedges:
            dp = digits[:, p]
            dq = digits[:, q]
            ok &= ~(((dp == 1) & (dq == 0)) | ((dp == 0) & (dq == 1)))
        digits = digits[ok]
        codes = self.codes_from_digits(ctx, digits)
        order = np.argsort(codes, kind="stable")
        ctx.local_digits = digits[order]
        ctx.local_codes = codes[order]
        return ctx.local_digits

    def local_codes(self, ctx: _BagCtx) -> np.ndarray:
        """Sorted codes of every locally plausible state of the bag."""
        if ctx.local_codes is None:
            self.local_digit_matrix(ctx)
        return ctx.local_codes


# ---------------------------------------------------------------------------
# engine-facing helpers
# ---------------------------------------------------------------------------


class PackedOverflowWarning(RuntimeWarning):
    """The packed int64 codec cannot represent this instance's states;
    the engine silently produced the right answer via the reference
    tuple-dict path, but at reference-engine wall-clock."""


# Active once-per-kind suppression scope for PackedOverflowWarning.  The
# warned-kind set is *owned by the caller* (a driver invocation or a
# TargetSession) and installed for the dynamic extent of one run via
# overflow_warning_scope() — never a module global, so a fallback seen by
# one session can no longer silently mute the warning for every session
# and test that follows in the same process.
_warn_scope: ContextVar[Optional[set]] = ContextVar(
    "packed_overflow_warn_scope", default=None
)


@contextmanager
def overflow_warning_scope(warned: Optional[set] = None) -> Iterator[set]:
    """Deduplicate :class:`PackedOverflowWarning` per kind within a scope.

    ``warned`` is the set of space-type names that already warned; pass a
    session-owned set to deduplicate across the queries of one session, or
    omit it for a fresh per-invocation set (what the one-shot drivers do).
    Scopes nest: the innermost set wins, and leaving the scope always
    restores the previous one.  Outside any scope every overflow fallback
    warns — there is deliberately no process-global memory.
    """
    token = _warn_scope.set(warned if warned is not None else set())
    try:
        yield _warn_scope.get()  # type: ignore[return-value]
    finally:
        _warn_scope.reset(token)


@cost_contract(work="O(c_k)", depth="O(1)")
def packed_ops_for(space, nice, tracer=None):
    """The packed kernel set for ``space`` if it exists and fits ``nice``.

    Returns ``None`` when the space has no packed implementation or the
    codes would overflow int64 — engines then fall back to the reference
    tuple-dict path.  Results and charged costs are identical either way,
    but the *overflow* fallback costs real wall-clock, so it is no longer
    silent: the first occurrence per space type *per scope* (see
    :func:`overflow_warning_scope`; the drivers open one per invocation, a
    :class:`~repro.engine.session.TargetSession` one per session) raises a
    :class:`PackedOverflowWarning`, and every occurrence bumps the
    ``packed_overflow_fallbacks`` counter on ``tracer`` (when given) —
    warning dedup never rounds the counter down.
    """
    factory = getattr(space, "packed_ops", None)
    if factory is None:
        return None
    ops = factory()
    if ops.fits(nice):
        return ops
    if tracer is not None:
        tracer.count(packed_overflow_fallbacks=1)
    kind = type(space).__name__
    warned = _warn_scope.get()
    if warned is None or kind not in warned:
        if warned is not None:
            warned.add(kind)
        max_bag = max((int(b.size) for b in nice.bags), default=0)
        warning = PackedOverflowWarning(
            f"packed int64 codes overflow for {kind} "
            f"(k={ops.k}, max bag size {max_bag} needs > 62 bits); "
            "falling back to the reference tuple-dict engine — results and "
            "charged costs are unchanged, wall-clock is not"
        )
        # The space-type name rides on the warning object so execution
        # backends can dedup re-emission parent-side without parsing the
        # message (repro.exec.task).
        warning.kind = kind
        emit = getattr(warned, "emit", None)
        if emit is not None:
            # A collector scope (worker-side task execution): record the
            # event instead of emitting — the parent process re-emits it
            # once per kind per provider.
            emit(warning)
        else:
            warnings.warn(warning, stacklevel=2)
    return None


class PackedValidTables(Sequence):
    """List-of-dict facade over packed per-node tables, decoded lazily.

    Indexing node ``i`` yields the familiar ``dict[state, multiplicity]``
    (multiplicity 1 for reachability engines); the packed codes stay
    available through :meth:`codes_at` for kernel consumers.
    """

    def __init__(
        self,
        ops,
        bags: Sequence[np.ndarray],
        codes: List[Optional[np.ndarray]],
        mults: Optional[List[Optional[np.ndarray]]] = None,
    ) -> None:
        self._ops = ops
        self._bags = bags
        self._codes = codes
        self._mults = mults
        self._cache: dict = {}

    def __len__(self) -> int:
        return len(self._codes)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(i)
        table = self._cache.get(i)
        if table is None:
            codes = self._codes[i]
            if codes is None or codes.size == 0:
                table = {}
            else:
                states = self._ops.decode(
                    self._ops.ctx(self._bags[i]), codes
                )
                if self._mults is None or self._mults[i] is None:
                    table = {s: 1 for s in states}
                else:
                    table = {
                        s: int(m)
                        for s, m in zip(states, self._mults[i])
                    }
            self._cache[i] = table
        return table

    def codes_at(self, i: int) -> Optional[np.ndarray]:
        """The raw sorted code array of node ``i`` (or None)."""
        return self._codes[i]
