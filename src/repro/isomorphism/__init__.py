"""The paper's core: subgraph isomorphism engines, cover, drivers."""

from .pattern import (
    Pattern,
    clique_pattern,
    cycle_pattern,
    diamond,
    path_pattern,
    star_pattern,
    triangle,
)
from .state_space import IN_CHILD, UNMATCHED, SubgraphStateSpace
from .packed import (
    PackedSubgraphOps,
    PackedValidTables,
    dedup_accumulate,
    packed_ops_for,
)
from .sequential_dp import DPResult, sequential_dp
from .parallel_dp import ParallelDPResult, parallel_dp
from .match_dag import PathDAGResult, solve_path
from .recovery import first_witness, iter_witnesses, witness_images
from .cover import CoverPiece, TreewidthCover, treewidth_cover
from .planar_si import (
    PlanarSIResult,
    decide_subgraph_isomorphism,
    find_occurrence,
)
from .disconnected import DisconnectedSIResult, decide_disconnected
from .listing import ListingResult, count_occurrences, list_occurrences
from .local_treewidth import (
    decide_subgraph_isomorphism_general,
    local_treewidth_cover,
)
from .counting import DeterministicCountResult, count_occurrences_exact

__all__ = [
    "Pattern",
    "triangle",
    "path_pattern",
    "cycle_pattern",
    "star_pattern",
    "clique_pattern",
    "diamond",
    "UNMATCHED",
    "IN_CHILD",
    "SubgraphStateSpace",
    "PackedSubgraphOps",
    "PackedValidTables",
    "dedup_accumulate",
    "packed_ops_for",
    "DPResult",
    "sequential_dp",
    "ParallelDPResult",
    "parallel_dp",
    "PathDAGResult",
    "solve_path",
    "first_witness",
    "iter_witnesses",
    "witness_images",
    "CoverPiece",
    "TreewidthCover",
    "treewidth_cover",
    "PlanarSIResult",
    "decide_subgraph_isomorphism",
    "find_occurrence",
    "DisconnectedSIResult",
    "decide_disconnected",
    "ListingResult",
    "list_occurrences",
    "count_occurrences",
    "local_treewidth_cover",
    "decide_subgraph_isomorphism_general",
    "DeterministicCountResult",
    "count_occurrences_exact",
]
