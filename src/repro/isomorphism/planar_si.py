"""Planar subgraph isomorphism drivers (Theorem 2.1, Corollary 2.2).

One *round* = one Parallel Treewidth k-d Cover + one bounded-treewidth
solve per cover piece (all pieces in parallel).  A round finds any fixed
occurrence with probability >= 1/2 (Theorem 2.4), so:

* if the pattern occurs, the expected number of rounds until detection is
  O(1) — work ``k^O(k) n`` in expectation on positive instances;
* ``O(log n)`` rounds certify absence w.h.p. — the Monte Carlo guarantee of
  Theorem 2.1 (the returned decision is one-sided: "found" is always
  correct, "not found" is correct w.h.p.).

The driver is engine-agnostic (parallel engine by default, sequential for
comparison) and returns the full cost trace for the Table-1 benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional


from ..engine.artifacts import ColdArtifacts
from ..exec.backends import backend_scope
from ..exec.dispatch import PieceDispatch, collect_into
from ..exec.task import make_piece_task
from ..graphs.csr import Graph
from ..planar.embedding import PlanarEmbedding
from ..pram import Cost, ShadowArray, Span, Tracer
from .packed import overflow_warning_scope
from .pattern import Pattern
from .parallel_dp import parallel_dp
from .recovery import first_witness
from .sequential_dp import sequential_dp
from .state_space import SubgraphStateSpace

from ..analysis.contracts import cost_contract

__all__ = ["PlanarSIResult", "decide_subgraph_isomorphism", "find_occurrence"]


@dataclass
class PlanarSIResult:
    """Outcome of the Monte Carlo planar subgraph isomorphism driver.

    ``found`` is always correct when True; when False it is correct with
    high probability (Theorem 2.1).  ``witness`` maps pattern vertices to
    target vertices when an occurrence was requested and found.
    """

    found: bool
    witness: Optional[Dict[int, int]]
    rounds_used: int
    cost: Cost
    pieces_examined: int
    max_piece_width: int
    trace: Optional[Span] = None
    amortized: bool = False
    cold_equivalent_cost: Optional[Cost] = None
    plan: Optional[object] = None  # the QueryPlan that drove this query


def _rounds_for(n: int, rounds: Optional[int], confidence_log_factor: float) -> int:
    if rounds is not None:
        if rounds < 1:
            raise ValueError("need at least one round")
        return rounds
    return max(1, math.ceil(confidence_log_factor * math.log2(max(n, 2))))


@cost_contract(work="O(n log n)", depth="O(log^2 n)")
def decide_subgraph_isomorphism(
    graph: Graph,
    embedding: PlanarEmbedding,
    pattern: Pattern,
    seed: int,
    engine: Optional[str] = None,
    rounds: Optional[int] = None,
    confidence_log_factor: float = 2.0,
    want_witness: bool = False,
    kernel: Optional[str] = None,
    artifacts=None,
    backend=None,
    plan=None,
) -> PlanarSIResult:
    """Decide (w.h.p.) whether the connected ``pattern`` occurs in the
    planar ``graph`` (Theorem 2.1 / Corollary 2.2).

    Parameters
    ----------
    engine:
        ``"parallel"`` (Section 3.3) or ``"sequential"`` (Section 3.2).
    rounds:
        Fixed number of cover rounds; default ``ceil(c log2 n)`` rounds
        with ``c = confidence_log_factor`` (absence w.h.p.).
    kernel:
        Table representation of the per-piece DP: ``"packed"`` (vectorized
        int64 kernels, default) or ``"reference"`` (tuple dicts).  Results
        and charged costs are identical; only wall-clock differs.
    artifacts:
        An artifact provider (``repro.engine``) supplying covers and nice
        decompositions — a :class:`~repro.engine.session.TargetSession`
        amortizes them across queries.  Default: build everything fresh
        (the one-shot behavior).  The provider must be bound to the same
        ``(graph, embedding)``.
    backend:
        How the per-piece solves *execute*: ``"serial"`` (default, the
        inline loop), ``"threads"``, ``"processes"``, or an
        :class:`~repro.exec.backends.ExecutionBackend` instance (reused
        across calls; string specs build and tear down one per call).
        Verdict, witness, charged cost and trace are byte-identical
        across backends — only wall-clock changes (``repro.exec``).
    plan:
        ``None``/``"manual"`` (the defaults above apply), ``"auto"``
        (choose the variant by predicted cost — ``repro.engine.planner``)
        or an explicit :class:`~repro.engine.planner.QueryPlan`.
        Explicit ``engine=``/``kernel=``/``backend=`` always override the
        plan.  The executed plan (with its actual charged cost folded into
        the provider's calibrating cost model) is returned on
        ``result.plan``.
    """
    from ..engine.planner import apply_plan

    if not pattern.is_connected():
        raise ValueError(
            "the base driver handles connected patterns; use "
            "repro.isomorphism.disconnected for the general case"
        )
    provider = (
        artifacts if artifacts is not None else ColdArtifacts(graph, embedding)
    )
    plan_obj, engine, kernel, backend = apply_plan(
        plan, provider, pattern,
        "witness" if want_witness else "decide", seed, rounds,
        engine, kernel, backend,
    )
    if engine not in ("parallel", "sequential"):
        raise ValueError(f"unknown engine {engine!r}")
    if kernel not in ("packed", "reference"):
        raise ValueError(f"unknown kernel {kernel!r}")
    mark = provider.amortization_mark()
    k = pattern.k
    d = pattern.diameter()
    tracker = Tracer("decide-si")
    tracker.count(n=graph.n, m=graph.m, k=k, d=d)
    provider.charge_embedding(tracker)
    total_rounds = _rounds_for(graph.n, rounds, confidence_log_factor)
    pieces_examined = 0
    max_width = 0

    def _result(found, witness, rounds_used):
        hits, saved = provider.amortization_since(mark)
        if plan_obj is not None:
            plan_obj.record_actual(tracker.cost)
        return PlanarSIResult(
            found=found,
            witness=witness,
            rounds_used=rounds_used,
            cost=tracker.cost,
            pieces_examined=pieces_examined,
            max_piece_width=max_width,
            trace=tracker.root,
            amortized=hits > 0,
            cold_equivalent_cost=tracker.cost + saved,
            plan=plan_obj,
        )

    with backend_scope(backend) as executor:
        for r in range(total_rounds):
            found_witness: Optional[Dict[int, int]] = None
            found = False
            with overflow_warning_scope(provider.overflow_warned), \
                    tracker.span("round"):
                cover = provider.cover(k, d, seed + r, tracker)
                with tracker.parallel("pieces") as region:
                    # Each piece's branch writes its own result slot of the
                    # conceptual output array (sanitizer disjointness check).
                    results = ShadowArray("piece-results", len(cover.pieces))
                    if executor.serial:
                        for piece_idx, piece in enumerate(cover.pieces):
                            if piece.graph.n < k:
                                continue
                            pieces_examined += 1
                            with region.branch("dp-solve") as branch:
                                branch.record_writes(results, piece_idx)
                                witness = provider.solve_piece(
                                    piece, pattern, engine, branch,
                                    want_witness, kernel,
                                )
                            max_width = max(
                                max_width, piece.decomposition.width()
                            )
                            if witness is not None and not found:
                                found = True
                                if want_witness:
                                    found_witness = {
                                        p: int(piece.originals[v])
                                        for p, v in witness.items()
                                    }
                    else:
                        executor.check_sanitizer()
                        want = "witness" if want_witness else "decide"
                        dispatches = []
                        for piece_idx, piece in enumerate(cover.pieces):
                            if piece.graph.n < k:
                                continue
                            pieces_examined += 1
                            max_width = max(
                                max_width, piece.decomposition.width()
                            )
                            region.record_writes(
                                results, piece_idx, arm=f"piece-{piece_idx}"
                            )
                            branch = Tracer("dp-solve")
                            disp = PieceDispatch(piece=piece, tracer=branch)
                            hit, value = provider.piece_solution_cached(
                                piece, pattern, engine, branch,
                                want_witness, kernel,
                            )
                            if hit:
                                disp.value = value
                            else:
                                nice = None
                                if provider.caching:
                                    amark = provider.amortization_mark()
                                    nice = provider.nice(
                                        piece.decomposition, branch
                                    )
                                    _, disp.nested_saved = (
                                        provider.amortization_since(amark)
                                    )
                                disp.handle = executor.submit(
                                    make_piece_task(
                                        piece, pattern, want, "subgraph",
                                        engine, kernel, nice=nice,
                                    )
                                )
                            dispatches.append(disp)
                        for disp in dispatches:
                            result = collect_into(disp, provider, executor)
                            if result is not None:
                                disp.value = result.witness
                                provider.store_piece_solution(
                                    disp.piece, pattern, engine,
                                    want_witness, kernel, disp.value,
                                    disp.tracer.cost + disp.nested_saved,
                                )
                            region.attach(disp.tracer.root)
                            if disp.value is not None and not found:
                                found = True
                                if want_witness:
                                    found_witness = {
                                        p: int(disp.piece.originals[v])
                                        for p, v in disp.value.items()
                                    }
            if found:
                return _result(True, found_witness, r + 1)
        return _result(False, None, total_rounds)


def _solve_piece(
    piece, pattern: Pattern, engine: str, tracker: Tracer,
    want_witness: bool, kernel: str = "packed", provider=None,
) -> Optional[Dict[int, int]]:
    """Solve one cover piece; returns a local witness dict, ``{}`` as a
    found-marker when no witness was requested, or None."""
    if provider is None:
        provider = ColdArtifacts(None, None)
    nice = provider.nice(piece.decomposition, tracker)
    space = SubgraphStateSpace(pattern, piece.graph)
    if engine == "parallel":
        result = parallel_dp(space, nice, tracer=tracker, engine=kernel)
    else:
        result = sequential_dp(space, nice, tracer=tracker, engine=kernel)
    if not result.found:
        return None
    if not want_witness:
        return {}
    return first_witness(space, nice, result.valid)


@cost_contract(work="O(n log n)", depth="O(log^2 n)")
def find_occurrence(
    graph: Graph,
    embedding: PlanarEmbedding,
    pattern: Pattern,
    seed: int,
    engine: Optional[str] = None,
    rounds: Optional[int] = None,
    kernel: Optional[str] = None,
    artifacts=None,
    backend=None,
    plan=None,
) -> PlanarSIResult:
    """Like :func:`decide_subgraph_isomorphism` but returns a witness."""
    return decide_subgraph_isomorphism(
        graph,
        embedding,
        pattern,
        seed,
        engine=engine,
        rounds=rounds,
        want_witness=True,
        kernel=kernel,
        artifacts=artifacts,
        backend=backend,
        plan=plan,
    )
