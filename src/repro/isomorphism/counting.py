"""Deterministic exact occurrence counting (the paper's future-work item).

The paper's conclusion: "Although we could use our subgraph listing
algorithm to count the number of occurrences, this is not work-efficient as
the runtime grows with the number of occurrences.  The difficulty comes
from the randomized way in which we cluster the graph ...  A deterministic
parallel k-d cover would solve this issue."

This module contributes the *sequential-cover* version of that idea: over
Eppstein's deterministic BFS-level windows, occurrences counted per window
overlap — but every occurrence has a well-defined **minimum BFS level** i,
and it lies in window [i, i+d] while avoiding level i exactly when its
minimum is larger.  Hence, with the multiplicity-carrying DP,

    #occurrences = sum_i ( N(levels [i, i+d]) - N(levels [i+1, i+d]) )

— an inclusion--exclusion over nested windows that counts every occurrence
exactly once, independent of how many there are.  Work stays
k^O(k) · n · d; no listing, no Monte Carlo.

(For disconnected targets the count is per-component and summed; the
pattern must be connected so that "minimum level" is well defined over a
single BFS.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..engine.artifacts import ColdArtifacts
from ..graphs.bfs import parallel_bfs
from ..graphs.components import component_members, connected_components
from ..graphs.csr import Graph
from ..planar.embedding import PlanarEmbedding
from ..pram import Cost, Span, Tracer
from .packed import overflow_warning_scope
from .pattern import Pattern
from .sequential_dp import sequential_dp
from .state_space import SubgraphStateSpace

__all__ = ["DeterministicCountResult", "count_occurrences_exact"]


@dataclass
class DeterministicCountResult:
    """Exact (non-randomized) occurrence count.

    ``isomorphisms`` counts injective maps H -> G (automorphic copies of
    one subgraph counted separately, as in ``count_isomorphisms``).
    """

    isomorphisms: int
    windows_examined: int
    cost: Cost
    trace: Optional[Span] = None
    amortized: bool = False
    cold_equivalent_cost: Optional[Cost] = None


def count_occurrences_exact(
    graph: Graph,
    embedding: PlanarEmbedding,
    pattern: Pattern,
    artifacts=None,
) -> DeterministicCountResult:
    """Count the pattern's occurrences exactly and deterministically.

    ``artifacts`` optionally supplies a provider/session caching the
    per-window decompositions (they are pattern-independent, so a session
    amortizes them across patterns — and even inside one query: the nested
    window ``[i+1, max_level]`` recurs as both a minuend and a subtrahend
    of consecutive inclusion--exclusion terms).
    """
    if not pattern.is_connected():
        raise ValueError("exact counting needs a connected pattern")
    provider = (
        artifacts if artifacts is not None else ColdArtifacts(graph, embedding)
    )
    mark = provider.amortization_mark()
    k, d = pattern.k, pattern.diameter()
    tracker = Tracer("count-exact")
    tracker.count(n=graph.n, k=k, d=d)
    total = 0
    windows = 0
    labels, comp_count, ccost = connected_components(graph)
    tracker.charge(ccost, label="components", components=comp_count)
    for members in component_members(labels, comp_count):
        if members.size < k:
            continue
        sub_emb, originals = embedding.induced_subembedding(members)
        sub = sub_emb.to_graph()
        bfs, _ = parallel_bfs(sub, [0], tracer=tracker)
        level = bfs.level
        max_level = bfs.depth
        for i in range(max(0, max_level - d) + 1):
            m_i = _window_count(
                sub_emb, sub, level, i, i + d, pattern, tracker, provider
            )
            k_i = _window_count(
                sub_emb, sub, level, i + 1, i + d, pattern, tracker, provider
            )
            total += m_i - k_i
            windows += 1
        # The windows above stop once they cover the deepest level; any
        # occurrence has min level <= max_level - ... every occurrence's
        # min level i satisfies i <= max_level, and for
        # i > max_level - d the nested difference is covered by the last
        # full window's tail terms, handled by _window_count's clipping.
        for i in range(max(0, max_level - d) + 1, max_level + 1):
            m_i = _window_count(
                sub_emb, sub, level, i, max_level, pattern, tracker, provider
            )
            k_i = _window_count(
                sub_emb, sub, level, i + 1, max_level, pattern, tracker,
                provider,
            )
            total += m_i - k_i
            windows += 1
    tracker.count(windows=windows)
    hits, saved = provider.amortization_since(mark)
    return DeterministicCountResult(
        isomorphisms=total,
        windows_examined=windows,
        cost=tracker.cost,
        trace=tracker.root,
        amortized=hits > 0,
        cold_equivalent_cost=tracker.cost + saved,
    )


def _window_count(
    emb: PlanarEmbedding,
    graph: Graph,
    level: np.ndarray,
    lo: int,
    hi: int,
    pattern: Pattern,
    tracker: Tracer,
    provider,
) -> int:
    """Exact isomorphism count inside the induced subgraph of levels
    [lo, hi] (0 when the window is empty or too small)."""
    window = np.flatnonzero((level >= lo) & (level <= hi))
    if window.size < pattern.k:
        return 0
    sub, _originals = graph.induced_subgraph(window)
    if sub.m < pattern.graph.m:
        return 0
    with overflow_warning_scope(provider.overflow_warned), \
            tracker.span("window-count"):
        nice = provider.window_decomposition(sub, tracker)
        space = SubgraphStateSpace(pattern, sub)
        result = sequential_dp(space, nice, tracer=tracker)
    return result.accepting_count
