"""Deterministic exact occurrence counting (the paper's future-work item).

The paper's conclusion: "Although we could use our subgraph listing
algorithm to count the number of occurrences, this is not work-efficient as
the runtime grows with the number of occurrences.  The difficulty comes
from the randomized way in which we cluster the graph ...  A deterministic
parallel k-d cover would solve this issue."

This module contributes the *sequential-cover* version of that idea: over
Eppstein's deterministic BFS-level windows, occurrences counted per window
overlap — but every occurrence has a well-defined **minimum BFS level** i,
and it lies in window [i, i+d] while avoiding level i exactly when its
minimum is larger.  Hence, with the multiplicity-carrying DP,

    #occurrences = sum_i ( N(levels [i, i+d]) - N(levels [i+1, i+d]) )

— an inclusion--exclusion over nested windows that counts every occurrence
exactly once, independent of how many there are.  Work stays
k^O(k) · n · d; no listing, no Monte Carlo.

(For disconnected targets the count is per-component and summed; the
pattern must be connected so that "minimum level" is well defined over a
single BFS.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..engine.artifacts import ColdArtifacts
from ..exec.backends import backend_scope
from ..exec.dispatch import PieceDispatch, collect_into
from ..exec.task import make_window_task
from ..graphs.bfs import parallel_bfs
from ..graphs.components import component_members, connected_components
from ..graphs.csr import Graph
from ..planar.embedding import PlanarEmbedding
from ..pram import Cost, Span, Tracer
from .packed import overflow_warning_scope
from .pattern import Pattern
from .sequential_dp import sequential_dp
from .state_space import SubgraphStateSpace

from ..analysis.contracts import cost_contract

__all__ = ["DeterministicCountResult", "count_occurrences_exact"]


@dataclass
class DeterministicCountResult:
    """Exact (non-randomized) occurrence count.

    ``isomorphisms`` counts injective maps H -> G (automorphic copies of
    one subgraph counted separately, as in ``count_isomorphisms``).
    """

    isomorphisms: int
    windows_examined: int
    cost: Cost
    trace: Optional[Span] = None
    amortized: bool = False
    cold_equivalent_cost: Optional[Cost] = None
    plan: Optional[object] = None


@cost_contract(work="O(c_k n log^3 n + c_k p)", depth="O(log^3 n + d log n + c_k p)")
def count_occurrences_exact(
    graph: Graph,
    embedding: PlanarEmbedding,
    pattern: Pattern,
    artifacts=None,
    backend=None,
    plan=None,
) -> DeterministicCountResult:
    """Count the pattern's occurrences exactly and deterministically.

    ``artifacts`` optionally supplies a provider/session caching the
    per-window decompositions (they are pattern-independent, so a session
    amortizes them across patterns — and even inside one query: the nested
    window ``[i+1, max_level]`` recurs as both a minuend and a subtrahend
    of consecutive inclusion--exclusion terms).  ``backend`` executes the
    per-window DPs (``repro.exec``): windows dispatch per component and
    collect in window order, so the sequential span interleaving — and
    hence the charged trace — is byte-identical to the serial path.
    """
    if not pattern.is_connected():
        raise ValueError("exact counting needs a connected pattern")
    from ..engine.planner import apply_plan

    provider = (
        artifacts if artifacts is not None else ColdArtifacts(graph, embedding)
    )
    # The window DP is inherently sequential (nested inclusion--exclusion
    # windows); only the plan's backend choice applies here.
    plan_obj, _engine, _kernel, backend = apply_plan(
        plan, provider, pattern, "count", 0, None, None, None, backend,
    )
    mark = provider.amortization_mark()
    k, d = pattern.k, pattern.diameter()
    tracker = Tracer("count-exact")
    tracker.count(n=graph.n, k=k, d=d)
    total = 0
    windows = 0
    labels, comp_count, ccost = connected_components(graph)
    tracker.charge(ccost, label="components", components=comp_count)
    with backend_scope(backend) as executor:
        if not executor.serial:
            executor.check_sanitizer()
        for members in component_members(labels, comp_count):
            if members.size < k:
                continue
            sub_emb, originals = embedding.induced_subembedding(members)
            sub = sub_emb.to_graph()
            bfs, _ = parallel_bfs(sub, [0], tracer=tracker)
            level = bfs.level
            max_level = bfs.depth
            # The inclusion--exclusion window bounds, in evaluation order:
            # full windows [i, i+d] while they fit, then the clipped tail
            # (any occurrence's min level i satisfies i <= max_level; for
            # i > max_level - d the nested difference terms clip at the
            # deepest level).  Each (m_i, k_i) pair is one logical window.
            bounds = []
            for i in range(max(0, max_level - d) + 1):
                bounds.append(((i, i + d), (i + 1, i + d)))
            for i in range(max(0, max_level - d) + 1, max_level + 1):
                bounds.append(((i, max_level), (i + 1, max_level)))
            if executor.serial:
                for (lo_m, hi_m), (lo_k, hi_k) in bounds:
                    m_i = _window_count(
                        sub_emb, sub, level, lo_m, hi_m, pattern, tracker,
                        provider,
                    )
                    k_i = _window_count(
                        sub_emb, sub, level, lo_k, hi_k, pattern, tracker,
                        provider,
                    )
                    total += m_i - k_i
                    windows += 1
            else:
                flat = [b for pair in bounds for b in pair]
                counts = _dispatch_window_counts(
                    sub, level, pattern, flat, tracker, provider, executor
                )
                for j in range(0, len(flat), 2):
                    total += counts[j] - counts[j + 1]
                    windows += 1
    tracker.count(windows=windows)
    hits, saved = provider.amortization_since(mark)
    if plan_obj is not None:
        plan_obj.record_actual(tracker.cost)
    return DeterministicCountResult(
        isomorphisms=total,
        windows_examined=windows,
        cost=tracker.cost,
        trace=tracker.root,
        amortized=hits > 0,
        cold_equivalent_cost=tracker.cost + saved,
        plan=plan_obj,
    )


@cost_contract(work="O(c_k n log n + c_k p)", depth="O(log^2 n + c_k p)")
def _window_count(
    emb: PlanarEmbedding,
    graph: Graph,
    level: np.ndarray,
    lo: int,
    hi: int,
    pattern: Pattern,
    tracker: Tracer,
    provider,
) -> int:
    """Exact isomorphism count inside the induced subgraph of levels
    [lo, hi] (0 when the window is empty or too small)."""
    window = np.flatnonzero((level >= lo) & (level <= hi))
    if window.size < pattern.k:
        return 0
    sub, _originals = graph.induced_subgraph(window)
    if sub.m < pattern.graph.m:
        return 0
    with overflow_warning_scope(provider.overflow_warned), \
            tracker.span("window-count"):
        nice = provider.window_decomposition(sub, tracker)
        space = SubgraphStateSpace(pattern, sub)
        result = sequential_dp(space, nice, tracer=tracker)
    return result.accepting_count


@cost_contract(work="O(c_k n log n + c_k p)", depth="O(log^2 n + c_k p)")
def _dispatch_window_counts(
    sub: Graph,
    level: np.ndarray,
    pattern: Pattern,
    bounds,
    tracker: Tracer,
    provider,
    executor,
):
    """Backend path of :func:`_window_count` over one component's windows.

    Dispatches every window's DP, then collects *in window order*,
    attaching each worker-recorded ``window-count`` span sequentially —
    the same span sequence the inline loop records.  Guard-rejected
    windows (too small / too few edges) count 0 and record no span,
    exactly like the inline early returns.
    """
    dispatches = []
    for lo, hi in bounds:
        window = np.flatnonzero((level >= lo) & (level <= hi))
        if window.size < pattern.k:
            dispatches.append(None)
            continue
        wsub, _originals = sub.induced_subgraph(window)
        if wsub.m < pattern.graph.m:
            dispatches.append(None)
            continue
        branch = Tracer("window-count")
        disp = PieceDispatch(piece=None, tracer=branch)
        nice = None
        if provider.caching:
            nice = provider.window_decomposition(wsub, branch)
        disp.handle = executor.submit(
            make_window_task(wsub, pattern, nice=nice)
        )
        dispatches.append(disp)
    counts = []
    for disp in dispatches:
        if disp is None:
            counts.append(0)
            continue
        result = collect_into(disp, provider, executor)
        tracker.attach(disp.tracer.root)
        counts.append(result.accepting_count)
    return counts
