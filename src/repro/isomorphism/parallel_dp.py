"""The parallel bounded-treewidth engine (Section 3.3, Lemma 3.1).

Orchestration: decompose the nice decomposition tree into O(log n) layers of
paths (Lemma 3.2), then solve the layers bottom-up; all paths inside one
layer are independent (their off-path children live in lower layers) and run
as one parallel region, each via the shortcut DAG of
``repro.isomorphism.match_dag``.

Measured cost shape: O(#layers) sequential stages, each with depth
O(k log n) from the shortcut-bounded BFS — the paper's O(k log^2 n) overall
depth, against the sequential engine's Theta(height) chain.  The engine is
generic over the state space (plain or separating).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..pram import Cost, ShadowArray, Span, Tracer
from ..treedecomp.nice import NiceDecomposition
from ..treedecomp.tree_paths import layered_paths
from .match_dag import _solve_path_packed, solve_path
from .packed import PackedValidTables, packed_ops_for

from ..analysis.contracts import cost_contract

__all__ = ["ParallelDPResult", "parallel_dp"]


@dataclass
class ParallelDPResult:
    """Like :class:`DPResult` plus parallel-structure diagnostics.

    ``accepting_count`` counts accepting *states* (the reachability engine
    does not carry multiplicities; use the recovery walker or the sequential
    engine to count isomorphisms).
    """

    valid: List[Dict[tuple, int]]
    root: int
    accepting_count: int
    found: bool
    cost: Cost
    num_layers: int
    num_paths: int
    max_bfs_rounds: int
    total_states: int
    total_shortcuts: int
    trace: Optional[Span] = None


@cost_contract(work="O(c_k n log n)", depth="O(log^2 n)")
def parallel_dp(
    space,
    nice: NiceDecomposition,
    tracer: Optional[Tracer] = None,
    engine: str = "packed",
) -> ParallelDPResult:
    """Run the parallel path/DAG/shortcut engine; see module docstring.

    When a ``tracer`` is given the engine's phases (Lemma 3.2 layering,
    subtree statistics, one parallel region per layer) nest under a
    ``parallel-dp`` span of the caller's trace; otherwise a standalone
    trace is recorded and returned on the result.

    ``engine="packed"`` (default) solves every path with the vectorized
    int64 kernels, ``"reference"`` with the tuple-dict builder; valid
    tables, diagnostics and the charged trace are identical either way
    (packed falls back to reference when unavailable).
    """
    if engine not in ("packed", "reference"):
        raise ValueError(f"unknown engine {engine!r}")
    tracker = tracer if tracer is not None else Tracer("parallel-dp-run")
    ops = (
        packed_ops_for(space, nice, tracer=tracker)
        if engine == "packed"
        else None
    )
    with tracker.span("parallel-dp") as dp_span:
        result = _parallel_dp_traced(space, nice, tracker, dp_span, ops)
    return result


@cost_contract(work="O(c_k n log n)", depth="O(log^2 n)")
def _parallel_dp_traced(
    space,
    nice: NiceDecomposition,
    tracker: Tracer,
    dp_span: Span,
    ops=None,
) -> ParallelDPResult:
    n_nodes = nice.num_nodes
    # Lemma 3.2 decomposition of the decomposition tree.  The layer numbers
    # are evaluated host-side sequentially; the parallel evaluation (tree
    # contraction, Lemma A.1) is implemented and tested in repro.pram — here
    # we charge the lemma's O(n) work / O(log n) depth.
    pd, _ = layered_paths(nice.parent, nice.root)
    from ..pram import log2_ceil

    tracker.charge(
        Cost(max(2 * n_nodes, 1), max(1, 2 * log2_ceil(max(n_nodes, 2)))),
        label="layered-paths",
        layers=pd.num_layers,
    )

    # Per-node subtree statistics for the sound local-state prune: the
    # number of forget steps below each node (C-capacity) and whether a
    # marked vertex is forgotten below (boolean provenance).
    forgotten_count = np.zeros(n_nodes, dtype=np.int64)
    marked_forgotten = np.zeros(n_nodes, dtype=bool)
    kids = nice.children()
    for i in reversed(nice.topological_order()):
        if nice.kinds[i] == "forget":
            forgotten_count[i] += 1
            if space.is_marked_vertex(int(nice.vertex[i])):
                marked_forgotten[i] = True
        for c in kids[i]:
            forgotten_count[i] += forgotten_count[c]
            marked_forgotten[i] |= marked_forgotten[c]
    tracker.charge(
        Cost(max(2 * n_nodes, 1), max(1, 2 * log2_ceil(max(n_nodes, 2)))),
        label="subtree-stats",
    )
    node_stats = (forgotten_count, marked_forgotten)

    valid: List[Optional[Dict[tuple, int]]] = [None] * n_nodes
    valid_codes: List[Optional[np.ndarray]] = [None] * n_nodes
    # One conceptual table slot per decomposition node: paths within a
    # layer must be node-disjoint (Lemma 3.2) for the parallel region to
    # be race-free, and the sanitizer checks exactly that.
    tables_shadow = ShadowArray("dp-node-tables", n_nodes)
    num_paths = 0
    max_rounds = 0
    total_states = 0
    total_shortcuts = 0
    for layer in pd.layers:
        with tracker.parallel("layer") as region:
            for path_idx, path in enumerate(layer):
                num_paths += 1
                if region.sanitizing:
                    region.record_writes(
                        tables_shadow, path, arm=f"path{path_idx}"
                    )
                if ops is not None:
                    result = _solve_path_packed(
                        ops, nice, path, valid_codes, node_stats=node_stats
                    )
                    for node, codes in zip(path, result.valid_codes):
                        valid_codes[node] = codes
                else:
                    result = solve_path(
                        space,
                        nice,
                        path,
                        valid,
                        node_stats=node_stats,
                        engine="reference",
                    )
                    for node, table in zip(path, result.valid_per_node):
                        valid[node] = table
                region.add(
                    result.cost,
                    label="path",
                    nodes=len(path),
                    states=result.num_states,
                    shortcuts=result.num_shortcuts,
                )
                max_rounds = max(max_rounds, result.bfs_rounds)
                total_states += result.num_states
                total_shortcuts += result.num_shortcuts

    tracker.count(
        layers=pd.num_layers,
        paths=num_paths,
        states=total_states,
        shortcuts=total_shortcuts,
    )
    if ops is not None:
        root_codes = valid_codes[nice.root]
        assert root_codes is not None
        accepting = int(
            ops.accepting_mask(
                ops.ctx(nice.bags[nice.root]), root_codes
            ).sum()
        )
        return ParallelDPResult(
            valid=PackedValidTables(ops, nice.bags, valid_codes),
            root=nice.root,
            accepting_count=accepting,
            found=accepting > 0,
            cost=dp_span.cost,
            num_layers=pd.num_layers,
            num_paths=num_paths,
            max_bfs_rounds=max_rounds,
            total_states=total_states,
            total_shortcuts=total_shortcuts,
            trace=dp_span,
        )
    root_table = valid[nice.root]
    assert root_table is not None
    accepting = sum(1 for s in root_table if space.is_accepting(s))
    return ParallelDPResult(
        valid=[t if t is not None else {} for t in valid],
        root=nice.root,
        accepting_count=int(accepting),
        found=accepting > 0,
        cost=dp_span.cost,
        num_layers=pd.num_layers,
        num_paths=num_paths,
        max_bfs_rounds=max_rounds,
        total_states=total_states,
        total_shortcuts=total_shortcuts,
        trace=dp_span,
    )
