"""Pattern graphs: the small graph H we search for (k vertices, diameter d).

Bundles the pattern with the precomputed facts the engines need (neighbor
tuples, diameter, connectivity, components) plus a small library of the
named patterns used throughout the paper and the benchmarks (triangles,
paths, cycles — including the separating 8-cycle of Section 5 — stars, K4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from ..graphs.csr import Graph
from ..graphs.components import connected_components

__all__ = [
    "Pattern",
    "triangle",
    "path_pattern",
    "cycle_pattern",
    "star_pattern",
    "clique_pattern",
    "diamond",
]


@dataclass(frozen=True)
class Pattern:
    """A pattern graph H with cached structure.

    Attributes
    ----------
    graph:
        The pattern as a :class:`Graph` (vertices ``0..k-1``).
    """

    graph: Graph
    _neighbors: Tuple[Tuple[int, ...], ...] = field(init=False, repr=False)
    _neighbor_arrays: Tuple[np.ndarray, ...] = field(
        init=False, repr=False, compare=False
    )
    _adj_matrix: np.ndarray = field(init=False, repr=False, compare=False)
    _adj_bits: np.ndarray = field(init=False, repr=False, compare=False)
    # Lazily memoized derived statistics (diameter BFS sweeps, component
    # labelling, connected-subpattern counting are each paid once per
    # pattern object, not once per query of a batch).
    _diameter: Optional[int] = field(
        init=False, repr=False, compare=False, default=None
    )
    _connected: Optional[bool] = field(
        init=False, repr=False, compare=False, default=None
    )
    _subpattern_count: Optional[int] = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        if self.graph.n == 0:
            raise ValueError("the pattern must have at least one vertex")
        object.__setattr__(
            self,
            "_neighbors",
            tuple(
                tuple(int(w) for w in self.graph.neighbors(v))
                for v in range(self.graph.n)
            ),
        )
        # NumPy views of the adjacency, precomputed once so the packed DP
        # kernels never iterate neighbor tuples per call: per-vertex sorted
        # neighbor arrays, the dense k x k boolean matrix, and (for k <= 63)
        # one int64 neighbor bitmask per vertex.
        k = self.graph.n
        object.__setattr__(
            self,
            "_neighbor_arrays",
            tuple(
                np.asarray(self._neighbors[v], dtype=np.int64)
                for v in range(k)
            ),
        )
        adj = np.zeros((k, k), dtype=bool)
        for u, v in self.graph.iter_edges():
            adj[u, v] = adj[v, u] = True
        object.__setattr__(self, "_adj_matrix", adj)
        if k <= 63:
            bits = (adj.astype(np.int64) << np.arange(k, dtype=np.int64)).sum(
                axis=1
            )
        else:  # pragma: no cover - patterns are tiny by construction
            bits = np.zeros(k, dtype=np.int64)
        object.__setattr__(self, "_adj_bits", bits)

    @property
    def k(self) -> int:
        """Number of pattern vertices."""
        return self.graph.n

    def neighbors(self, p: int) -> Tuple[int, ...]:
        return self._neighbors[p]

    def neighbor_array(self, p: int) -> np.ndarray:
        """Sorted neighbor ids of ``p`` as an int64 array (do not mutate)."""
        return self._neighbor_arrays[p]

    @property
    def adjacency_matrix(self) -> np.ndarray:
        """Dense ``k x k`` boolean adjacency (do not mutate)."""
        return self._adj_matrix

    @property
    def adjacency_bits(self) -> np.ndarray:
        """Per-vertex int64 neighbor bitmasks (``k <= 63`` only)."""
        return self._adj_bits

    def edge_list(self) -> List[Tuple[int, int]]:
        """Canonical ``u < v`` pattern edges as Python int pairs."""
        return [(int(u), int(v)) for u, v in self.graph.edges()]

    def is_connected(self) -> bool:
        if self._connected is None:
            _, count, _ = connected_components(self.graph)
            object.__setattr__(self, "_connected", count <= 1)
        return bool(self._connected)

    def components(self) -> List[np.ndarray]:
        """Vertex arrays of the connected components."""
        labels, count, _ = connected_components(self.graph)
        from ..graphs.components import component_members

        return component_members(labels, count)

    def component_patterns(self) -> List[Tuple["Pattern", np.ndarray]]:
        """Each component as its own pattern plus the original vertex ids."""
        out = []
        for members in self.components():
            sub, originals = self.graph.induced_subgraph(members)
            out.append((Pattern(sub), originals))
        return out

    def diameter(self) -> int:
        """Diameter of the pattern (max over components; the quantity ``d``
        of Corollary 2.2).  Memoized: the all-sources BFS sweep runs once
        per pattern object, not once per query."""
        if self._diameter is not None:
            return self._diameter
        from ..graphs.bfs import parallel_bfs

        best = 0
        for v in range(self.k):
            res, _ = parallel_bfs(self.graph, [v])
            reached = res.level[res.level >= 0]
            best = max(best, int(reached.max(initial=0)))
        object.__setattr__(self, "_diameter", best)
        return best

    def connected_subpattern_count(self) -> int:
        """``|C(H)|`` — the number of vertex subsets inducing a connected
        subpattern (Eppstein's connected-pattern decomposition bound; the
        planner's state-richness statistic).

        Computed by bitmask BFS over the precomputed adjacency bitmasks for
        ``k <= 20`` (at most ~1M subsets for the tiny patterns this library
        handles); for larger patterns the trivial upper bound ``2^k`` is
        returned.  Memoized per pattern object.
        """
        if self._subpattern_count is not None:
            return self._subpattern_count
        k = self.k
        if k > 20:  # pragma: no cover - patterns are tiny by construction
            count = 1 << k
        else:
            bits = [int(b) for b in self._adj_bits]
            count = 0
            for subset in range(1, 1 << k):
                # Flood from the lowest member through adjacency bitmasks.
                low = subset & -subset
                seen = low
                frontier = low
                while frontier:
                    reach = 0
                    f = frontier
                    while f:
                        v = f & -f
                        reach |= bits[v.bit_length() - 1]
                        f ^= v
                    frontier = reach & subset & ~seen
                    seen |= frontier
                if seen == subset:
                    count += 1
        object.__setattr__(self, "_subpattern_count", count)
        return count

    def spanning_forest_edges(self) -> List[Tuple[int, int]]:
        """A spanning forest (used by Observation 1's argument)."""
        seen = np.zeros(self.k, dtype=bool)
        edges = []
        for root in range(self.k):
            if seen[root]:
                continue
            seen[root] = True
            queue = [root]
            while queue:
                u = queue.pop()
                for w in self.neighbors(u):
                    if not seen[w]:
                        seen[w] = True
                        edges.append((u, w))
                        queue.append(w)
        return edges


# The named factories are interned: patterns (and graphs) are immutable, so
# repeated batch entries reuse one Pattern object and share its memoized
# fingerprint, adjacency bitmasks, diameter and |C(H)| statistics.


@lru_cache(maxsize=None)
def triangle() -> Pattern:
    """K3."""
    return Pattern(Graph(3, [(0, 1), (1, 2), (0, 2)]))


@lru_cache(maxsize=None)
def path_pattern(k: int) -> Pattern:
    """The path on ``k`` vertices."""
    if k < 1:
        raise ValueError("need at least one vertex")
    return Pattern(Graph(k, [(i, i + 1) for i in range(k - 1)]))


@lru_cache(maxsize=None)
def cycle_pattern(k: int) -> Pattern:
    """The cycle on ``k >= 3`` vertices (``k = 2c`` for Section 5's
    separating cycles)."""
    if k < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    return Pattern(Graph(k, [(i, (i + 1) % k) for i in range(k)]))


@lru_cache(maxsize=None)
def star_pattern(leaves: int) -> Pattern:
    """The star with ``leaves`` leaves."""
    if leaves < 1:
        raise ValueError("need at least one leaf")
    return Pattern(Graph(leaves + 1, [(0, i) for i in range(1, leaves + 1)]))


@lru_cache(maxsize=None)
def clique_pattern(k: int) -> Pattern:
    """K_k (planar-embeddable only for k <= 4)."""
    return Pattern(
        Graph(k, [(i, j) for i in range(k) for j in range(i + 1, k)])
    )


@lru_cache(maxsize=None)
def diamond() -> Pattern:
    """K4 minus an edge."""
    return Pattern(Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]))
