"""The graph of partial matches over one decomposition path (Section 3.3.2)
with shortcuts (Section 3.3.3) and hop-bounded reachability.

Given a bottom-to-top path ``P`` of the (nice) decomposition tree whose
off-path children are already solved, validity of partial matches along P is
exactly reachability in a DAG:

* vertices — the locally plausible partial matches of every path node
  (``(tau + 3)^k`` of them at most; sparse-pruned);
* edges — compatibility of a child match with a parent match, conditioned on
  a *valid* match of the off-path child at join nodes;
* sources — the solved matches of the path's bottom node, plus every match
  that "does not mark any vertices as matched in a child" (such matches are
  unconditionally valid — Section 3.3.2's tagging rule);
* the *no-new-match forest F* — each match's unique canonical lift
  (Figure 5) — receives shortcuts: every F-tree is split into layered paths
  (Lemma 3.2 again), every ``ceil(log2 N)``-th path vertex becomes a hub
  carrying exponentially-spaced jumps, and every vertex gets an exit jump to
  its path top.  Any source-to-match walk then needs only
  O(k log N) hops (Lemma 3.3): at most k match-introducing edges, and each
  F-segment between them crosses O(log N) F-layers at O(log N) hops each —
  O(1) amortized through the exit jumps plus one O(log N) hub landing.

The BFS is level-synchronous; its round count is the measured depth, and
``tests/isomorphism`` property-checks that reachability reproduces the
sequential engine's valid sets exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..pram import Cost, log2_ceil
from ..treedecomp.nice import FORGET, INTRODUCE, JOIN, LEAF, NiceDecomposition
from ..treedecomp.tree_paths import layered_paths
from .packed import expand_buckets, member_positions, packed_ops_for

__all__ = ["PathDAGResult", "solve_path"]

NIL = -1

_EMPTY = np.zeros(0, dtype=np.int64)


@dataclass
class PathDAGResult:
    """Valid matches of every node on the path, plus diagnostics."""

    valid_per_node: List[Dict[tuple, int]]
    num_states: int
    num_edges: int
    num_shortcuts: int
    bfs_rounds: int
    cost: Cost


def _bottom_states(space, nice, node, kids, valid_tables) -> Dict[tuple, int]:
    """Directly solve the path's bottom node from its (off-path) children."""
    kind = nice.kinds[node]
    cs = kids[node]
    out: Dict[tuple, int] = {}
    if kind == LEAF:
        out[space.leaf_state()] = 1
    elif kind == INTRODUCE:
        v = int(nice.vertex[node])
        for s in valid_tables[cs[0]]:
            for t in space.introduce(v, s):
                out[t] = 1
    elif kind == FORGET:
        v = int(nice.vertex[node])
        for s in valid_tables[cs[0]]:
            t = space.forget(v, s)
            if t is not None:
                out[t] = 1
    elif kind == JOIN:
        left, right = cs
        buckets: Dict[tuple, List[tuple]] = {}
        for sr in valid_tables[right]:
            buckets.setdefault(space.join_key(sr), []).append(sr)
        for sl in valid_tables[left]:
            for sr in buckets.get(space.join_key(sl), ()):
                t = space.join(sl, sr)
                if t is not None:
                    out[t] = 1
    else:  # pragma: no cover
        raise ValueError(f"unknown node kind {kind!r}")
    return out


def solve_path(
    space,
    nice: NiceDecomposition,
    path_nodes: Sequence[int],
    valid_tables: List[Optional[Dict[tuple, int]]],
    node_stats: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    engine: str = "packed",
) -> PathDAGResult:
    """Compute the valid partial matches of every node on ``path_nodes``
    (bottom-to-top) via the shortcut DAG (Lemma 3.3).

    ``node_stats`` optionally carries per-nice-node subtree statistics
    ``(forgotten_count, marked_forgotten)`` used to filter the local state
    enumeration (a sound prune — see ``admissible_at`` on the spaces).

    ``engine="packed"`` (default) runs the vectorized int64 DAG builder
    (identical reachability, diagnostics and charged cost; dict tables are
    re-encoded at the boundary), falling back to the reference tuple-dict
    build when the space has no packed kernels or a bag does not fit.
    """
    if engine not in ("packed", "reference"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "packed":
        ops = packed_ops_for(space, nice)
        if ops is not None:
            kids = nice.children()
            needed = set(kids[path_nodes[0]])
            for i in range(1, len(path_nodes)):
                if nice.kinds[path_nodes[i]] == JOIN:
                    cs = kids[path_nodes[i]]
                    needed.add(
                        cs[0] if cs[1] == path_nodes[i - 1] else cs[1]
                    )
            valid_codes: List[Optional[np.ndarray]] = [None] * nice.num_nodes
            for nd in needed:
                states = list(valid_tables[nd])
                valid_codes[nd] = np.sort(
                    ops.encode(ops.ctx(nice.bags[nd]), states)
                )
            res = _solve_path_packed(
                ops, nice, path_nodes, valid_codes, node_stats
            )
            valid_per_node = [
                {
                    s: 1
                    for s in ops.decode(
                        ops.ctx(nice.bags[node]), res.valid_codes[i]
                    )
                }
                for i, node in enumerate(path_nodes)
            ]
            return PathDAGResult(
                valid_per_node=valid_per_node,
                num_states=res.num_states,
                num_edges=res.num_edges,
                num_shortcuts=res.num_shortcuts,
                bfs_rounds=res.bfs_rounds,
                cost=res.cost,
            )
    kids = nice.children()
    t = len(path_nodes)
    work = 0

    # ---- vertex sets -------------------------------------------------------
    bottom = _bottom_states(space, nice, path_nodes[0], kids, valid_tables)
    states_per_node: List[List[tuple]] = [list(bottom.keys())]
    for i in range(1, t):
        node = path_nodes[i]
        states = space.local_states(nice.bags[node])
        if node_stats is not None:
            fc = int(node_stats[0][node])
            mf = bool(node_stats[1][node])
            states = [s for s in states if space.admissible_at(s, fc, mf)]
        states_per_node.append(states)
    index: List[Dict[tuple, int]] = []
    offsets = [0]
    for states in states_per_node:
        index.append({s: offsets[-1] + j for j, s in enumerate(states)})
        offsets.append(offsets[-1] + len(states))
    total = offsets[-1]
    work += total

    # ---- edges and the forest F -------------------------------------------
    adjacency: List[List[int]] = [[] for _ in range(total)]
    # F oriented along the DAG: f_up[src] = the vertex holding src's
    # canonical no-new-match lift (Figure 5); a forest of in-trees.
    f_up = np.full(total, NIL, dtype=np.int64)
    num_edges = 0

    def add_edge(src: int, dst: int) -> None:
        nonlocal num_edges
        adjacency[src].append(dst)
        num_edges += 1

    for i in range(1, t):
        node = path_nodes[i]
        kind = nice.kinds[node]
        cs = kids[node]
        here = index[i]
        below = index[i - 1]
        off_child_states = None
        buckets: Dict[tuple, List[tuple]] = {}
        if kind == JOIN:
            off_child = cs[0] if cs[1] == path_nodes[i - 1] else cs[1]
            off_child_states = valid_tables[off_child]
            for so in off_child_states:
                buckets.setdefault(space.join_key(so), []).append(so)
        v = int(nice.vertex[node]) if kind in (INTRODUCE, FORGET) else NIL
        for s, src in below.items():
            lift = space.lift(kind, v, s)
            targets: List[tuple] = []
            if kind == INTRODUCE:
                targets = list(space.introduce(v, s))
            elif kind == FORGET:
                tgt = space.forget(v, s)
                targets = [tgt] if tgt is not None else []
            else:  # JOIN
                for so in buckets.get(space.join_key(s), ()):
                    tgt = space.join(s, so)
                    if tgt is not None:
                        targets.append(tgt)
            work += max(len(targets), 1)
            targets = list(dict.fromkeys(targets))
            for tgt in targets:
                dst = here.get(tgt)
                if dst is None:
                    continue  # pruned locally (cannot be valid)
                add_edge(src, dst)
                if tgt == lift:
                    f_up[src] = dst
    work += total

    # ---- shortcuts on F (Lemma 3.3) ----------------------------------------
    num_shortcuts = 0
    if total > 1:
        pd, _ = layered_paths(np.asarray(f_up), None)
        # Charge Lemma 3.2's bound for the F decomposition (O(n) work,
        # O(log n) depth); the host-side layer evaluation is sequential but
        # the parallel evaluation is implemented and tested in repro.pram.
        pd_cost = Cost(
            max(2 * total, 1), max(1, 2 * log2_ceil(max(total, 2)))
        )
        h = max(1, log2_ceil(max(total, 2)))
        for f_path in pd.all_paths_bottom_up():
            ln = len(f_path)
            if ln <= 1:
                continue
            top = f_path[-1]
            for pos, u in enumerate(f_path[:-1]):
                # Exit jump to the path top.
                adjacency[u].append(top)
                num_shortcuts += 1
            hubs = f_path[::h]
            m = len(hubs)
            for a in range(m):
                step = 1
                while a + step < m:
                    adjacency[hubs[a]].append(hubs[a + step])
                    num_shortcuts += 1
                    step <<= 1
    else:
        pd_cost = Cost.zero()
    work += num_shortcuts

    # ---- hop-bounded reachability (level-synchronous BFS) ------------------
    reached = np.zeros(total, dtype=bool)
    frontier: List[int] = []
    for s, idx0 in index[0].items():
        reached[idx0] = True
        frontier.append(idx0)
    for i in range(1, t):
        for s, idx_i in index[i].items():
            if space.is_trivial_source(s) and not reached[idx_i]:
                reached[idx_i] = True
                frontier.append(idx_i)
    rounds = 0
    bfs_work = len(frontier)
    while frontier:
        rounds += 1
        nxt: List[int] = []
        for u in frontier:
            for w in adjacency[u]:
                bfs_work += 1
                if not reached[w]:
                    reached[w] = True
                    nxt.append(w)
        frontier = nxt
    work += bfs_work

    valid_per_node: List[Dict[tuple, int]] = []
    for i in range(t):
        valid_per_node.append(
            {s: 1 for s, idx_i in index[i].items() if reached[idx_i]}
        )

    lg = log2_ceil(max(total, 2))
    build_work = max(work - bfs_work, 1)
    cost = (
        Cost(build_work, min(build_work, max(1, 4 * lg)))
        + pd_cost
        + Cost(max(bfs_work, 1), min(max(bfs_work, 1), max(rounds, 1)))
    )
    return PathDAGResult(
        valid_per_node=valid_per_node,
        num_states=total,
        num_edges=num_edges,
        num_shortcuts=num_shortcuts,
        bfs_rounds=rounds,
        cost=cost,
    )


@dataclass
class _PackedPathResult:
    """Packed-engine path result: per-node sorted code arrays."""

    valid_codes: List[np.ndarray]
    num_states: int
    num_edges: int
    num_shortcuts: int
    bfs_rounds: int
    cost: Cost


def _bottom_codes(ops, nice, node, kids, valid_codes) -> np.ndarray:
    """Packed ``_bottom_states``: solved states of the path's bottom node."""
    kind = nice.kinds[node]
    cs = kids[node]
    if kind == LEAF:
        return ops.leaf_codes()
    ctx = ops.ctx(nice.bags[node])
    if kind == INTRODUCE:
        v = int(nice.vertex[node])
        _src, out, _ = ops.introduce(
            ops.ctx(nice.bags[cs[0]]), ctx, v, valid_codes[cs[0]]
        )
        return np.unique(out)
    if kind == FORGET:
        v = int(nice.vertex[node])
        _src, out, _ = ops.forget(
            ops.ctx(nice.bags[cs[0]]), ctx, v, valid_codes[cs[0]]
        )
        return np.unique(out)
    if kind == JOIN:
        _li, _ri, out, ok = ops.join(
            ctx, valid_codes[cs[0]], valid_codes[cs[1]]
        )
        return np.unique(out[ok])
    raise ValueError(f"unknown node kind {kind!r}")  # pragma: no cover


def _forest_shortcuts(
    f_up: np.ndarray,
    offsets: np.ndarray,
    t: int,
    h: int,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Shortcut edges of the layered path decomposition of F, vectorized.

    Produces the same edge multiset as running :func:`layered_paths` on
    ``f_up`` and emitting exit jumps plus hub doubling jumps per path (the
    reference builder's loops), exploiting that F's edges go strictly from
    DAG level ``i-1`` to level ``i``: the Appendix-A layer recursion and the
    within-path positions are evaluated with one vector sweep per level.
    """
    total = int(f_up.shape[0])
    layer = np.zeros(total, dtype=np.int64)
    # Appendix-A layer numbers, bottom-up one DAG level at a time: a parent
    # inherits its children's unique maximum, ties bump the layer by one.
    for i in range(1, t):
        lo, hi = int(offsets[i - 1]), int(offsets[i])
        child = np.flatnonzero(f_up[lo:hi] != NIL) + lo
        if not child.size:
            continue
        lp = f_up[child] - offsets[i]
        width = int(offsets[i + 1]) - int(offsets[i])
        best = np.full(width, -1, dtype=np.int64)
        np.maximum.at(best, lp, layer[child])
        ties = np.zeros(width, dtype=np.int64)
        np.add.at(ties, lp, (layer[child] == best[lp]).astype(np.int64))
        np.copyto(
            layer[offsets[i] : offsets[i + 1]],
            np.where(best >= 0, best + (ties >= 2), 0),
        )
    # Same-layer parent pointers form the path successor relation.
    succ = np.where(
        (f_up != NIL) & (layer[np.maximum(f_up, 0)] == layer), f_up, NIL
    )
    # Within-path positions (bottom = 0) and each node's path top, again one
    # sweep per level: succ edges also go strictly one level up.
    pos = np.zeros(total, dtype=np.int64)
    for i in range(1, t):
        lo, hi = int(offsets[i - 1]), int(offsets[i])
        child = np.flatnonzero(succ[lo:hi] != NIL) + lo
        pos[succ[child]] = pos[child] + 1
    top_of = np.arange(total, dtype=np.int64)
    for i in range(t - 2, -1, -1):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        child = np.flatnonzero(succ[lo:hi] != NIL) + lo
        top_of[child] = top_of[succ[child]]

    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []
    # Exit jumps: every non-top path node jumps to its path top.
    inner = np.flatnonzero(succ != NIL)
    if inner.size:
        src_parts.append(inner)
        dst_parts.append(top_of[inner])
    # Hub doubling jumps: hubs sit at positions 0, h, 2h, ... of each path;
    # hub a jumps to hubs a+1, a+2, a+4, ... within the same path.
    hubs = np.flatnonzero(pos % h == 0)
    if hubs.size:
        order = np.lexsort((pos[hubs], top_of[hubs]))
        hs = hubs[order]
        group = np.cumsum(
            np.concatenate(
                [[True], top_of[hs[1:]] != top_of[hs[:-1]]]
            ).astype(np.int64)
        )
        m = int(hs.size)
        step = 1
        idx = np.arange(m, dtype=np.int64)
        while step < m:
            ok = np.flatnonzero(
                (idx + step < m)
                & (group[np.minimum(idx + step, m - 1)] == group)
            )
            if not ok.size:
                break
            src_parts.append(hs[ok])
            dst_parts.append(hs[ok + step])
            step <<= 1
    return src_parts, dst_parts


def _solve_path_packed(
    ops,
    nice: NiceDecomposition,
    path_nodes: Sequence[int],
    valid_codes: List[Optional[np.ndarray]],
    node_stats: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> _PackedPathResult:
    """The shortcut-DAG path solve over packed code arrays.

    Mirrors the reference builder candidate-for-candidate: identical state
    sets, edge/shortcut counts, BFS rounds/work and charged cost — the DAG
    vertex numbering differs (codes are sorted) but the graph is isomorphic,
    and every accounted quantity is numbering-invariant.
    """
    kids = nice.children()
    t = len(path_nodes)
    work = 0
    ctxs = [ops.ctx(nice.bags[node]) for node in path_nodes]

    # ---- vertex sets ------------------------------------------------------
    states_codes: List[np.ndarray] = [
        _bottom_codes(ops, nice, path_nodes[0], kids, valid_codes)
    ]
    for i in range(1, t):
        node = path_nodes[i]
        codes = ops.local_codes(ctxs[i])
        if node_stats is not None:
            fc = int(node_stats[0][node])
            mf = bool(node_stats[1][node])
            codes = codes[ops.admissible_mask(ctxs[i], codes, fc, mf)]
        states_codes.append(codes)
    sizes = [int(c.size) for c in states_codes]
    offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(sizes, dtype=np.int64)]
    )
    total = int(offsets[-1])
    work += total

    # ---- edges and the forest F ------------------------------------------
    f_up = np.full(total, NIL, dtype=np.int64)
    edge_src_parts: List[np.ndarray] = []
    edge_dst_parts: List[np.ndarray] = []
    num_edges = 0
    for i in range(1, t):
        node = path_nodes[i]
        kind = nice.kinds[node]
        cs = kids[node]
        below = states_codes[i - 1]
        here = states_codes[i]
        if kind == INTRODUCE:
            v = int(nice.vertex[node])
            csrc, cout, lift = ops.introduce(
                ctxs[i - 1], ctxs[i], v, below
            )
        elif kind == FORGET:
            v = int(nice.vertex[node])
            csrc, cout, lift = ops.forget(ctxs[i - 1], ctxs[i], v, below)
        else:  # JOIN
            off_child = cs[0] if cs[1] == path_nodes[i - 1] else cs[1]
            li, ri, jout, ok = ops.join(
                ctxs[i], below, valid_codes[off_child]
            )
            csrc = li[ok]
            cout = jout[ok]
            lift = ops.join_lift(ctxs[i], below)
        counts = np.bincount(csrc, minlength=below.size)
        work += int(np.maximum(counts, 1).sum())
        pos, found = member_positions(here, cout)
        esrc = csrc[found]
        epos = pos[found]
        if esrc.size:
            here_n = np.int64(here.size)
            pair_keys = np.unique(esrc * here_n + epos)
            usrc = pair_keys // here_n
            upos = pair_keys % here_n
        else:
            pair_keys = usrc = upos = _EMPTY
        num_edges += int(usrc.size)
        edge_src_parts.append(offsets[i - 1] + usrc)
        edge_dst_parts.append(offsets[i] + upos)
        # f_up[src] is set exactly when the canonical lift is among src's
        # generated targets and locally plausible at the node above.
        lpos, lfound = member_positions(here, lift)
        cand = np.flatnonzero(lfound)
        if cand.size and pair_keys.size:
            lkeys = cand * np.int64(here.size) + lpos[cand]
            _p, inpairs = member_positions(pair_keys, lkeys)
            sel = cand[inpairs]
            f_up[offsets[i - 1] + sel] = offsets[i] + lpos[sel]
    work += total

    # ---- shortcuts on F (Lemma 3.3) --------------------------------------
    num_shortcuts = 0
    sc_src_parts: List[np.ndarray] = []
    sc_dst_parts: List[np.ndarray] = []
    if total > 1:
        sc_src_parts, sc_dst_parts = _forest_shortcuts(
            f_up, offsets, t, max(1, log2_ceil(max(total, 2)))
        )
        num_shortcuts = sum(int(a.size) for a in sc_src_parts)
        pd_cost = Cost(
            max(2 * total, 1), max(1, 2 * log2_ceil(max(total, 2)))
        )
    else:
        pd_cost = Cost.zero()
    work += num_shortcuts

    # ---- hop-bounded reachability (level-synchronous BFS) -----------------
    src_parts = edge_src_parts + sc_src_parts
    all_src = np.concatenate(src_parts) if src_parts else _EMPTY
    all_dst = (
        np.concatenate(edge_dst_parts + sc_dst_parts)
        if src_parts
        else _EMPTY
    )
    order = np.argsort(all_src, kind="stable")
    dst_sorted = all_dst[order]
    indptr = np.zeros(total + 1, dtype=np.int64)
    np.cumsum(
        np.bincount(all_src, minlength=total), out=indptr[1:]
    )

    reached = np.zeros(total, dtype=bool)
    frontier_parts = [np.arange(sizes[0], dtype=np.int64)]
    for i in range(1, t):
        trivial = np.flatnonzero(
            ops.trivial_source_mask(ctxs[i], states_codes[i])
        )
        if trivial.size:
            frontier_parts.append(offsets[i] + trivial)
    frontier = np.concatenate(frontier_parts)
    reached[frontier] = True
    rounds = 0
    bfs_work = int(frontier.size)
    while frontier.size:
        rounds += 1
        lo = indptr[frontier]
        hi = indptr[frontier + 1]
        bfs_work += int((hi - lo).sum())
        _q, bucket = expand_buckets(lo, hi)
        targets = dst_sorted[bucket] if bucket.size else bucket
        nxt = np.unique(targets)
        if nxt.size:
            nxt = nxt[~reached[nxt]]
        reached[nxt] = True
        frontier = nxt
    work += bfs_work

    out_codes = [
        states_codes[i][reached[offsets[i] : offsets[i + 1]]]
        for i in range(t)
    ]

    lg = log2_ceil(max(total, 2))
    build_work = max(work - bfs_work, 1)
    cost = (
        Cost(build_work, min(build_work, max(1, 4 * lg)))
        + pd_cost
        + Cost(max(bfs_work, 1), min(max(bfs_work, 1), max(rounds, 1)))
    )
    return _PackedPathResult(
        valid_codes=out_codes,
        num_states=total,
        num_edges=num_edges,
        num_shortcuts=num_shortcuts,
        bfs_rounds=rounds,
        cost=cost,
    )
