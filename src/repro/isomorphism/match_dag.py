"""The graph of partial matches over one decomposition path (Section 3.3.2)
with shortcuts (Section 3.3.3) and hop-bounded reachability.

Given a bottom-to-top path ``P`` of the (nice) decomposition tree whose
off-path children are already solved, validity of partial matches along P is
exactly reachability in a DAG:

* vertices — the locally plausible partial matches of every path node
  (``(tau + 3)^k`` of them at most; sparse-pruned);
* edges — compatibility of a child match with a parent match, conditioned on
  a *valid* match of the off-path child at join nodes;
* sources — the solved matches of the path's bottom node, plus every match
  that "does not mark any vertices as matched in a child" (such matches are
  unconditionally valid — Section 3.3.2's tagging rule);
* the *no-new-match forest F* — each match's unique canonical lift
  (Figure 5) — receives shortcuts: every F-tree is split into layered paths
  (Lemma 3.2 again), every ``ceil(log2 N)``-th path vertex becomes a hub
  carrying exponentially-spaced jumps, and every vertex gets an exit jump to
  its path top.  Any source-to-match walk then needs only
  O(k log N) hops (Lemma 3.3): at most k match-introducing edges, and each
  F-segment between them crosses O(log N) F-layers at O(log N) hops each —
  O(1) amortized through the exit jumps plus one O(log N) hub landing.

The BFS is level-synchronous; its round count is the measured depth, and
``tests/isomorphism`` property-checks that reachability reproduces the
sequential engine's valid sets exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..pram import Cost, log2_ceil
from ..treedecomp.nice import FORGET, INTRODUCE, JOIN, LEAF, NiceDecomposition
from ..treedecomp.tree_paths import layered_paths

__all__ = ["PathDAGResult", "solve_path"]

NIL = -1


@dataclass
class PathDAGResult:
    """Valid matches of every node on the path, plus diagnostics."""

    valid_per_node: List[Dict[tuple, int]]
    num_states: int
    num_edges: int
    num_shortcuts: int
    bfs_rounds: int
    cost: Cost


def _bottom_states(space, nice, node, kids, valid_tables) -> Dict[tuple, int]:
    """Directly solve the path's bottom node from its (off-path) children."""
    kind = nice.kinds[node]
    cs = kids[node]
    out: Dict[tuple, int] = {}
    if kind == LEAF:
        out[space.leaf_state()] = 1
    elif kind == INTRODUCE:
        v = int(nice.vertex[node])
        for s in valid_tables[cs[0]]:
            for t in space.introduce(v, s):
                out[t] = 1
    elif kind == FORGET:
        v = int(nice.vertex[node])
        for s in valid_tables[cs[0]]:
            t = space.forget(v, s)
            if t is not None:
                out[t] = 1
    elif kind == JOIN:
        left, right = cs
        buckets: Dict[tuple, List[tuple]] = {}
        for sr in valid_tables[right]:
            buckets.setdefault(space.join_key(sr), []).append(sr)
        for sl in valid_tables[left]:
            for sr in buckets.get(space.join_key(sl), ()):
                t = space.join(sl, sr)
                if t is not None:
                    out[t] = 1
    else:  # pragma: no cover
        raise ValueError(f"unknown node kind {kind!r}")
    return out


def solve_path(
    space,
    nice: NiceDecomposition,
    path_nodes: Sequence[int],
    valid_tables: List[Optional[Dict[tuple, int]]],
    node_stats: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> PathDAGResult:
    """Compute the valid partial matches of every node on ``path_nodes``
    (bottom-to-top) via the shortcut DAG (Lemma 3.3).

    ``node_stats`` optionally carries per-nice-node subtree statistics
    ``(forgotten_count, marked_forgotten)`` used to filter the local state
    enumeration (a sound prune — see ``admissible_at`` on the spaces).
    """
    kids = nice.children()
    t = len(path_nodes)
    work = 0

    # ---- vertex sets -------------------------------------------------------
    bottom = _bottom_states(space, nice, path_nodes[0], kids, valid_tables)
    states_per_node: List[List[tuple]] = [list(bottom.keys())]
    for i in range(1, t):
        node = path_nodes[i]
        states = space.local_states(nice.bags[node])
        if node_stats is not None:
            fc = int(node_stats[0][node])
            mf = bool(node_stats[1][node])
            states = [s for s in states if space.admissible_at(s, fc, mf)]
        states_per_node.append(states)
    index: List[Dict[tuple, int]] = []
    offsets = [0]
    for states in states_per_node:
        index.append({s: offsets[-1] + j for j, s in enumerate(states)})
        offsets.append(offsets[-1] + len(states))
    total = offsets[-1]
    work += total

    # ---- edges and the forest F -------------------------------------------
    adjacency: List[List[int]] = [[] for _ in range(total)]
    # F oriented along the DAG: f_up[src] = the vertex holding src's
    # canonical no-new-match lift (Figure 5); a forest of in-trees.
    f_up = np.full(total, NIL, dtype=np.int64)
    num_edges = 0

    def add_edge(src: int, dst: int) -> None:
        nonlocal num_edges
        adjacency[src].append(dst)
        num_edges += 1

    for i in range(1, t):
        node = path_nodes[i]
        kind = nice.kinds[node]
        cs = kids[node]
        here = index[i]
        below = index[i - 1]
        off_child_states = None
        buckets: Dict[tuple, List[tuple]] = {}
        if kind == JOIN:
            off_child = cs[0] if cs[1] == path_nodes[i - 1] else cs[1]
            off_child_states = valid_tables[off_child]
            for so in off_child_states:
                buckets.setdefault(space.join_key(so), []).append(so)
        v = int(nice.vertex[node]) if kind in (INTRODUCE, FORGET) else NIL
        for s, src in below.items():
            lift = space.lift(kind, v, s)
            targets: List[tuple] = []
            if kind == INTRODUCE:
                targets = list(space.introduce(v, s))
            elif kind == FORGET:
                tgt = space.forget(v, s)
                targets = [tgt] if tgt is not None else []
            else:  # JOIN
                for so in buckets.get(space.join_key(s), ()):
                    tgt = space.join(s, so)
                    if tgt is not None:
                        targets.append(tgt)
            work += max(len(targets), 1)
            targets = list(dict.fromkeys(targets))
            for tgt in targets:
                dst = here.get(tgt)
                if dst is None:
                    continue  # pruned locally (cannot be valid)
                add_edge(src, dst)
                if tgt == lift:
                    f_up[src] = dst
    work += total

    # ---- shortcuts on F (Lemma 3.3) ----------------------------------------
    num_shortcuts = 0
    if total > 1:
        pd, _ = layered_paths(np.asarray(f_up), None)
        # Charge Lemma 3.2's bound for the F decomposition (O(n) work,
        # O(log n) depth); the host-side layer evaluation is sequential but
        # the parallel evaluation is implemented and tested in repro.pram.
        pd_cost = Cost(
            max(2 * total, 1), max(1, 2 * log2_ceil(max(total, 2)))
        )
        h = max(1, log2_ceil(max(total, 2)))
        for f_path in pd.all_paths_bottom_up():
            ln = len(f_path)
            if ln <= 1:
                continue
            top = f_path[-1]
            for pos, u in enumerate(f_path[:-1]):
                # Exit jump to the path top.
                adjacency[u].append(top)
                num_shortcuts += 1
            hubs = f_path[::h]
            m = len(hubs)
            for a in range(m):
                step = 1
                while a + step < m:
                    adjacency[hubs[a]].append(hubs[a + step])
                    num_shortcuts += 1
                    step <<= 1
    else:
        pd_cost = Cost.zero()
    work += num_shortcuts

    # ---- hop-bounded reachability (level-synchronous BFS) ------------------
    reached = np.zeros(total, dtype=bool)
    frontier: List[int] = []
    for s, idx0 in index[0].items():
        reached[idx0] = True
        frontier.append(idx0)
    for i in range(1, t):
        for s, idx_i in index[i].items():
            if space.is_trivial_source(s) and not reached[idx_i]:
                reached[idx_i] = True
                frontier.append(idx_i)
    rounds = 0
    bfs_work = len(frontier)
    while frontier:
        rounds += 1
        nxt: List[int] = []
        for u in frontier:
            for w in adjacency[u]:
                bfs_work += 1
                if not reached[w]:
                    reached[w] = True
                    nxt.append(w)
        frontier = nxt
    work += bfs_work

    valid_per_node: List[Dict[tuple, int]] = []
    for i in range(t):
        valid_per_node.append(
            {s: 1 for s, idx_i in index[i].items() if reached[idx_i]}
        )

    lg = log2_ceil(max(total, 2))
    build_work = max(work - bfs_work, 1)
    cost = (
        Cost(build_work, min(build_work, max(1, 4 * lg)))
        + pd_cost
        + Cost(max(bfs_work, 1), min(max(bfs_work, 1), max(rounds, 1)))
    )
    return PathDAGResult(
        valid_per_node=valid_per_node,
        num_states=total,
        num_edges=num_edges,
        num_shortcuts=num_shortcuts,
        bfs_rounds=rounds,
        cost=cost,
    )
