"""Apex-minor-free / bounded-genus generalization (Section 4.3, Thm 4.4).

The k-d cover "does not use anything specific to planar graphs" — it only
needs (a) the clustering, (b) BFS windows, and (c) a tree decomposition of
each window whose width is bounded by a function of the window's diameter
(locally bounded treewidth).  For planar targets that function is 3d (Baker,
Section 2); for the general minor-closed case the paper invokes Lagergren's
parallel decomposition [34], for which this library substitutes the
validated min-fill heuristic (DESIGN.md, Substitutions — the E11 benchmark
reports the widths achieved on genus-1 targets).

The module therefore provides an embedding-free cover plus a general driver
usable on, e.g., torus grids.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..cluster.est import est_clustering
from ..graphs.bfs import parallel_bfs
from ..graphs.components import component_members
from ..graphs.csr import Graph
from ..pram import Cost, ShadowArray, Tracker
from ..treedecomp.minfill import minfill_decomposition
from ..treedecomp.nice import make_nice
from .cover import CoverPiece, TreewidthCover
from .pattern import Pattern
from .parallel_dp import parallel_dp
from .recovery import first_witness
from .sequential_dp import sequential_dp
from .planar_si import PlanarSIResult, _rounds_for
from .state_space import SubgraphStateSpace

__all__ = ["local_treewidth_cover", "decide_subgraph_isomorphism_general"]

NIL = -1


def local_treewidth_cover(
    graph: Graph, k: int, d: int, seed: int
) -> TreewidthCover:
    """The k-d cover for graphs of locally bounded treewidth (Section 4.3).

    Identical clustering + window structure as the planar cover; each
    window's decomposition comes from the min-fill heuristic (Lagergren
    substitute), so the width bound is *measured*, not proven — valid
    decompositions regardless.
    """
    if k < 1 or d < 0:
        raise ValueError("need k >= 1 and d >= 0")
    tracker = Tracker()
    clustering, cost = est_clustering(graph, beta=2.0 * k, seed=seed)
    tracker.charge(cost)
    pieces: List[CoverPiece] = []
    with tracker.parallel() as region:
        vertex_cells = ShadowArray("cluster-vertices", graph.n)
        for cluster_id, members in enumerate(
            component_members(clustering.labels, clustering.count)
        ):
            with region.branch() as branch:
                branch.record_writes(vertex_cells, members)
                sub, originals = graph.induced_subgraph(members)
                branch.charge(Cost.step(max(sub.n, 1)))
                if sub.n == 0:
                    continue
                bfs, bcost = parallel_bfs(sub, [0])
                branch.charge(bcost)
                last = max(0, bfs.depth - d)
                for i in range(last + 1):
                    window = np.flatnonzero(
                        (bfs.level >= i) & (bfs.level <= i + d)
                    )
                    if window.size == 0:
                        continue
                    piece_graph, piece_orig = sub.induced_subgraph(window)
                    td, dcost = minfill_decomposition(piece_graph)
                    branch.charge(dcost)
                    pieces.append(
                        CoverPiece(
                            graph=piece_graph,
                            originals=originals[piece_orig],
                            decomposition=td,
                            cluster=cluster_id,
                            window_start=i,
                        )
                    )
    return TreewidthCover(
        pieces=pieces, num_clusters=clustering.count, cost=tracker.cost
    )


def decide_subgraph_isomorphism_general(
    graph: Graph,
    pattern: Pattern,
    seed: int,
    engine: str = "parallel",
    rounds: Optional[int] = None,
    confidence_log_factor: float = 2.0,
    want_witness: bool = False,
) -> PlanarSIResult:
    """Theorem 4.4 driver: connected patterns in any graph whose windows
    have manageable treewidth (bounded genus, apex-minor-free, ...).

    Monte Carlo with the same one-sided guarantee as the planar driver.
    """
    if not pattern.is_connected():
        raise ValueError("the driver handles connected patterns")
    if engine not in ("parallel", "sequential"):
        raise ValueError(f"unknown engine {engine!r}")
    k, d = pattern.k, pattern.diameter()
    tracker = Tracker()
    total_rounds = _rounds_for(graph.n, rounds, confidence_log_factor)
    pieces_examined = 0
    max_width = 0
    for r in range(total_rounds):
        cover = local_treewidth_cover(graph, k, d, seed=seed + r)
        tracker.charge(cover.cost)
        found = False
        found_witness: Optional[Dict[int, int]] = None
        with tracker.parallel() as region:
            for piece in cover.pieces:
                if piece.graph.n < k:
                    continue
                pieces_examined += 1
                max_width = max(max_width, piece.decomposition.width())
                nice, ncost = make_nice(piece.decomposition.binarize())
                space = SubgraphStateSpace(pattern, piece.graph)
                with region.branch() as branch:
                    branch.charge(ncost)
                    result = (
                        parallel_dp(space, nice)
                        if engine == "parallel"
                        else sequential_dp(space, nice)
                    )
                    branch.charge(result.cost)
                if result.found and not found:
                    found = True
                    if want_witness:
                        w = first_witness(space, nice, result.valid)
                        if w is not None:
                            found_witness = {
                                p: int(piece.originals[v])
                                for p, v in w.items()
                            }
        if found:
            return PlanarSIResult(
                found=True,
                witness=found_witness,
                rounds_used=r + 1,
                cost=tracker.cost,
                pieces_examined=pieces_examined,
                max_piece_width=max_width,
            )
    return PlanarSIResult(
        found=False,
        witness=None,
        rounds_used=total_rounds,
        cost=tracker.cost,
        pieces_examined=pieces_examined,
        max_piece_width=max_width,
    )
