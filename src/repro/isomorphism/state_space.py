"""Partial matches (Section 3.1) and their transition rules.

A partial match of a decomposition node X is the paper's triple
``(phi, C, U)``: an isomorphism ``phi`` of a sub-pattern into G[X], the set
``C`` of pattern vertices matched strictly below X ("matched in a child"),
and the set ``U`` of pattern vertices not yet matched.  We encode a state as
a tuple of ``k`` ints: ``state[p]`` is the target vertex ``phi(p)``, or
``UNMATCHED`` (-1, the set U), or ``IN_CHILD`` (-2, the set C).

Transitions are phrased over *nice* decompositions (introduce / forget /
join single steps; ``repro.treedecomp.nice``), which factor the paper's
parent/child consistency and compatibility rules (Section 3.2) into sparse
local rules:

* introduce(v): the new bag vertex may match any unmatched pattern vertex
  whose already-mapped H-neighbors are G-adjacent to v and that has no
  H-neighbor already forgotten (an edge into a forgotten target could never
  be realized);
* forget(v): forced — the pattern vertex on v (if any) moves to C, but only
  if all its H-neighbors are matched or in C (the paper's consistency rule
  "if phi_Y matches v to a vertex not in the parent, mark it matched in a
  child" plus edge realizability);
* join: the two children agree on phi (they share the bag) and their C sets
  are disjoint — the paper's "matched in exactly one of the children".

The same protocol is implemented by the extended state space of Section 5.2
(``repro.separating.state_space``), so every engine (sequential bottom-up,
parallel path/DAG/shortcut) works for both problems unchanged.

The optional ``allowed`` mask restricts matches to a vertex subset — the set
A of allowed vertices from the separating cover (Section 5.2.1), also useful
on its own (e.g. to exclude merged vertices).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.csr import Graph
from .pattern import Pattern

__all__ = ["UNMATCHED", "IN_CHILD", "SubgraphStateSpace", "State"]

UNMATCHED = -1
IN_CHILD = -2

State = Tuple[int, ...]


class SubgraphStateSpace:
    """The (phi, C, U) state space for plain subgraph isomorphism."""

    def __init__(
        self,
        pattern: Pattern,
        graph: Graph,
        allowed: Optional[np.ndarray] = None,
        host_classes: Optional[np.ndarray] = None,
        pattern_classes: Optional[Sequence[Optional[int]]] = None,
    ) -> None:
        self.pattern = pattern
        self.graph = graph
        self.k = pattern.k
        if allowed is not None:
            allowed = np.asarray(allowed, dtype=bool)
            if allowed.shape != (graph.n,):
                raise ValueError("allowed mask must cover every vertex")
        self.allowed = allowed
        # Optional class constraints: pattern vertex p may only map to
        # target vertices whose host class matches pattern_classes[p]
        # (None = unconstrained).  The vertex connectivity pipeline uses
        # this to force cycle parity onto the original/face bipartition of
        # G' — a pure symmetry reduction (every alternating cycle admits a
        # rotation matching the classes).
        if (host_classes is None) != (pattern_classes is None):
            raise ValueError("host and pattern classes come together")
        if host_classes is not None:
            host_classes = np.asarray(host_classes, dtype=np.int64)
            if host_classes.shape != (graph.n,):
                raise ValueError("host classes must cover every vertex")
            if len(pattern_classes) != self.k:
                raise ValueError("pattern classes must cover the pattern")
        self.host_classes = host_classes
        self.pattern_classes = (
            list(pattern_classes) if pattern_classes is not None else None
        )
        self._local_cache: dict = {}
        self._packed_ops = None

    def packed_ops(self):
        """The packed int64 kernel set for this space (cached; see
        ``repro.isomorphism.packed``)."""
        if self._packed_ops is None:
            from .packed import PackedSubgraphOps

            self._packed_ops = PackedSubgraphOps(self)
        return self._packed_ops

    # -- basic states ------------------------------------------------------

    def leaf_state(self) -> State:
        return (UNMATCHED,) * self.k

    def is_accepting(self, s: State) -> bool:
        return all(x == IN_CHILD for x in s)

    def statistics_key(self, s: State) -> tuple:
        return s

    def is_trivial_source(self, s: State) -> bool:
        """States that mark nothing as matched-in-a-child are valid
        unconditionally (Section 3.3.2's tagging rule): they claim only
        facts about the bag itself."""
        return all(x != IN_CHILD for x in s)

    def is_marked_vertex(self, v: int) -> bool:
        """No marked set in the plain problem (see the separating space)."""
        return False

    def admissible_at(
        self, s: State, forgotten_count: int, marked_forgotten: bool
    ) -> bool:
        """Cheap per-node soundness filter for locally enumerated states:
        each C-vertex maps to a target vertex forgotten strictly below the
        node, so ``|C|`` cannot exceed the number of forget steps there."""
        return sum(1 for x in s if x == IN_CHILD) <= forgotten_count

    # -- transitions -------------------------------------------------------

    def _can_host(self, v: int) -> bool:
        return self.allowed is None or bool(self.allowed[v])

    def _class_ok(self, p: int, v: int) -> bool:
        if self.pattern_classes is None:
            return True
        want = self.pattern_classes[p]
        return want is None or int(self.host_classes[v]) == want

    def introduce(self, v: int, s: State) -> Iterator[State]:
        """All parent states over child state ``s`` when ``v`` joins the bag."""
        yield s  # v hosts no pattern vertex
        if not self._can_host(v):
            return
        has_edge = self.graph.has_edge
        for p in range(self.k):
            if s[p] != UNMATCHED or not self._class_ok(p, v):
                continue
            ok = True
            for q in self.pattern.neighbors(p):
                sq = s[q]
                if sq == IN_CHILD:
                    ok = False  # edge (p, q) could never be realized
                    break
                if sq >= 0 and not has_edge(v, sq):
                    ok = False
                    break
            if ok:
                yield s[:p] + (v,) + s[p + 1 :]

    def forget(self, v: int, s: State) -> Optional[State]:
        """The unique parent state when ``v`` leaves the bag (or None)."""
        for p in range(self.k):
            if s[p] == v:
                for q in self.pattern.neighbors(p):
                    if s[q] == UNMATCHED:
                        return None  # edge (p, q) would never be realized
                return s[:p] + (IN_CHILD,) + s[p + 1 :]
        return s

    def join(self, sl: State, sr: State) -> Optional[State]:
        """Combine compatible children of a join node (same bag)."""
        out: List[int] = []
        for a, b in zip(sl, sr):
            if a >= 0 or b >= 0:
                if a != b:
                    return None
                out.append(a)
            elif a == IN_CHILD:
                if b == IN_CHILD:
                    return None  # matched strictly below both sides
                out.append(IN_CHILD)
            elif b == IN_CHILD:
                out.append(IN_CHILD)
            else:
                out.append(UNMATCHED)
        return tuple(out)

    def join_key(self, s: State) -> State:
        """Bucketing key for join compatibility: the mapped part of phi."""
        return tuple(x if x >= 0 else UNMATCHED for x in s)

    # -- canonical no-new-match lift (Figure 5) -----------------------------

    def lift(self, kind: str, v: int, s: State) -> Optional[State]:
        """The unique parent state that introduces no new match."""
        if kind == "introduce":
            return s
        if kind == "forget":
            return self.forget(v, s)
        if kind == "join":
            # Combine with the always-valid (phi, C = empty) twin.
            return s
        if kind == "leaf":
            return None
        raise ValueError(f"unknown node kind {kind!r}")

    # -- backward transitions (occurrence recovery, Section 4.2.1) ----------

    def introduce_preimage_candidates(
        self, v: int, s: State
    ) -> List[Tuple[State, Optional[int]]]:
        """Child states under an introduce node, each with the pattern
        vertex newly matched to ``v`` (or None).  Unique for this space;
        the separating space can have several (boolean history)."""
        for p in range(self.k):
            if s[p] == v:
                return [(s[:p] + (UNMATCHED,) + s[p + 1 :], p)]
        return [(s, None)]

    def forget_preimage_candidates(self, v: int, s: State) -> List[State]:
        """Child states that could forget ``v`` into ``s`` (unverified)."""
        out = [s]
        for p in range(self.k):
            if s[p] == IN_CHILD:
                out.append(s[:p] + (v,) + s[p + 1 :])
        return out

    def join_splits(self, s: State) -> Iterator[Tuple[State, State]]:
        """All (left, right) child pairs combining to ``s`` (unverified)."""
        c_positions = [p for p in range(self.k) if s[p] == IN_CHILD]
        base = tuple(x if x >= 0 else UNMATCHED for x in s)
        m = len(c_positions)
        for mask in range(1 << m):
            sl = list(base)
            sr = list(base)
            for i, p in enumerate(c_positions):
                if mask >> i & 1:
                    sl[p] = IN_CHILD
                else:
                    sr[p] = IN_CHILD
            yield tuple(sl), tuple(sr)

    # -- local enumeration (parallel engine, Section 3.3.2) -----------------

    def local_states(self, bag: Sequence[int]) -> List[State]:
        """Every locally plausible state of a bag.

        The enumeration realizes the paper's (tau + 3)^k bound: each pattern
        vertex is unmatched, matched-in-a-child, or on one of the <= tau + 1
        bag vertices; locally infeasible combinations (broken injectivity,
        missing pattern edges inside the bag, an unmatched pattern vertex
        H-adjacent to a forgotten one) are pruned.
        """
        bag = [int(v) for v in bag]
        cache_key = tuple(bag)
        cached = self._local_cache.get(cache_key)
        if cached is not None:
            return cached
        hostable = [v for v in bag if self._can_host(v)]
        k = self.k
        has_edge = self.graph.has_edge
        states: List[State] = []
        assignment: List[int] = [UNMATCHED] * k
        used: set = set()

        def extend(p: int) -> None:
            if p == k:
                states.append(tuple(assignment))
                return
            # Option 1: p not on the bag (U for now; C refined later).
            assignment[p] = UNMATCHED
            extend(p + 1)
            # Option 2: p hosted by a free bag vertex consistent with
            # already-assigned H-neighbors.
            for v in hostable:
                if v in used or not self._class_ok(p, v):
                    continue
                ok = True
                for q in self.pattern.neighbors(p):
                    if q < p and assignment[q] >= 0:
                        if not has_edge(v, assignment[q]):
                            ok = False
                            break
                if ok:
                    assignment[p] = v
                    used.add(v)
                    extend(p + 1)
                    used.discard(v)
                    assignment[p] = UNMATCHED

        extend(0)

        # Refine each mapped skeleton: distribute the unmatched pattern
        # vertices over {U, C}, pruning C members with an H-neighbor in U.
        out: List[State] = []
        for skel in states:
            free = [p for p in range(k) if skel[p] == UNMATCHED]
            f = len(free)
            for mask in range(1 << f):
                ok = True
                arr = list(skel)
                for i, p in enumerate(free):
                    if mask >> i & 1:
                        arr[p] = IN_CHILD
                for i, p in enumerate(free):
                    if mask >> i & 1:
                        for q in self.pattern.neighbors(p):
                            if arr[q] == UNMATCHED:
                                ok = False
                                break
                    if not ok:
                        break
                if ok:
                    out.append(tuple(arr))
        self._local_cache[cache_key] = out
        return out
