"""Property tests for the span-tree Brent scheduler.

The load-bearing invariant (ISSUE acceptance criterion): for every span
tree with work W and depth D and every processor count P,

    max(ceil(W / P), D)  <=  T_P  <=  ceil(W / P) + D

with T_1 == W exactly and T_P non-increasing in P.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram import (
    Cost,
    Span,
    Tracer,
    schedule_speedup_curve,
    simulate_schedule,
)

PROCS = [1, 2, 3, 5, 16, 64, 1000]


@st.composite
def _leaf(draw):
    work = draw(st.integers(min_value=1, max_value=300))
    depth = draw(st.integers(min_value=1, max_value=min(12, work)))
    return ("leaf", work, depth)


_specs = st.recursive(
    _leaf(),
    lambda children: st.tuples(
        st.sampled_from(["seq", "par"]),
        st.lists(children, min_size=1, max_size=4),
    ),
    max_leaves=12,
)


def _materialize(spec, tracer) -> None:
    kind = spec[0]
    if kind == "leaf":
        tracer.charge(Cost(spec[1], spec[2]))
    elif kind == "seq":
        for child in spec[1]:
            with tracer.span("seq-child"):
                _materialize(child, tracer)
    else:
        with tracer.parallel("par") as region:
            for child in spec[1]:
                with region.branch("branch") as br:
                    _materialize(child, br)


def _build(spec) -> Span:
    tracer = Tracer("root")
    _materialize(spec, tracer)
    return tracer.root


class TestBrentSandwich:
    @settings(max_examples=60, deadline=None)
    @given(_specs)
    def test_sandwich_holds_for_every_processor_count(self, spec):
        root = _build(spec)
        W, D = root.work, root.depth
        for P in PROCS:
            sched = simulate_schedule(root, P)
            lo = max(math.ceil(W / P), D)
            hi = math.ceil(W / P) + D
            assert lo <= sched.makespan <= hi, (
                f"P={P} W={W} D={D}: {sched.makespan} not in [{lo}, {hi}]"
            )
            assert sched.makespan <= sched.brent_bound()
            assert sched.makespan >= sched.ideal_time()

    @settings(max_examples=60, deadline=None)
    @given(_specs)
    def test_one_processor_executes_exactly_the_work(self, spec):
        root = _build(spec)
        assert simulate_schedule(root, 1).makespan == root.work

    @settings(max_examples=40, deadline=None)
    @given(_specs)
    def test_makespan_non_increasing_in_processors(self, spec):
        root = _build(spec)
        times = [simulate_schedule(root, P).makespan for P in PROCS]
        assert times == sorted(times, reverse=True)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=100_000),
        st.integers(min_value=1, max_value=500),
    )
    def test_flat_trace_agrees_with_cost_brent_time(self, extra, depth):
        # A single flat charge: the schedule lands inside the scalar
        # sandwich evaluated by Cost.brent_time.
        work = depth + extra
        tracer = Tracer("flat")
        tracer.charge(Cost(work, depth))
        root = tracer.root
        for P in (1, 4, 64):
            sched = simulate_schedule(root, P)
            assert sched.makespan <= Cost(work, depth).brent_time(P)
            assert sched.makespan >= max(math.ceil(work / P), depth)
            if P == 1:
                assert sched.makespan == work


class TestScheduleSurface:
    def _sample_root(self) -> Span:
        tracer = Tracer("driver")
        tracer.charge(Cost(40, 4), label="setup")
        with tracer.parallel("pieces") as region:
            for i, (w, d) in enumerate([(900, 30), (200, 10), (64, 1)]):
                with region.branch(f"piece-{i}") as br:
                    br.charge(Cost(w, d))
        with tracer.span("teardown"):
            tracer.charge(Cost(16, 2))
        return tracer.root

    def test_rejects_nonpositive_processors(self):
        with pytest.raises(ValueError):
            simulate_schedule(self._sample_root(), 0)
        with pytest.raises(ValueError):
            simulate_schedule(self._sample_root(), -4)

    def test_empty_trace(self):
        sched = simulate_schedule(Tracer("empty").root, 8)
        assert sched.makespan == 0
        assert sched.spans == ()
        assert sched.utilization == 1.0
        assert sched.speedup == 1.0

    def test_spans_cover_the_work_within_the_makespan(self):
        root = self._sample_root()
        sched = simulate_schedule(root, 8)
        assert sum(s.work for s in sched.spans) == root.work
        assert all(0 <= s.start < s.finish <= sched.makespan
                   for s in sched.spans)
        assert max(s.finish for s in sched.spans) == sched.makespan
        # Mean occupancy of any window never exceeds the machine width.
        assert all(s.processors <= 8 + 1e-9 for s in sched.spans)

    def test_critical_path_is_a_time_ordered_chain_ending_last(self):
        sched = simulate_schedule(self._sample_root(), 8)
        crit = sched.critical_path
        assert crit
        assert crit[-1].finish == sched.makespan
        assert all(a.finish <= b.start or a is b
                   for a, b in zip(crit, crit[1:]))

    def test_utilization_and_speedup_are_consistent(self):
        root = self._sample_root()
        for P in (1, 3, 16):
            sched = simulate_schedule(root, P)
            assert sched.speedup == pytest.approx(
                root.work / sched.makespan
            )
            assert sched.utilization == pytest.approx(
                sched.speedup / P
            )
            assert sched.utilization <= 1.0 + 1e-9

    def test_sequential_children_serialize(self):
        tracer = Tracer("root")
        with tracer.span("first"):
            tracer.charge(Cost(100, 1))
        with tracer.span("second"):
            tracer.charge(Cost(100, 1))
        sched = simulate_schedule(tracer.root, 64)
        first, second = sched.spans
        assert first.finish <= second.start

    def test_parallel_children_overlap_given_processors(self):
        tracer = Tracer("root")
        with tracer.parallel("pieces") as region:
            for i in range(2):
                with region.branch(f"b{i}") as br:
                    br.charge(Cost(100, 1))
        sched = simulate_schedule(tracer.root, 200)
        a, b = sched.spans
        assert a.start == b.start == 0

    def test_speedup_curve_matches_simulation(self):
        root = self._sample_root()
        curve = schedule_speedup_curve(root, [1, 2, 8])
        for P in (1, 2, 8):
            sched = simulate_schedule(root, P)
            assert curve[P] == pytest.approx(root.work / sched.makespan)
        assert curve[1] == pytest.approx(1.0)

    def test_deterministic(self):
        root = self._sample_root()
        a = simulate_schedule(root, 8)
        b = simulate_schedule(root, 8)
        assert a == b
