"""The trace substrate: span-tree accounting vs the Cost algebra.

The key property: a :class:`Tracer` drives the exact same ``Cost.seq`` /
``Cost.par`` arithmetic as folding the corresponding cost expression by
hand — nesting spans and parallel regions only adds attribution, never
changes totals.  Random "trace programs" (nested seq blocks, parallel
regions, charges) are interpreted twice — once declaratively over ``Cost``,
once through a ``Tracer`` — and must agree; the recorded tree's running
totals must equal its from-scratch fold.
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pram import (
    Cost,
    Span,
    Tracer,
    Tracker,
    aggregate_phases,
    format_trace,
    span_from_dict,
)

# -- random trace programs -------------------------------------------------
#
# A program is a list of ops, run sequentially:
#   ("charge", work, depth)      one direct charge
#   ("seq", name, [ops])         a named span around a subprogram
#   ("par", name, [[ops], ...])  a parallel region, one branch per subprogram

costs = st.tuples(
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
).map(lambda t: ("charge", max(t), min(t)))

programs = st.recursive(
    st.lists(costs, max_size=4),
    lambda inner: st.one_of(
        st.lists(
            st.one_of(
                costs,
                st.tuples(st.just("seq"), st.sampled_from("abc"), inner).map(
                    tuple
                ),
                st.tuples(
                    st.just("par"),
                    st.sampled_from("xyz"),
                    st.lists(inner, max_size=3),
                ).map(tuple),
            ),
            max_size=4,
        ),
    ),
    max_leaves=20,
)


def expected_cost(program) -> Cost:
    """Declarative fold of a program over the Cost algebra."""
    parts = []
    for op in program:
        if op[0] == "charge":
            parts.append(Cost(op[1], op[2]))
        elif op[0] == "seq":
            parts.append(expected_cost(op[2]))
        else:
            parts.append(Cost.par(expected_cost(b) for b in op[2]))
    return Cost.seq(parts)


def run_program(tracer: Tracer, program, labeled: bool) -> None:
    """Drive the same program through a Tracer."""
    for op in program:
        if op[0] == "charge":
            if labeled:
                tracer.charge(Cost(op[1], op[2]), label="leaf")
            else:
                tracer.charge(Cost(op[1], op[2]))
        elif op[0] == "seq":
            with tracer.span(op[1]):
                run_program(tracer, op[2], labeled)
        else:
            with tracer.parallel(op[1]) as region:
                for sub in op[2]:
                    with region.branch() as branch:
                        run_program(branch, sub, labeled)


class TestCostAlgebraEquivalence:
    @given(programs, st.booleans())
    def test_tracer_matches_declarative_fold(self, program, labeled):
        tracer = Tracer()
        run_program(tracer, program, labeled)
        want = expected_cost(program)
        assert tracer.cost == want
        assert tracer.root.cost == want

    @given(programs)
    def test_running_totals_equal_recursive_fold(self, program):
        tracer = Tracer()
        run_program(tracer, program, labeled=False)
        for span in tracer.root.walk():
            assert span.cost == span.folded()

    @given(programs)
    def test_labels_do_not_change_totals(self, program):
        plain, labeled = Tracer(), Tracer()
        run_program(plain, program, labeled=False)
        run_program(labeled, program, labeled=True)
        assert plain.cost == labeled.cost

    @given(programs)
    def test_cost_readable_inside_open_span(self, program):
        """Drivers read ``tracker.cost`` before their outermost span
        closes; the open-stack fold must already include everything."""
        tracer = Tracer()
        with tracer.span("outer"):
            run_program(tracer, program, labeled=False)
            inside = tracer.cost
        assert inside == expected_cost(program)
        assert tracer.cost == inside


class TestTrackerCompatibility:
    def test_alias(self):
        assert Tracker is Tracer

    def test_flat_usage_unchanged(self):
        t = Tracker()
        t.charge(Cost(10, 2))
        t.step(5)
        with t.parallel() as region:
            region.add(Cost(7, 3))
            with region.branch() as b:
                b.charge(Cost(9, 4))
        assert t.cost == Cost(10, 2) + Cost(5, 1) + (Cost(7, 3) | Cost(9, 4))


class TestExceptionSafety:
    def test_span_keeps_charges_on_raise(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("phase"):
                t.charge(Cost(10, 2))
                raise RuntimeError("boom")
        assert t.cost == Cost(10, 2)
        assert t.root.find("phase").cost == Cost(10, 2)
        assert t.current is t.root  # stack unwound

    def test_parallel_keeps_branches_on_raise(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.parallel() as region:
                region.add(Cost(8, 3))
                raise RuntimeError("boom")
        assert t.cost == Cost(8, 3)

    def test_branch_keeps_charges_on_raise(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.parallel() as region:
                with region.branch() as b:
                    b.charge(Cost(4, 2))
                    raise RuntimeError("boom")
        assert t.cost == Cost(4, 2)


class TestSpanTree:
    def test_structure_and_counters(self):
        t = Tracer("run")
        with t.span("cover", k=3):
            t.charge(Cost(5, 1), label="clustering", clusters=2)
            t.count(pieces=4)
        cover = t.root.find("cover")
        assert cover.counters == {"k": 3, "pieces": 4}
        assert [c.name for c in cover.children] == ["clustering"]
        assert cover.find("clustering").counters == {"clusters": 2}
        assert t.root.find_all("cover") == [cover]
        assert t.root.find("missing") is None

    def test_attach_folds_sequentially(self):
        helper = Tracer("helper")
        helper.charge(Cost(6, 2))
        t = Tracer()
        t.charge(Cost(10, 3))
        t.attach(helper.root)
        assert t.cost == Cost(16, 5)
        assert t.root.children[-1] is helper.root

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            Span("x", mode="quantum")


class TestSerialization:
    @given(programs)
    def test_roundtrip(self, program):
        tracer = Tracer()
        run_program(tracer, program, labeled=True)
        tracer.count(n=7)
        data = json.loads(json.dumps(tracer.root.to_dict()))
        back = span_from_dict(data)
        assert back.to_dict() == tracer.root.to_dict()
        assert back.cost == tracer.root.cost == back.folded()


class TestRendering:
    def _sample(self):
        t = Tracer("run")
        with t.span("cover"):
            t.charge(Cost(100, 4), label="clustering")
        with t.parallel("pieces") as region:
            for _ in range(3):
                with region.branch("dp-solve") as b:
                    b.charge(Cost(50, 5))
        return t

    def test_format_trace_table(self):
        t = self._sample()
        text = format_trace(t.root)
        assert "phase" in text and "work" in text and "depth" in text
        assert "cover" in text
        assert "dp-solve x3" in text  # merged siblings
        assert "pieces ||" in text  # parallel marker
        assert f"{t.cost.work:,}" in text

    def test_format_trace_unmerged_and_limits(self):
        t = self._sample()
        text = format_trace(t.root, merge_siblings=False)
        assert text.count("dp-solve") == 3
        shallow = format_trace(t.root, max_depth=1)
        assert "clustering" not in shallow
        filtered = format_trace(t.root, min_work_fraction=0.9)
        assert "below threshold" in filtered

    def test_aggregate_phases(self):
        t = self._sample()
        agg = aggregate_phases(t.root)
        assert agg["dp-solve"] == {"work": 150, "count": 3, "max_depth": 5}
        assert agg["pieces"]["work"] == 150
        assert agg["run"]["work"] == t.cost.work
