"""Tree-contraction expression evaluation vs a direct recursive evaluator."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pram import Algebra, BinaryExpressionTree, evaluate_expression_tree
from repro.pram.layer_algebra import (
    IDENTITY,
    apply_fn,
    compose,
    layer_op,
    project_layer_op,
)

LAYER_ALGEBRA = Algebra(
    identity=IDENTITY,
    compose=compose,
    apply=apply_fn,
    project=project_layer_op,
    op=layer_op,
)


def random_full_binary_tree(n_internal: int, rnd) -> BinaryExpressionTree:
    """Grow a full binary tree with ``n_internal`` internal nodes by
    repeatedly splitting a random leaf."""
    n = 2 * n_internal + 1
    left = np.full(n, -1, dtype=np.int64)
    right = np.full(n, -1, dtype=np.int64)
    next_id = 1
    leaves = [0]
    for _ in range(n_internal):
        v = leaves.pop(rnd.randrange(len(leaves)))
        left[v] = next_id
        right[v] = next_id + 1
        leaves.extend([next_id, next_id + 1])
        next_id += 2
    return BinaryExpressionTree(
        left=left, right=right, root=0, leaf_value=np.zeros(n, dtype=np.int64)
    )


def reference_values(tree: BinaryExpressionTree) -> np.ndarray:
    """Direct post-order evaluation."""
    values = np.full(tree.n, -1, dtype=np.int64)
    stack = [(tree.root, False)]
    while stack:
        v, expanded = stack.pop()
        if tree.left[v] == -1:
            values[v] = int(tree.leaf_value[v])
        elif expanded:
            values[v] = layer_op(
                int(values[tree.left[v]]), int(values[tree.right[v]])
            )
        else:
            stack.append((v, True))
            stack.append((int(tree.left[v]), False))
            stack.append((int(tree.right[v]), False))
    return values


class TestContraction:
    def test_single_leaf(self):
        tree = BinaryExpressionTree(
            left=np.array([-1]), right=np.array([-1]), root=0,
            leaf_value=np.array([0]),
        )
        values, _ = evaluate_expression_tree(tree, LAYER_ALGEBRA)
        assert values[0] == 0

    def test_one_internal_node(self):
        # root 0 with two leaves -> both layer 0 -> root layer 1.
        tree = BinaryExpressionTree(
            left=np.array([1, -1, -1]),
            right=np.array([2, -1, -1]),
            root=0,
            leaf_value=np.zeros(3, dtype=np.int64),
        )
        values, _ = evaluate_expression_tree(tree, LAYER_ALGEBRA)
        assert values.tolist() == [1, 0, 0]

    def test_left_caterpillar_stays_layer_zero_plus_one(self):
        # A left-leaning chain: every internal node has a leaf right child.
        # L(l, 0) stays max-unique until l == 0: layers climb to 1 then stay.
        n_internal = 20
        n = 2 * n_internal + 1
        left = np.full(n, -1, dtype=np.int64)
        right = np.full(n, -1, dtype=np.int64)
        node = 0
        for i in range(n_internal):
            left[node] = node + 2
            right[node] = node + 1
            node += 2
        tree = BinaryExpressionTree(
            left=left, right=right, root=0, leaf_value=np.zeros(n, dtype=np.int64)
        )
        values, _ = evaluate_expression_tree(tree, LAYER_ALGEBRA)
        assert np.array_equal(values, reference_values(tree))
        # Caterpillar: the bottom internal node is 1, all above stay 1.
        internals = [v for v in range(n) if left[v] != -1]
        assert all(values[v] == 1 for v in internals)

    def test_complete_tree_layers_grow_logarithmically(self):
        # A perfect binary tree of height h gets layer h at the root
        # (both children always tie).
        h = 6
        n = 2 ** (h + 1) - 1
        left = np.full(n, -1, dtype=np.int64)
        right = np.full(n, -1, dtype=np.int64)
        for v in range((n - 1) // 2):
            left[v] = 2 * v + 1
            right[v] = 2 * v + 2
        tree = BinaryExpressionTree(
            left=left, right=right, root=0, leaf_value=np.zeros(n, dtype=np.int64)
        )
        values, cost = evaluate_expression_tree(tree, LAYER_ALGEBRA)
        assert values[0] == h
        assert np.array_equal(values, reference_values(tree))
        # Work linear, depth logarithmic (generous constants).
        assert cost.work <= 60 * n
        assert cost.depth <= 12 * (h + 2)

    @given(
        st.integers(min_value=1, max_value=120),
        st.randoms(use_true_random=False),
    )
    def test_matches_reference_on_random_trees(self, n_internal, rnd):
        tree = random_full_binary_tree(n_internal, rnd)
        values, cost = evaluate_expression_tree(tree, LAYER_ALGEBRA)
        assert np.array_equal(values, reference_values(tree))
        n = tree.n
        assert cost.work <= 120 * n
        assert cost.depth <= 30 * (int(np.ceil(np.log2(n + 1))) + 2)

    def test_malformed_tree_rejected(self):
        with pytest.raises(ValueError):
            BinaryExpressionTree(
                left=np.array([1, -1]),
                right=np.array([-1, -1]),
                root=0,
                leaf_value=np.zeros(2, dtype=np.int64),
            )
