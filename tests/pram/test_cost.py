"""Property and unit tests for the work--depth cost algebra."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pram import Cost, log2_ceil


def costs() -> st.SearchStrategy[Cost]:
    return st.builds(
        lambda d, extra: Cost(d + extra, d),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
    )


class TestConstruction:
    def test_zero(self):
        assert Cost.zero() == Cost(0, 0)

    def test_step(self):
        assert Cost.step(7) == Cost(7, 1)

    def test_step_zero_work_is_free(self):
        assert Cost.step(0) == Cost.zero()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Cost(-1, 0)
        with pytest.raises(ValueError):
            Cost(1, -1)

    def test_depth_exceeding_work_rejected(self):
        with pytest.raises(ValueError):
            Cost(1, 2)

    def test_sequential_loop(self):
        assert Cost.sequential_loop(5, 3) == Cost(15, 15)

    def test_reduction_small(self):
        assert Cost.reduction(0) == Cost.zero()
        assert Cost.reduction(1) == Cost(1, 1)
        assert Cost.reduction(2) == Cost(1, 1)
        assert Cost.reduction(8) == Cost(7, 3)
        assert Cost.reduction(9) == Cost(8, 4)

    def test_scan_small(self):
        assert Cost.scan(1) == Cost(1, 1)
        assert Cost.scan(8) == Cost(16, 6)


class TestAlgebraLaws:
    @given(costs(), costs(), costs())
    def test_sequential_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(costs(), costs(), costs())
    def test_parallel_associative(self, a, b, c):
        assert (a | b) | c == a | (b | c)

    @given(costs(), costs())
    def test_parallel_commutative(self, a, b):
        assert a | b == b | a

    @given(costs())
    def test_zero_is_identity(self, a):
        z = Cost.zero()
        assert a + z == a and z + a == a
        assert a | z == a and z | a == a

    @given(costs(), costs())
    def test_parallel_no_slower_than_sequential(self, a, b):
        assert (a | b).depth <= (a + b).depth
        assert (a | b).work == (a + b).work

    @given(st.lists(costs(), max_size=20))
    def test_par_matches_folded_or(self, items):
        folded = Cost.zero()
        for c in items:
            folded = folded | c
        assert Cost.par(items) == folded

    @given(st.lists(costs(), max_size=20))
    def test_seq_matches_folded_add(self, items):
        folded = Cost.zero()
        for c in items:
            folded = folded + c
        assert Cost.seq(items) == folded

    @given(costs(), st.integers(min_value=0, max_value=50))
    def test_repeated(self, a, times):
        expect = Cost.seq([a] * times)
        assert a.repeated(times) == expect


class TestBrent:
    @given(costs(), st.integers(min_value=1, max_value=4096))
    def test_brent_bounds(self, a, p):
        t = a.brent_time(p)
        # ceil(W/P) + D is between max(W/P, D) and W + D.
        assert t >= a.depth
        assert t >= math.ceil(a.work / p)
        assert t <= a.work + a.depth

    @given(costs())
    def test_one_processor_is_sequential(self, a):
        assert a.brent_time(1) == a.work + a.depth

    @given(costs(), st.integers(min_value=1, max_value=100))
    def test_more_processors_never_hurt(self, a, p):
        assert a.brent_time(p + 1) <= a.brent_time(p)

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            Cost(4, 2).brent_time(0)

    def test_speedup_saturates_at_depth(self):
        c = Cost(1000, 10)
        assert c.brent_time(10**9) == 11
        assert c.speedup(10**9) == pytest.approx(1010 / 11)

    def test_parallelism(self):
        assert Cost(1000, 10).parallelism() == 100.0
        assert Cost(0, 0).parallelism() == 0.0


class TestLog2Ceil:
    @given(st.integers(min_value=1, max_value=10**9))
    def test_matches_math(self, n):
        assert log2_ceil(n) == (math.ceil(math.log2(n)) if n > 1 else 0)

    def test_edges(self):
        assert log2_ceil(0) == 0
        assert log2_ceil(1) == 0
        assert log2_ceil(2) == 1
        assert log2_ceil(3) == 2
        assert log2_ceil(4) == 2
