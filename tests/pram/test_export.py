"""Exporter tests: Chrome trace-event JSON (golden file) and Prometheus
text metrics."""

import json
import pathlib

import pytest

from repro.pram import (
    Cost,
    Tracer,
    chrome_trace,
    prometheus_metrics,
    simulate_schedule,
    write_chrome_trace,
)

GOLDEN = pathlib.Path(__file__).parent / "golden"


def _sample_tracer() -> Tracer:
    tracer = Tracer("driver")
    tracer.charge(Cost(40, 4), label="setup")
    with tracer.parallel("pieces") as region:
        for i, (w, d) in enumerate([(900, 30), (200, 10), (64, 1)]):
            with region.branch(f"piece-{i}") as br:
                br.charge(Cost(w, d))
    with tracer.span("teardown"):
        tracer.charge(Cost(16, 2))
    return tracer


class TestChromeTrace:
    def test_schedule_matches_golden_file(self, tmp_path):
        sched = simulate_schedule(_sample_tracer().root, 2)
        out = tmp_path / "trace.json"
        write_chrome_trace(str(out), sched)
        produced = json.loads(out.read_text())
        golden = json.loads(
            (GOLDEN / "chrome_trace_schedule.json").read_text()
        )
        assert produced == golden

    def test_event_schema(self):
        sched = simulate_schedule(_sample_tracer().root, 2)
        doc = chrome_trace(sched)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = doc["traceEvents"]
        assert events
        for ev in events:
            assert ev["ph"] in ("X", "M")
            if ev["ph"] == "X":
                assert ev["ts"] >= 0 and ev["dur"] >= 0
                assert {"name", "pid", "tid", "args"} <= set(ev)
                assert ev["cat"] in ("phase", "critical-path")
        # One complete event per executed leaf charge.
        xs = [ev for ev in events if ev["ph"] == "X"]
        assert len(xs) == len(sched.spans)
        assert sum(ev["args"]["work"] for ev in xs) == sched.cost.work
        # The critical path is marked.
        assert any(ev["cat"] == "critical-path" for ev in xs)

    def test_lanes_never_overlap(self):
        sched = simulate_schedule(_sample_tracer().root, 3)
        xs = [
            ev for ev in chrome_trace(sched)["traceEvents"]
            if ev["ph"] == "X"
        ]
        by_lane = {}
        for ev in xs:
            by_lane.setdefault(ev["tid"], []).append(
                (ev["ts"], ev["ts"] + ev["dur"])
            )
        for windows in by_lane.values():
            windows.sort()
            for (_, end), (start, _) in zip(windows, windows[1:]):
                assert start >= end

    def test_raw_span_tree_export(self):
        root = _sample_tracer().root
        doc = chrome_trace(root)
        xs = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        names = {ev["name"] for ev in xs}
        assert {"driver", "pieces", "teardown"} <= names
        root_ev = next(ev for ev in xs if ev["name"] == "driver")
        assert root_ev["dur"] == root.depth

    def test_rejects_unknown_objects(self):
        with pytest.raises(TypeError):
            chrome_trace({"not": "a trace"})


class TestPrometheusMetrics:
    def test_trace_and_schedule_gauges(self):
        tracer = _sample_tracer()
        scheds = [simulate_schedule(tracer.root, p) for p in (1, 4)]
        text = prometheus_metrics(trace=tracer.root, schedules=scheds)
        assert "# HELP repro_trace_work" in text
        assert "# TYPE repro_trace_work gauge" in text
        assert f"repro_trace_work {tracer.root.work}" in text
        assert f"repro_trace_depth {tracer.root.depth}" in text
        assert 'repro_phase_work_total{phase="pieces"}' in text
        assert 'repro_schedule_makespan{processors="1"} ' \
            f"{scheds[0].makespan}" in text
        assert 'repro_schedule_makespan{processors="4"} ' \
            f"{scheds[1].makespan}" in text
        assert 'repro_schedule_brent_bound{processors="4"}' in text
        # Every family is declared exactly once.
        for line in text.splitlines():
            if line.startswith("# HELP"):
                family = line.split()[2]
                assert text.count(f"# HELP {family} ") == 1

    def test_counter_gauges(self):
        tracer = Tracer("t")
        tracer.count(packed_overflow_fallbacks=3)
        text = prometheus_metrics(trace=tracer.root)
        assert (
            'repro_trace_counter_total'
            '{counter="packed_overflow_fallbacks"} 3' in text
        )

    def test_cache_stats_gauges_accept_object_and_dict(self):
        from repro.engine.session import CacheStats

        stats = CacheStats()
        stats.record_miss("cover", Cost(100, 10))
        stats.record_hit("cover", Cost(100, 10))
        stats.record_eviction("cover")
        for source in (stats, stats.as_dict()):
            text = prometheus_metrics(cache_stats=source)
            assert 'repro_cache_hits_total{kind="cover"} 1' in text
            assert 'repro_cache_misses_total{kind="cover"} 1' in text
            assert 'repro_cache_evictions_total{kind="cover"} 1' in text
            assert "repro_cache_saved_work 100" in text
            assert "repro_cache_built_work 100" in text

    def test_multi_session_exposition_matches_golden_file(self):
        """Two sessions' CacheStats in ONE exposition: each family header
        appears exactly once, with one labeled sample per (session, kind)
        — the render-per-session-and-concatenate approach duplicated the
        # HELP/# TYPE headers, which real scrapers reject."""
        from repro.engine.session import CacheStats

        s1 = CacheStats()
        s1.record_miss("cover", Cost(100, 10))
        s1.record_hit("cover", Cost(100, 10))
        s2 = CacheStats()
        s2.record_miss("piece-dp", Cost(40, 4))
        s2.record_eviction("piece-dp", 2)
        text = prometheus_metrics(cache_stats={"t-a": s1, "t-b": s2})
        golden = (GOLDEN / "prometheus_multisession.prom").read_text()
        assert text == golden
        # One shared family, two label sets, exactly one header pair.
        assert text.count("# HELP repro_cache_misses_total ") == 1
        assert text.count("# TYPE repro_cache_misses_total ") == 1
        assert (
            'repro_cache_misses_total{kind="cover",session="t-a"} 1'
            in text
        )
        assert (
            'repro_cache_misses_total{kind="piece-dp",session="t-b"} 1'
            in text
        )
        # Headers always precede their samples.
        seen_sample: set = set()
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.split()[2] not in seen_sample
            else:
                seen_sample.add(line.split("{")[0].split(" ")[0])

    def test_label_escaping(self):
        tracer = Tracer('we"ird\\phase\nname')
        tracer.charge(Cost(5, 1))
        text = prometheus_metrics(trace=tracer.root)
        assert '\\"' in text and "\\\\" in text and "\\n" in text

    def test_custom_namespace(self):
        tracer = _sample_tracer()
        text = prometheus_metrics(trace=tracer.root, namespace="paper")
        assert "paper_trace_work" in text
        assert "repro_" not in text
