"""Tests for the Tracker / nested parallel region accounting."""

from repro.pram import Cost, Tracker


class TestTracker:
    def test_empty(self):
        assert Tracker().cost == Cost.zero()

    def test_charge_sequential(self):
        t = Tracker()
        t.charge(Cost(10, 2))
        t.charge(Cost(5, 3))
        assert t.cost == Cost(15, 5)

    def test_step(self):
        t = Tracker()
        t.step(4)
        t.step(6)
        assert t.cost == Cost(10, 2)

    def test_step_zero_is_free(self):
        t = Tracker()
        t.step(0)
        assert t.cost == Cost.zero()

    def test_parallel_region_max_depth(self):
        t = Tracker()
        with t.parallel() as region:
            region.add(Cost(100, 10))
            region.add(Cost(50, 20))
            region.add(Cost(1, 1))
        assert t.cost == Cost(151, 20)

    def test_parallel_region_branches(self):
        t = Tracker()
        with t.parallel() as region:
            with region.branch() as b1:
                b1.step(10)
                b1.step(10)
            with region.branch() as b2:
                b2.step(100)
        assert t.cost == Cost(120, 2)

    def test_nested_regions(self):
        t = Tracker()
        t.step(1)
        with t.parallel() as outer:
            with outer.branch() as b:
                with b.parallel() as inner:
                    inner.add(Cost(10, 5))
                    inner.add(Cost(10, 7))
                b.step(3)
            outer.add(Cost(2, 2))
        # branch b: parallel(10/5, 10/7) then a step -> (23, 8)
        # outer: par((23,8),(2,2)) = (25, 8); plus the initial step.
        assert t.cost == Cost(26, 9)

    def test_sequential_after_region(self):
        t = Tracker()
        with t.parallel() as region:
            region.add(Cost(5, 5))
        t.step(1)
        assert t.cost == Cost(6, 6)

    def test_empty_region_is_free(self):
        t = Tracker()
        with t.parallel():
            pass
        assert t.cost == Cost.zero()
