"""The dynamic CREW sanitizer (repro.pram.sanitize).

The PRAM simulation executes branches sequentially, so a concurrent-write
race can never crash — it silently voids the CREW cost bound.  These tests
check that declared write/read-sets make such races *loud*: disjoint
writes pass, overlapping writes raise :class:`CREWViolation` with both
branch paths, EREW additionally rejects read/write sharing, and the whole
apparatus is purely observational (identical traces on/off).
"""


import numpy as np
import pytest

from repro.pram import CREWViolation, ShadowArray, Tracer, sanitized
from repro.pram.sanitize import active_mode


def _run_region(record_a, record_b, mode="crew", name="region"):
    """Run a two-branch region, applying the given record callbacks."""
    tracer = Tracer("t")
    with sanitized(mode):
        with tracer.parallel(name) as region:
            with region.branch("left") as left:
                record_a(left)
            with region.branch("right") as right:
                record_b(right)
    return tracer


class TestModes:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert active_mode() == "off"

    @pytest.mark.parametrize(
        "env,mode",
        [("crew", "crew"), ("erew", "erew"), ("1", "crew"),
         ("on", "crew"), ("true", "crew"), ("off", "off"), ("0", "off")],
    )
    def test_env_values(self, monkeypatch, env, mode):
        monkeypatch.setenv("REPRO_SANITIZE", env)
        assert active_mode() == mode

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "sometimes")
        with pytest.raises(ValueError, match="REPRO_SANITIZE"):
            active_mode()

    def test_override_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "erew")
        with sanitized("off"):
            assert active_mode() == "off"
        assert active_mode() == "erew"

    def test_env_activation_detects_race(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "crew")
        arr = np.zeros(4)
        tracer = Tracer("t")
        with pytest.raises(CREWViolation):
            with tracer.parallel() as region:
                with region.branch() as b:
                    b.record_writes(arr, [0])
                with region.branch() as b:
                    b.record_writes(arr, [0])


class TestCrewWrites:
    def test_disjoint_writes_pass(self):
        arr = np.zeros(8)
        _run_region(
            lambda b: b.record_writes(arr, [0, 1, 2]),
            lambda b: b.record_writes(arr, [3, 4]),
        )

    def test_overlapping_writes_raise(self):
        arr = np.zeros(8)
        with pytest.raises(CREWViolation) as info:
            _run_region(
                lambda b: b.record_writes(arr, [0, 1, 2]),
                lambda b: b.record_writes(arr, [2, 3]),
            )
        err = info.value
        assert err.kind == "write/write"
        assert err.mode == "crew"
        assert "left" in err.first_path and "right" in err.second_path

    def test_same_branch_may_rewrite(self):
        arr = np.zeros(4)
        tracer = Tracer("t")
        with sanitized("crew"):
            with tracer.parallel() as region:
                with region.branch() as b:
                    b.record_writes(arr, [0, 1])
                    b.record_writes(arr, [1, 2])

    def test_whole_array_default(self):
        a = np.zeros(4)
        with pytest.raises(CREWViolation):
            _run_region(
                lambda b: b.record_writes(a),
                lambda b: b.record_writes(a, [3]),
            )

    def test_overlapping_views_conflict(self):
        base = np.zeros(10)
        with pytest.raises(CREWViolation):
            _run_region(
                lambda b: b.record_writes(base[2:6]),
                lambda b: b.record_writes(base[5:9]),
            )

    def test_disjoint_views_pass(self):
        base = np.zeros(10)
        _run_region(
            lambda b: b.record_writes(base[:5]),
            lambda b: b.record_writes(base[5:]),
        )

    def test_distinct_arrays_never_conflict(self):
        a, b_arr = np.zeros(4), np.zeros(4)
        _run_region(
            lambda b: b.record_writes(a),
            lambda b: b.record_writes(b_arr),
        )

    def test_bool_mask_indices(self):
        arr = np.zeros(6)
        mask = np.array([True, False, False, False, False, True])
        with pytest.raises(CREWViolation):
            _run_region(
                lambda b: b.record_writes(arr, mask),
                lambda b: b.record_writes(arr, [5]),
            )

    def test_violation_reports_view_local_cell(self):
        arr = np.zeros(8)
        with pytest.raises(CREWViolation) as info:
            _run_region(
                lambda b: b.record_writes(arr, [4]),
                lambda b: b.record_writes(arr, [4]),
            )
        assert info.value.cell == 4


class TestShadowArrays:
    def test_disjoint_slots_pass(self):
        cells = ShadowArray("results", 4)
        _run_region(
            lambda b: b.record_writes(cells, [0, 1]),
            lambda b: b.record_writes(cells, [2, 3]),
        )

    def test_same_slot_raises_with_label(self):
        cells = ShadowArray("results", 4)
        with pytest.raises(CREWViolation, match="results"):
            _run_region(
                lambda b: b.record_writes(cells, 1),
                lambda b: b.record_writes(cells, 1),
            )

    def test_distinct_shadows_independent(self):
        x, y = ShadowArray("x", 2), ShadowArray("y", 2)
        _run_region(
            lambda b: b.record_writes(x, 0),
            lambda b: b.record_writes(y, 0),
        )

    def test_out_of_range_rejected(self):
        cells = ShadowArray("tiny", 2)
        tracer = Tracer("t")
        with sanitized("crew"):
            with pytest.raises(IndexError):
                with tracer.parallel() as region:
                    with region.branch() as b:
                        b.record_writes(cells, 2)


class TestErewReads:
    def test_crew_allows_shared_reads(self):
        arr = np.zeros(4)
        _run_region(
            lambda b: b.record_reads(arr),
            lambda b: b.record_reads(arr),
            mode="crew",
        )

    def test_erew_allows_disjoint_reads(self):
        arr = np.zeros(4)
        _run_region(
            lambda b: b.record_reads(arr, [0]),
            lambda b: b.record_reads(arr, [1]),
            mode="erew",
        )

    def test_erew_rejects_shared_reads(self):
        arr = np.zeros(4)
        with pytest.raises(CREWViolation) as info:
            _run_region(
                lambda b: b.record_reads(arr, [1]),
                lambda b: b.record_reads(arr, [1]),
                mode="erew",
            )
        assert info.value.kind == "read/read"

    def test_erew_rejects_read_write(self):
        arr = np.zeros(4)
        with pytest.raises(CREWViolation) as info:
            _run_region(
                lambda b: b.record_writes(arr, [1]),
                lambda b: b.record_reads(arr, [1]),
                mode="erew",
            )
        assert info.value.kind == "read/write"

    def test_crew_allows_read_beside_write(self):
        # CREW: concurrent read of a cell another branch writes is *not*
        # checked (the model only forbids concurrent writes).
        arr = np.zeros(4)
        _run_region(
            lambda b: b.record_writes(arr, [1]),
            lambda b: b.record_reads(arr, [1]),
            mode="crew",
        )


class TestNestedRegions:
    def test_inner_writes_propagate_to_outer_siblings(self):
        arr = np.zeros(8)
        tracer = Tracer("t")
        with sanitized("crew"):
            with pytest.raises(CREWViolation):
                with tracer.parallel("outer") as outer:
                    with outer.branch("a") as a:
                        a.record_writes(arr, [3])
                    with outer.branch("b") as b:
                        with b.parallel("inner") as inner:
                            with inner.branch("x") as x:
                                x.record_writes(arr, [3])

    def test_inner_siblings_checked_against_each_other(self):
        arr = np.zeros(8)
        tracer = Tracer("t")
        with sanitized("crew"):
            with pytest.raises(CREWViolation):
                with tracer.parallel("outer") as outer:
                    with outer.branch("a") as a:
                        with a.parallel("inner") as inner:
                            with inner.branch("x") as x:
                                x.record_writes(arr, [0])
                            with inner.branch("y") as y:
                                y.record_writes(arr, [0])

    def test_nested_disjoint_pass(self):
        arr = np.zeros(8)
        tracer = Tracer("t")
        with sanitized("crew"):
            with tracer.parallel("outer") as outer:
                with outer.branch("a") as a:
                    a.record_writes(arr, [0])
                    with a.parallel("inner") as inner:
                        with inner.branch("x") as x:
                            x.record_writes(arr, [1])
                        with inner.branch("y") as y:
                            y.record_writes(arr, [2])
                with outer.branch("b") as b:
                    b.record_writes(arr, [3])


class TestNamedArms:
    def test_region_level_named_arms_accumulate(self):
        cells = ShadowArray("tables", 8)
        tracer = Tracer("t")
        with sanitized("crew"):
            with tracer.parallel() as region:
                assert region.sanitizing
                region.record_writes(cells, [0, 1], arm="p0")
                region.record_writes(cells, [2, 3], arm="p1")
                region.record_writes(cells, [4], arm="p0")  # same arm: fine

    def test_region_level_conflict_across_arms(self):
        cells = ShadowArray("tables", 8)
        tracer = Tracer("t")
        with sanitized("crew"):
            with pytest.raises(CREWViolation):
                with tracer.parallel() as region:
                    region.record_writes(cells, [0, 1], arm="p0")
                    region.record_writes(cells, [1], arm="p1")

    def test_not_sanitizing_without_mode(self):
        tracer = Tracer("t")
        with sanitized("off"):
            with tracer.parallel() as region:
                assert not region.sanitizing


class TestObservational:
    def _workload(self):
        from repro.pram import Cost

        tracer = Tracer("run")
        arr = np.zeros(16)
        with tracer.span("setup"):
            tracer.charge(Cost.step(16))
        with tracer.parallel("work") as region:
            for i in range(4):
                with region.branch("piece") as b:
                    b.record_writes(arr, [4 * i, 4 * i + 1])
                    b.charge(Cost(10 + i, 3))
        return tracer

    def test_trace_identical_on_and_off(self):
        base = self._workload().root.to_dict()
        with sanitized("crew"):
            crew = self._workload().root.to_dict()
        with sanitized("erew"):
            erew = self._workload().root.to_dict()
        assert base == crew == erew

    def test_sanitizer_charges_nothing(self):
        off = self._workload().cost
        with sanitized("crew"):
            on = self._workload().cost
        assert (off.work, off.depth) == (on.work, on.depth)


class TestInjectedRegression:
    """The acceptance-criteria regression: a deliberately racy driver-like
    loop must trip the sanitizer even via the high-level Tracker facade."""

    def test_injected_race_fires(self):
        from repro.pram import Tracker

        out = np.zeros(5)
        tracker = Tracker()
        with sanitized("crew"):
            with pytest.raises(CREWViolation):
                with tracker.parallel() as region:
                    for _ in range(2):
                        with region.branch() as branch:
                            branch.record_writes(out, [0])
                            out[0] += 1.0
