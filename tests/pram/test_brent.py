"""Tests for the Brent-scheduling helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pram import Cost, brent_schedule, scalability_limit, speedup_curve


class TestBrentSchedule:
    def test_times_match_cost_method(self):
        c = Cost(10_000, 50)
        sched = brent_schedule(c, [1, 2, 4, 100])
        assert sched == {p: c.brent_time(p) for p in (1, 2, 4, 100)}

    def test_monotone(self):
        c = Cost(10_000, 50)
        times = list(brent_schedule(c, [1, 2, 4, 8, 16]).values())
        assert times == sorted(times, reverse=True)


class TestSpeedupCurve:
    def test_single_processor_is_one(self):
        c = Cost(5_000, 10)
        assert speedup_curve(c, [1])[1] == 1.0

    def test_saturates_at_scalability_limit(self):
        c = Cost(5_000_000, 1_000)
        limit = scalability_limit(c)
        curve = speedup_curve(c, [10**9])
        # T_inf = D + 1 (the ceil of W/P), so the curve approaches but
        # never exceeds the T1/D asymptote.
        assert curve[10**9] <= limit
        assert curve[10**9] == pytest.approx(limit, rel=0.01)

    @given(
        st.integers(min_value=1, max_value=10**6),
        st.integers(min_value=1, max_value=10**4),
    )
    def test_speedup_never_exceeds_processors(self, extra, depth):
        c = Cost(depth + extra, depth)
        for p in (1, 3, 17):
            assert speedup_curve(c, [p])[p] <= p + 1e-9


class TestEdgeCases:
    """Regression tests: p < 1 rejected up front, zero-cost traces speed
    up by definition 1.0, and times come back as floats consistently."""

    def test_rejects_nonpositive_processors(self):
        c = Cost(100, 10)
        for bad in (0, -3):
            with pytest.raises(ValueError, match=">= 1"):
                brent_schedule(c, [1, bad])
            with pytest.raises(ValueError, match=">= 1"):
                speedup_curve(c, [bad])

    def test_zero_cost_speedup_is_one(self):
        assert speedup_curve(Cost.zero(), [1, 2, 64]) == {
            1: 1.0, 2: 1.0, 64: 1.0,
        }

    def test_zero_cost_times_are_zero(self):
        assert brent_schedule(Cost.zero(), [5]) == {5: 0.0}

    def test_times_are_floats(self):
        c = Cost(100, 10)
        assert all(
            isinstance(v, float) for v in brent_schedule(c, [1, 3]).values()
        )
        assert all(
            isinstance(v, float) for v in speedup_curve(c, [1, 3]).values()
        )


class TestScalabilityLimit:
    def test_zero_depth(self):
        assert scalability_limit(Cost(0, 0)) == float("inf")

    def test_formula(self):
        c = Cost(1000, 10)
        assert scalability_limit(c) == (1000 + 10) / 10
