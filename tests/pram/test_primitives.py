"""Tests for the data-parallel primitives and their cost accounting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.pram import (
    Cost,
    exclusive_prefix_sum,
    list_rank,
    pack,
    pack_indices,
    parallel_reduce,
    pointer_jump_roots,
    prefix_sum,
)

int_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=200),
    elements=st.integers(min_value=-1000, max_value=1000),
)


class TestScans:
    @given(int_arrays)
    def test_prefix_sum_matches_cumsum(self, a):
        out, cost = prefix_sum(a)
        assert np.array_equal(out, np.cumsum(a))
        assert cost.work >= len(a)
        assert cost.depth <= 2 * max(1, int(np.ceil(np.log2(max(len(a), 2))))) + 2

    @given(int_arrays)
    def test_exclusive_prefix_sum(self, a):
        out, _ = exclusive_prefix_sum(a)
        assert out[0] == 0
        assert np.array_equal(out[1:], np.cumsum(a)[:-1])

    def test_logarithmic_depth_scaling(self):
        _, c1 = prefix_sum(np.ones(1024, dtype=np.int64))
        _, c2 = prefix_sum(np.ones(2048, dtype=np.int64))
        assert c2.depth == c1.depth + 2  # one more scan level up+down
        assert c2.work == 2 * c1.work


class TestReduce:
    @given(int_arrays, st.sampled_from(["sum", "max", "min"]))
    def test_matches_numpy(self, a, op):
        out, cost = parallel_reduce(a, op)
        expect = {"sum": a.sum, "max": a.max, "min": a.min}[op]()
        assert out == expect
        assert cost.depth <= int(np.ceil(np.log2(max(len(a), 2)))) + 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parallel_reduce(np.array([]))

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            parallel_reduce(np.array([1]), "median")

    def test_returns_python_scalar(self):
        out, _ = parallel_reduce(np.array([1, 2, 3]), "sum")
        assert type(out) is int
        fout, _ = parallel_reduce(np.array([1.5, 2.5]), "sum")
        assert type(fout) is float


class TestPack:
    @given(int_arrays)
    def test_pack_keeps_masked(self, a):
        mask = a % 2 == 0
        out, cost = pack(a, mask)
        assert np.array_equal(out, a[mask])
        assert cost.work >= len(a)

    @given(int_arrays)
    def test_pack_indices(self, a):
        mask = a > 0
        idx, _ = pack_indices(mask)
        assert np.array_equal(idx, np.flatnonzero(mask))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pack(np.array([1, 2]), np.array([True]))

    def test_empty_input_costs_nothing(self):
        # Regression: the old accounting charged Cost(1, 1) for n == 0.
        empty = np.array([], dtype=np.int64)
        out, cost = pack(empty, np.array([], dtype=bool))
        assert out.size == 0 and cost == Cost.zero()
        idx, icost = pack_indices(np.array([], dtype=bool))
        assert idx.size == 0 and icost == Cost.zero()

    @given(int_arrays)
    def test_cost_scales_with_input(self, a):
        mask = a > 0
        _, cost = pack(a, mask)
        _, icost = pack_indices(mask)
        # One scan plus one scatter step over n elements.
        assert cost == Cost.scan(len(a)) + Cost.step(len(a))
        assert icost == cost


class TestPointerJumping:
    def test_single_tree(self):
        parent = np.array([0, 0, 1, 2, 3])
        roots, cost = pointer_jump_roots(parent)
        assert np.array_equal(roots, np.zeros(5, dtype=np.int64))
        # Height-4 chain: doubling resolves it in O(log h) rounds.
        assert cost.depth <= 2 * 4

    def test_forest(self):
        parent = np.array([0, 0, 1, 3, 3, 4])
        roots, _ = pointer_jump_roots(parent)
        assert np.array_equal(roots, np.array([0, 0, 0, 3, 3, 3]))

    def test_all_roots(self):
        parent = np.arange(6)
        roots, cost = pointer_jump_roots(parent)
        assert np.array_equal(roots, parent)

    def test_doubling_rounds_are_logarithmic(self):
        n = 1024
        chain = np.maximum(np.arange(n) - 1, 0)
        _, cost = pointer_jump_roots(chain)
        assert cost.depth <= 2 * (int(np.log2(n)) + 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pointer_jump_roots(np.array([5]))

    def test_empty(self):
        roots, cost = pointer_jump_roots(np.array([], dtype=np.int64))
        assert roots.size == 0 and cost == Cost.zero()


class TestListRanking:
    def test_single_chain(self):
        # 0 -> 1 -> 2 -> 3 -> tail
        succ = np.array([1, 2, 3, -1])
        ranks, cost = list_rank(succ)
        assert np.array_equal(ranks, np.array([3, 2, 1, 0]))
        assert cost.depth <= 3 * (int(np.log2(4)) + 2)

    def test_multiple_chains(self):
        succ = np.array([1, -1, 3, -1, -1])
        ranks, _ = list_rank(succ)
        assert np.array_equal(ranks, np.array([1, 0, 1, 0, 0]))

    @given(st.integers(min_value=1, max_value=300), st.randoms(use_true_random=False))
    def test_random_permutation_chain(self, n, rnd):
        order = list(range(n))
        rnd.shuffle(order)
        succ = np.full(n, -1, dtype=np.int64)
        for a, b in zip(order, order[1:]):
            succ[a] = b
        ranks, cost = list_rank(succ)
        for pos, v in enumerate(order):
            assert ranks[v] == n - 1 - pos
        # Wyllie: O(log n) rounds of O(n) work.
        assert cost.depth <= 3 * (int(np.ceil(np.log2(max(n, 2)))) + 2)
        assert cost.work <= 4 * n * (int(np.ceil(np.log2(max(n, 2)))) + 2)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            list_rank(np.array([0]))

    def test_empty(self):
        ranks, cost = list_rank(np.array([], dtype=np.int64))
        assert ranks.size == 0 and cost == Cost.zero()


class TestListRankingOptimal:
    """The work-optimal (Anderson--Miller style) variant."""

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=10**6),
        st.randoms(use_true_random=False),
    )
    def test_matches_wyllie(self, n, seed, rnd):
        from repro.pram import list_rank_optimal

        order = list(range(n))
        rnd.shuffle(order)
        succ = np.full(n, -1, dtype=np.int64)
        cut = rnd.randrange(n)
        for seg in (order[:cut], order[cut:]):
            for a, b in zip(seg, seg[1:]):
                succ[a] = b
        wyllie, _ = list_rank(succ)
        optimal, _ = list_rank_optimal(succ, seed=seed)
        assert np.array_equal(wyllie, optimal)

    def test_work_beats_wyllie_at_scale(self):
        from repro.pram import list_rank_optimal

        n = 8192
        succ = np.full(n, -1, dtype=np.int64)
        succ[:-1] = np.arange(1, n)
        _, c_w = list_rank(succ)
        _, c_o = list_rank_optimal(succ)
        assert c_o.work < c_w.work / 2  # O(n) vs O(n log n)
        assert c_o.depth <= 12 * (int(np.log2(n)) + 2)

    def test_validation(self):
        from repro.pram import list_rank_optimal

        with pytest.raises(ValueError):
            list_rank_optimal(np.array([0]))
        with pytest.raises(ValueError):
            list_rank_optimal(np.array([5]))
        ranks, cost = list_rank_optimal(np.array([], dtype=np.int64))
        assert ranks.size == 0
