"""Closure identities of the (corrected) Appendix A unary-function family.

The paper claims the family {f_i, g_i, id} is closed under composition; this
is false (see the erratum note in ``repro.pram.layer_algebra``).  We pin the
counterexample as a regression test and verify the corrected two-parameter
family F(m, j) semantically: composition must agree pointwise with actual
function composition, everywhere.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.pram.layer_algebra import (
    IDENTITY,
    apply_fn,
    compose,
    layer_op,
    make_f,
    make_g,
    make_member,
    project_layer_op,
)

layers = st.integers(min_value=0, max_value=40)
members = st.one_of(
    st.just(IDENTITY),
    st.builds(make_f, layers),
    st.builds(make_g, layers),
    layers.flatmap(
        lambda m: st.integers(min_value=0, max_value=m).map(
            lambda j: make_member(m, j)
        )
    ),
)
points = st.integers(min_value=0, max_value=100)


class TestDefinitions:
    @given(layers, points)
    def test_f_matches_paper_definition(self, i, x):
        expect = i + 1 if i == x else max(i, x)
        assert apply_fn(make_f(i), x) == expect

    @given(layers, points)
    def test_g_matches_paper_definition(self, i, x):
        expect = i + 1 if i >= x else x
        assert apply_fn(make_g(i), x) == expect

    @given(points)
    def test_identity(self, x):
        assert apply_fn(IDENTITY, x) == x

    def test_invalid_members_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            make_member(2, 3)
        with pytest.raises(ValueError):
            make_member(-2, 0)
        with pytest.raises(ValueError):
            make_f(-1)


class TestErratum:
    def test_paper_composition_table_counterexample(self):
        """Appendix A claims f_i ∘ f_j = f_max(i,j) for i != j; false for
        i = 1, j = 0 at x = 0 (the inner f can lift x onto the outer tie)."""
        actual = apply_fn(make_f(1), apply_fn(make_f(0), 0))
        table_claim = apply_fn(make_f(1), 0)
        assert actual == 2
        assert table_claim == 1
        assert actual != table_claim
        # Our corrected composition returns the right function: g_1.
        assert compose(make_f(1), make_f(0)) == make_g(1)

    def test_composition_result_outside_paper_family(self):
        """f_2 ∘ f_1 (x=0 ↦ 2, 1 ↦ 3, 2 ↦ 3, above ↦ x) is no f_i or g_i."""
        composed = compose(make_f(2), make_f(1))
        probe = [apply_fn(composed, x) for x in range(5)]
        assert probe == [2, 3, 3, 3, 4]
        for i in range(10):
            assert probe != [apply_fn(make_f(i), x) for x in range(5)]
            assert probe != [apply_fn(make_g(i), x) for x in range(5)]


class TestClosure:
    @given(members, members, points)
    def test_compose_is_pointwise_composition(self, outer, inner, x):
        composed = compose(outer, inner)
        assert apply_fn(composed, x) == apply_fn(outer, apply_fn(inner, x))

    @given(members, members)
    def test_compose_stays_canonical(self, outer, inner):
        m, j = compose(outer, inner)
        assert (m, j) == IDENTITY or (m >= 0 and 0 <= j <= m)

    @given(members, members, members, points)
    def test_compose_associative_semantically(self, a, b, c, x):
        left = compose(compose(a, b), c)
        right = compose(a, compose(b, c))
        assert apply_fn(left, x) == apply_fn(right, x)

    @given(members, members, members)
    def test_compose_associative_syntactically(self, a, b, c):
        assert compose(compose(a, b), c) == compose(a, compose(b, c))

    @given(members)
    def test_identity_is_neutral(self, a):
        assert compose(a, IDENTITY) == a
        assert compose(IDENTITY, a) == a

    def test_exhaustive_closure_small_parameters(self):
        """Brute-force check of the composition law on all small members."""
        params = [IDENTITY] + [
            make_member(m, j) for m in range(0, 12) for j in range(0, m + 1)
        ]
        for outer in params:
            for inner in params:
                composed = compose(outer, inner)
                for x in range(0, 26):
                    assert apply_fn(composed, x) == apply_fn(
                        outer, apply_fn(inner, x)
                    )


class TestProjection:
    @given(layers, points)
    def test_projection_matches_layer_op(self, known, x):
        fn = project_layer_op(known)
        assert apply_fn(fn, x) == layer_op(known, x)

    @given(layers, layers)
    def test_layer_op_symmetric(self, a, b):
        assert layer_op(a, b) == layer_op(b, a)

    @given(layers)
    def test_equal_children_bump_layer(self, a):
        assert layer_op(a, a) == a + 1

    @given(layers, layers)
    def test_unique_max_propagates(self, a, b):
        if a != b:
            assert layer_op(a, b) == max(a, b)
