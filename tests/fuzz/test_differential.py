"""Differential fuzzing: random planar targets x random patterns, three ways.

Every drawn instance is answered by (a) the one-shot drivers (decide,
list, exact count), (b) a cached :class:`~repro.engine.TargetSession`
(single query *and* as part of a batch), and (c) the exhaustive
backtracking oracle — all three must agree, and the session runs must
satisfy the cost invariants (``trace.cost == result.cost``;
``cold_equivalent_cost.work`` equal to the one-shot work).  The
exact-counting fuzzer plays the deterministic window-count against the
oracle's isomorphism count; the listing fuzzer compares full witness
sets.

Replay: every drawn instance is ``note()``-ed, so a failing run prints the
``family/size/graph-seed/pattern/query-seed`` tuple alongside Hypothesis's
own reproduction blob (``@reproduce_failure`` or the printed falsifying
example rerun the exact instance).

Scaling: ``FUZZ_EXAMPLES`` sets the per-test example count (default 20 —
quick enough for the tier-1 suite; the CI fuzz job raises it so the four
tests together cover >= 500 instances).  The tests are also marked
``slow`` so ``-m "not slow"`` keeps them out of blocking CI lanes.
"""

import os

import pytest
from hypothesis import given, note, settings
from hypothesis import strategies as st

from repro.baselines import (
    count_isomorphisms,
    has_isomorphism,
    iter_isomorphisms,
)
from repro.engine import TargetSession
from repro.graphs import (
    grid_graph,
    outerplanar_graph,
    random_tree,
    triangulated_grid,
    wheel_graph,
)
from repro.isomorphism import (
    count_occurrences_exact,
    cycle_pattern,
    decide_subgraph_isomorphism,
    diamond,
    list_occurrences,
    path_pattern,
    star_pattern,
    triangle,
)
from repro.planar import embed_geometric, embed_planar

FUZZ_EXAMPLES = int(os.environ.get("FUZZ_EXAMPLES", "20"))

pytestmark = pytest.mark.slow


def _target(family: str, size: int, seed: int):
    """Materialize one random planar target (graph + embedding)."""
    if family == "tree":
        g = random_tree(4 + size, seed=seed)
        return g, embed_planar(g)
    if family == "outerplanar":
        gg = outerplanar_graph(5 + size, seed=seed)
    elif family == "grid":
        gg = grid_graph(2 + size % 5, 2 + size // 3)
    elif family == "trigrid":
        gg = triangulated_grid(2 + size % 4, 2 + size // 4)
    else:  # wheel
        gg = wheel_graph(4 + size)
    emb, _ = embed_geometric(gg)
    return gg.graph, emb


def _pattern(kind: str, k: int):
    if kind == "path":
        return path_pattern(2 + k)
    if kind == "cycle":
        return cycle_pattern(3 + k)
    if kind == "star":
        return star_pattern(2 + k)
    if kind == "triangle":
        return triangle()
    return diamond()


TARGETS = st.tuples(
    st.sampled_from(["tree", "outerplanar", "grid", "trigrid", "wheel"]),
    st.integers(0, 12),
    st.integers(0, 10_000),
)
PATTERNS = st.tuples(
    st.sampled_from(["path", "cycle", "star", "triangle", "diamond"]),
    st.integers(0, 3),
)


@given(target=TARGETS, pat=PATTERNS, seed=st.integers(0, 10_000))
@settings(max_examples=FUZZ_EXAMPLES)
def test_decide_differential(target, pat, seed):
    family, size, gseed = target
    kind, k = pat
    note(f"target={family}:{size}:{gseed} pattern={kind}:{k} seed={seed}")
    graph, emb = _target(family, size, gseed)
    pattern = _pattern(kind, k)

    oracle = has_isomorphism(pattern, graph)
    one_shot = decide_subgraph_isomorphism(graph, emb, pattern, seed=seed)
    session = TargetSession(graph, emb)
    warm = session.decide(pattern, seed=seed)
    again = session.decide(pattern, seed=seed)

    # Monte Carlo one-sidedness: "found" is always correct; at the default
    # 2 log2 n rounds a false negative has probability <= 1/n^2, so over
    # these instance sizes divergence from the oracle is a real bug.
    assert one_shot.found == oracle
    assert warm.found == oracle
    assert again.found == oracle
    assert warm.rounds_used == one_shot.rounds_used
    assert again.rounds_used == one_shot.rounds_used

    for result in (warm, again):
        assert result.trace.cost == result.cost
        assert result.cold_equivalent_cost.work == one_shot.cost.work
    assert not one_shot.amortized
    assert one_shot.cold_equivalent_cost == one_shot.cost


@given(
    target=TARGETS,
    pats=st.lists(PATTERNS, min_size=2, max_size=5),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=FUZZ_EXAMPLES)
def test_batch_differential(target, pats, seed):
    family, size, gseed = target
    note(f"target={family}:{size}:{gseed} patterns={pats} seed={seed}")
    graph, emb = _target(family, size, gseed)
    patterns = [_pattern(kind, k) for kind, k in pats]

    session = TargetSession(graph, emb)
    batch = session.decide_batch(patterns, seed=seed)
    assert len(batch.results) == len(patterns)
    for pattern, result in zip(patterns, batch.results):
        cold = decide_subgraph_isomorphism(graph, emb, pattern, seed=seed)
        assert result.found == cold.found == has_isomorphism(pattern, graph)
        assert result.rounds_used == cold.rounds_used
        assert result.witness == cold.witness
        assert result.cold_equivalent_cost.work == cold.cost.work
    assert batch.cost.work <= batch.cold_equivalent_cost.work


@given(target=TARGETS, pat=PATTERNS, seed=st.integers(0, 10_000))
@settings(max_examples=FUZZ_EXAMPLES)
def test_listing_differential(target, pat, seed):
    family, size, gseed = target
    kind, k = pat
    note(f"target={family}:{size}:{gseed} pattern={kind}:{k} seed={seed}")
    graph, emb = _target(family, size, gseed)
    pattern = _pattern(kind, k)

    oracle = {
        tuple(sorted(w.items()))
        for w in iter_isomorphisms(pattern, graph)
    }
    cold = list_occurrences(graph, emb, pattern, seed)
    session = TargetSession(graph, emb)
    warm = session.list_occurrences(pattern, seed=seed)

    # Theorem 4.2 lists *every* occurrence w.h.p. — over these instance
    # sizes a missing witness is a real bug, as is any spurious one.
    assert {tuple(w) for w in cold.witnesses} == oracle
    assert warm.witnesses == cold.witnesses
    assert warm.occurrences == cold.occurrences
    assert warm.iterations == cold.iterations
    assert warm.trace.cost == warm.cost
    assert warm.cold_equivalent_cost.work == cold.cost.work


@given(target=TARGETS, pat=PATTERNS)
@settings(max_examples=FUZZ_EXAMPLES)
def test_exact_count_differential(target, pat):
    family, size, gseed = target
    kind, k = pat
    note(f"target={family}:{size}:{gseed} pattern={kind}:{k}")
    graph, emb = _target(family, size, gseed)
    pattern = _pattern(kind, k)

    oracle = count_isomorphisms(pattern, graph)
    cold = count_occurrences_exact(graph, emb, pattern)
    session = TargetSession(graph, emb)
    warm = session.count_exact(pattern)

    assert cold.isomorphisms == oracle
    assert warm.isomorphisms == oracle
    assert warm.trace.cost == warm.cost
    assert warm.cold_equivalent_cost.work == cold.cost.work
